//! Host parallelism must be invisible in virtual time: the parallel
//! cache-prewarm stage only moves host work earlier, so every simulated
//! outcome — index-build reports, virtual times, costs, query results —
//! must be identical with prewarming on, off, and under any host thread
//! count.
//!
//! Reports don't implement `PartialEq` (they carry many float-valued cost
//! fields that should be *bit*-identical here, not approximately equal),
//! so the comparison goes through their exhaustive `Debug` rendering.

use amada_core::{Warehouse, WarehouseConfig};
use amada_index::Strategy;
use amada_xmark::{generate_corpus, CorpusConfig};

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        seed: 0x00AB_1DE5,
        num_documents: 16,
        target_doc_bytes: 1000,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

/// Builds the index and runs part of the workload, returning the Debug
/// renderings of every report produced along the way.
fn run(strategy: Strategy, prewarm: bool) -> Vec<String> {
    let mut cfg = WarehouseConfig::with_strategy(strategy);
    cfg.host.prewarm = prewarm;
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    let mut out = vec![format!("{:?}", w.build_index())];
    for q in amada_xmark::workload().iter().take(4) {
        out.push(format!("{:?}", w.run_query(q)));
    }
    out
}

#[test]
fn prewarm_and_thread_count_do_not_change_virtual_outcomes() {
    // One test function on purpose: it manipulates the process-wide
    // AMADA_THREADS variable, which concurrent tests would race on.
    for strategy in [Strategy::Lu, Strategy::TwoLupi] {
        let baseline = run(strategy, false);
        assert_eq!(
            run(strategy, true),
            baseline,
            "{strategy:?}: prewarm on vs off"
        );

        std::env::set_var("AMADA_THREADS", "1");
        let one_thread = run(strategy, true);
        std::env::set_var("AMADA_THREADS", "7");
        let seven_threads = run(strategy, true);
        std::env::remove_var("AMADA_THREADS");
        assert_eq!(one_thread, baseline, "{strategy:?}: 1 host thread");
        assert_eq!(seven_threads, baseline, "{strategy:?}: 7 host threads");
    }
}
