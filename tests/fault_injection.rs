//! Integration tests for the transient-fault subsystem: deterministic
//! injection, retry/backoff, lease renewal, mid-task crash recovery, and
//! the faults-off identity guarantee.

use amada::cloud::{FaultConfig, InstanceType, Money, SimDuration, Sqs, SqsError};
use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload_query, CorpusConfig};
use amada_core::actors::{DocCache, LoaderCore, LoaderTotals};
use amada_core::{RetryPolicy, LOADER_QUEUE};
use std::cell::RefCell;
use std::rc::Rc;

fn corpus(n: usize) -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        num_documents: n,
        target_doc_bytes: 1200,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn upload(w: &mut Warehouse, docs: &[(String, String)]) {
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
}

/// The fault seed: `AMADA_FAULT_SEED` when set (the CI chaos matrix sets
/// it), a fixed default otherwise.
fn fault_seed() -> u64 {
    std::env::var("AMADA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA117)
}

fn faulty_config(rate: f64) -> WarehouseConfig {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.faults = FaultConfig {
        seed: fault_seed(),
        s3_rate: rate,
        kv_rate: rate,
        sqs_rate: rate,
    };
    cfg
}

/// Regression for the missing-renewal bug: a task that takes *longer than
/// the visibility timeout* used to lose its lease mid-work and be handed
/// to a second core, double-processing the document. Working cores now
/// renew at the lease half-life, so slow tasks finish exactly once.
#[test]
fn tasks_longer_than_visibility_are_not_redelivered() {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
    // Parsing a ~1.2 KB document takes ~0.3 ECU-seconds under this
    // model — far longer than the 200 ms visibility window.
    cfg.work.parse_mb_per_ecu_sec = 0.002;
    cfg.visibility = SimDuration::from_millis(200);
    cfg.loader_pool = amada_core::Pool::new(2, InstanceType::Large);
    let docs = corpus(8);
    let mut w = Warehouse::new(cfg);
    upload(&mut w, &docs);
    let report = w.build_index();
    assert_eq!(report.documents, 8, "each document indexed exactly once");
    assert_eq!(report.redelivered, 0, "leases were renewed, not lost");
    assert!(
        report.lease_renewals > 0,
        "slow tasks must have issued renewals"
    );
    // The pipeline still answers correctly (q1 targets item-6-0, present
    // in every corpus of ≥ 7 documents).
    let q = workload_query("q1").unwrap();
    assert!(!w.run_query(&q).exec.results.is_empty());
}

/// A loader that crashes *mid-upload* — after writing some but not all of
/// a document's index batches — is recovered by redelivery, and because
/// range keys are deterministic per document, the rewrite leaves the index
/// byte-identical to a never-crashed build.
#[test]
fn mid_upload_crash_rewrites_the_index_idempotently() {
    let cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    let mut vis_cfg = cfg.clone();
    vis_cfg.visibility = SimDuration::from_secs(30);
    let docs = corpus(8);
    let mut w = Warehouse::new(vis_cfg.clone());
    upload(&mut w, &docs);

    let totals = Rc::new(RefCell::new(LoaderTotals::default()));
    let cache: DocCache = amada_index::ExtractCache::shared();
    let start = w.now();
    let engine = w.engine_mut();
    engine.world.sqs.close(LOADER_QUEUE);
    let mk = |engine: &mut amada::cloud::Engine, seed: u64| {
        LoaderCore::new(
            engine.world.ec2.launch(InstanceType::Large, start),
            2.0,
            vis_cfg.strategy,
            vis_cfg.extract,
            totals.clone(),
            cache.clone(),
            vis_cfg.visibility,
            vis_cfg.poll_interval,
            RetryPolicy::default(),
            seed,
        )
    };
    let mut crashing = mk(engine, 1);
    crashing.crash_after_batches = Some(1);
    engine.spawn(Box::new(crashing), start);
    let healthy = mk(engine, 2);
    engine.spawn(Box::new(healthy), start);
    engine.run();
    engine.world.sqs.open(LOADER_QUEUE);
    assert!(
        engine.world.sqs.stats().redelivered >= 1,
        "the crash lost a lease"
    );
    assert_eq!(totals.borrow().docs, 8, "every document eventually indexed");
    let crashed_index = engine.world.kv.peek_all();

    // A clean build of the same corpus.
    let mut clean = Warehouse::new(cfg);
    upload(&mut clean, &docs);
    let report = clean.build_index();
    assert_eq!(report.documents, 8);
    let clean_index = clean.world().kv.peek_all();

    assert_eq!(
        crashed_index, clean_index,
        "redelivery after a mid-upload crash must leave the index \
         byte-identical to a clean build"
    );
}

/// Unknown-queue operations are consistent typed errors across the whole
/// SQS surface — and bill nothing (the request never reaches a queue).
#[test]
fn unknown_queue_is_a_typed_error_and_bills_nothing() {
    use amada::cloud::SimTime;
    let mut sqs = Sqs::new();
    let t = SimTime::ZERO;
    assert!(matches!(
        sqs.send(t, "ghost", "m"),
        Err(SqsError::NoSuchQueue(q)) if q == "ghost"
    ));
    assert!(matches!(
        sqs.receive(t, "ghost", SimDuration::from_secs(1)),
        Err(SqsError::NoSuchQueue(_))
    ));
    assert!(matches!(
        sqs.delete(t, "ghost", 0),
        Err(SqsError::NoSuchQueue(_))
    ));
    assert!(matches!(
        sqs.renew_lease(t, "ghost", 0, SimDuration::from_secs(1)),
        Err(SqsError::NoSuchQueue(_))
    ));
    assert!(matches!(
        sqs.drained("ghost"),
        Err(SqsError::NoSuchQueue(_))
    ));
    assert!(matches!(sqs.len("ghost"), Err(SqsError::NoSuchQueue(_))));
    assert!(matches!(
        sqs.is_empty("ghost"),
        Err(SqsError::NoSuchQueue(_))
    ));
    assert_eq!(sqs.stats().requests, 0, "failed routing is not billed");
}

/// One fault seed fixes the entire schedule: two identical runs under
/// injection produce bit-identical times, costs and counters.
#[test]
fn same_fault_seed_is_bit_reproducible() {
    let run = || {
        let docs = corpus(10);
        let mut w = Warehouse::new(faulty_config(0.05));
        upload(&mut w, &docs);
        let build = w.build_index();
        let q = workload_query("q2").unwrap();
        let query = w.run_query(&q);
        (
            build.total_time,
            build.cost.total(),
            build.throttled_requests,
            query.exec.response_time,
            query.cost.total(),
            format!("{:?}", query.exec.results),
        )
    };
    assert_eq!(run(), run());
}

/// A warehouse with the fault subsystem configured but all rates zero is
/// bit-identical to the default (faults-off) warehouse: the injectors
/// draw no randomness and add no requests.
#[test]
fn zero_rate_faults_are_bit_identical_to_no_faults() {
    let docs = corpus(10);
    let run = |cfg: WarehouseConfig| {
        let mut w = Warehouse::new(cfg);
        upload(&mut w, &docs);
        let build = w.build_index();
        let q = workload_query("q4").unwrap();
        let query = w.run_query(&q);
        (
            build.total_time,
            build.cost.total(),
            build.items,
            query.exec.response_time,
            query.cost.total(),
        )
    };
    let mut zero_rate = WarehouseConfig::with_strategy(Strategy::Lup);
    zero_rate.faults = FaultConfig {
        seed: 0xDEAD_BEEF, // a seed alone must change nothing
        ..FaultConfig::default()
    };
    let baseline = run(WarehouseConfig::with_strategy(Strategy::Lup));
    assert_eq!(run(zero_rate), baseline);
}

/// Under injected faults the pipeline still produces exactly the right
/// answers — and the resilience is visible in the ledger: throttled
/// requests were billed and retried, so the run costs strictly more than
/// the fault-free one.
#[test]
fn faulty_pipeline_is_correct_and_costs_more() {
    let docs = corpus(12);
    let queries = ["q1", "q4", "q6"];

    let mut clean = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
    upload(&mut clean, &docs);
    let clean_build = clean.build_index();
    assert_eq!(clean_build.throttled_requests, 0);
    assert_eq!(clean_build.lease_renewals, 0, "fast tasks never renew");

    let mut faulty = Warehouse::new(faulty_config(0.05));
    upload(&mut faulty, &docs);
    let faulty_build = faulty.build_index();

    assert_eq!(faulty_build.documents, clean_build.documents);
    assert_eq!(faulty_build.items, clean_build.items, "same index contents");
    assert!(
        faulty_build.throttled_requests > 0,
        "5% faults must throttle"
    );
    assert!(
        faulty_build.cost.total() > clean_build.cost.total(),
        "every retry is a billed request: faulty {} vs clean {}",
        faulty_build.cost.total(),
        clean_build.cost.total()
    );

    for name in queries {
        let q = workload_query(name).unwrap();
        let a = clean.run_query(&q);
        let b = faulty.run_query(&q);
        let mut ra = a.exec.results.clone();
        let mut rb = b.exec.results.clone();
        ra.sort_by(|x, y| x.columns.cmp(&y.columns));
        rb.sort_by(|x, y| x.columns.cmp(&y.columns));
        assert_eq!(ra, rb, "{name}: faults must not change answers");
    }
}

/// Pushdown under injected faults: a throttled scan is billed like any
/// other request but is *stateless* — it moves no bytes and leaves no
/// partial result behind — so the LUP-PD pipeline retries its way to
/// answers byte-identical to the fault-free run, paying strictly more
/// for the re-billed requests along the way.
#[test]
fn throttled_scans_are_billed_stateless_and_answers_identical() {
    let docs = corpus(12);
    let queries = ["q2", "q4", "q5"];

    let mut clean = Warehouse::new(WarehouseConfig::with_strategy(Strategy::LupPd));
    upload(&mut clean, &docs);
    clean.build_index();

    let mut cfg = faulty_config(0.08);
    cfg.strategy = Strategy::LupPd;
    let mut faulty = Warehouse::new(cfg);
    upload(&mut faulty, &docs);
    faulty.build_index();

    // Deltas from here on isolate the query phase (the builds above also
    // touch S3, and the faulty build gets throttled on its own).
    let clean_scans_before = clean.world().s3.stats().scan_requests;
    let faulty_scans_before = faulty.world().s3.stats().scan_requests;
    let faulty_bytes_before = faulty.world().s3.stats().bytes_scanned;
    let clean_bytes_before = clean.world().s3.stats().bytes_scanned;
    let throttled_before = faulty.world().s3.stats().throttled;

    let (mut clean_cost, mut faulty_cost) = (Money::ZERO, Money::ZERO);
    for name in queries {
        let q = workload_query(name).unwrap();
        let a = clean.run_query(&q);
        let b = faulty.run_query(&q);
        clean_cost += a.cost.total();
        faulty_cost += b.cost.total();
        let mut ra = a.exec.results.clone();
        let mut rb = b.exec.results.clone();
        ra.sort_by(|x, y| x.columns.cmp(&y.columns));
        rb.sort_by(|x, y| x.columns.cmp(&y.columns));
        assert_eq!(ra, rb, "{name}: faults must not change pushdown answers");
    }

    let clean_scans = clean.world().s3.stats().scan_requests - clean_scans_before;
    let faulty_scans = faulty.world().s3.stats().scan_requests - faulty_scans_before;
    let throttled = faulty.world().s3.stats().throttled - throttled_before;
    assert!(clean_scans > 0, "LUP-PD queries must answer through scans");
    assert!(throttled > 0, "8% faults must throttle mid-query");
    // Every throttle is re-billed as a fresh scan request, so the faulty
    // run issues strictly more of them than the fault-free run (the
    // throttled counter also covers the per-query result GET, hence <=).
    assert!(
        faulty_scans > clean_scans,
        "retried scans must be re-billed: {faulty_scans} vs {clean_scans}"
    );
    assert!(faulty_scans - clean_scans <= throttled);
    // Stateless: a throttle meters no scanned volume — only successful
    // scans do, and a (rare) abandoned-and-retried query can only rescan,
    // never partially scan.
    let clean_bytes = clean.world().s3.stats().bytes_scanned - clean_bytes_before;
    let faulty_bytes = faulty.world().s3.stats().bytes_scanned - faulty_bytes_before;
    assert!(faulty_bytes >= clean_bytes);
    assert!(
        faulty_cost > clean_cost,
        "billed throttles must surface in the bill: faulty {faulty_cost} vs clean {clean_cost}"
    );
}
