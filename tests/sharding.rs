//! The sharded index store's contract, end to end:
//!
//! 1. **Deterministic routing** — the same seed and corpus produce the
//!    same skew-aware plan and the same key → shard assignment, across
//!    fresh builds and across host thread counts (routing is a pure
//!    function of the key).
//! 2. **Sharding is invisible to answers and bills** — with faults off,
//!    a sharded warehouse returns the same answers and bills the same
//!    index-store units as the unsharded build; only where requests
//!    *wait* changes, so under a saturating open-loop storm the sharded
//!    run finishes strictly earlier.
//! 3. **Off by default** — the default configuration routes everything
//!    to one shard and records no shard-tagged spans.

use amada::cloud::{DynamoConfig, InstanceType, KvBackend, ShardPlan};
use amada::index::{extract, key_frequencies, skew_aware_plan, ExtractOptions, Strategy};
use amada::pattern::Query;
use amada::warehouse::{ArrivalProcess, Pool, Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload, CorpusConfig};
use amada::xml::Document;
use std::collections::BTreeMap;

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        seed: 0x5AADED,
        num_documents: 24,
        target_doc_bytes: 1100,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn queries() -> Vec<Query> {
    workload().into_iter().take(5).collect()
}

/// Extracts every index entry of the corpus and derives the skew-aware
/// plan plus the full key → shard assignment.
fn plan_and_assignment() -> (ShardPlan, BTreeMap<String, usize>) {
    let entries: Vec<_> = corpus()
        .iter()
        .flat_map(|(uri, xml)| {
            let doc = Document::parse_str(uri, xml).expect("corpus is well-formed");
            extract(&doc, Strategy::Lup, ExtractOptions::default())
        })
        .collect();
    let freqs = key_frequencies(&entries);
    let plan = skew_aware_plan(&freqs, 4, 2);
    let assignment = freqs
        .keys()
        .map(|k| (k.clone(), plan.route(k)))
        .collect::<BTreeMap<_, _>>();
    (plan, assignment)
}

#[test]
fn routing_is_deterministic_across_runs() {
    let (plan_a, assign_a) = plan_and_assignment();
    let (plan_b, assign_b) = plan_and_assignment();
    assert_eq!(plan_a, plan_b);
    assert_eq!(assign_a, assign_b);
    assert!(plan_a.shards() == 4 && plan_a.hot_keys().count() > 0);
}

#[test]
fn routing_is_deterministic_across_thread_counts() {
    let (plan, assign) = plan_and_assignment();
    let keys: Vec<String> = assign.keys().cloned().collect();
    // Route the same key set from four threads at once; a pure router
    // gives every thread the single-threaded answer.
    let routed: Vec<BTreeMap<String, usize>> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                let plan = &plan;
                let keys = &keys;
                s.spawn(move || {
                    keys.iter()
                        .map(|k| (k.clone(), plan.route(k)))
                        .collect::<BTreeMap<_, _>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("router threads do not panic"))
            .collect()
    });
    for r in routed {
        assert_eq!(r, assign);
    }
}

/// A warehouse on a deliberately under-provisioned DynamoDB read lane,
/// with enough query cores that concurrent look-ups contend on it.
fn storm_warehouse(plan: Option<ShardPlan>) -> Warehouse {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.backend = KvBackend::Dynamo(DynamoConfig {
        read_units_per_sec: 12.0,
        ..DynamoConfig::default()
    });
    cfg.query_pool = Pool::new(4, InstanceType::Large);
    cfg.shard_plan = plan;
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    w.build_index();
    w
}

fn storm() -> ArrivalProcess {
    let mut p = ArrivalProcess::steady(0xA3ADA, 60, 6.0);
    p.zipf_exponent = 1.2;
    p
}

#[test]
fn sharded_answers_and_billed_units_match_the_unsharded_build() {
    let queries = queries();
    let process = storm();

    let mut plain = storm_warehouse(None);
    let report_plain = plain.run_workload_open_loop(&queries, &process);

    let entries: Vec<_> = corpus()
        .iter()
        .flat_map(|(uri, xml)| {
            let doc = Document::parse_str(uri, xml).expect("corpus is well-formed");
            extract(&doc, Strategy::Lup, ExtractOptions::default())
        })
        .collect();
    let plan = skew_aware_plan(&key_frequencies(&entries), 4, 2);
    let mut sharded = storm_warehouse(Some(plan));
    let report_sharded = sharded.run_workload_open_loop(&queries, &process);

    // Same arrivals, same answers — completion order may differ under
    // different queueing, so compare by arrival name.
    let answers = |r: &amada::warehouse::WorkloadReport| -> BTreeMap<String, Vec<u8>> {
        r.executions
            .iter()
            .map(|e| (e.name.clone(), format!("{:?}", e.results).into_bytes()))
            .collect()
    };
    assert_eq!(
        report_plain.executions.len(),
        report_sharded.executions.len()
    );
    assert_eq!(answers(&report_plain), answers(&report_sharded));

    // Identical index-store bills: billed units and the resulting money.
    let stats_plain = plain.engine_mut().world.kv.stats();
    let stats_sharded = sharded.engine_mut().world.kv.stats();
    assert_eq!(stats_plain.put_ops, stats_sharded.put_ops);
    assert_eq!(stats_plain.get_ops, stats_sharded.get_ops);
    assert_eq!(report_plain.cost.kv, report_sharded.cost.kv);
    assert_eq!(stats_plain.throttled, 0);
    assert_eq!(stats_sharded.throttled, 0);

    // Only the waiting changes: the storm saturates the single lane, so
    // the sharded run must drain strictly earlier.
    assert!(
        report_sharded.total_time < report_plain.total_time,
        "sharded {} vs single-table {}",
        report_sharded.total_time,
        report_plain.total_time
    );

    // And the stored index itself is byte-identical.
    assert_eq!(
        plain.engine_mut().world.kv.peek_all(),
        sharded.engine_mut().world.kv.peek_all()
    );
}

#[test]
fn sharding_is_off_by_default_and_untagged() {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    assert!(cfg.shard_plan.is_none());
    cfg.host.record = true;
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    w.build_index();
    w.run_workload(&queries(), 1);
    assert!(w.spans().iter().all(|s| s.shard.is_none()));
}
