//! Provider portability (paper Table 1): the same architecture runs — and
//! bills — against Google Cloud and Windows Azure price books by swapping
//! the price table, with no other change.

use amada::cloud::PriceTable;
use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload_query, CorpusConfig};

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        num_documents: 20,
        target_doc_bytes: 1200,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn run_on(prices: PriceTable) -> (f64, f64, Vec<Vec<String>>) {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.prices = prices;
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    let build = w.build_index();
    let q = workload_query("q6").unwrap();
    let run = w.run_query(&q);
    let mut rows: Vec<Vec<String>> = run.exec.results.into_iter().map(|t| t.columns).collect();
    rows.sort();
    (
        build.cost.total().dollars(),
        run.cost.total().dollars(),
        rows,
    )
}

#[test]
fn same_architecture_prices_on_three_providers() {
    let (aws_build, aws_query, aws_rows) = run_on(PriceTable::aws_singapore_2012());
    let (g_build, g_query, g_rows) = run_on(PriceTable::google_cloud_2012());
    let (az_build, az_query, az_rows) = run_on(PriceTable::windows_azure_2012());
    // Identical answers everywhere — only the bill changes.
    assert_eq!(aws_rows, g_rows);
    assert_eq!(aws_rows, az_rows);
    assert!(aws_build > 0.0 && g_build > 0.0 && az_build > 0.0);
    assert!(aws_query > 0.0 && g_query > 0.0 && az_query > 0.0);
    // The bills genuinely differ (different price points).
    assert_ne!(aws_build.to_bits(), g_build.to_bits());
    assert_ne!(aws_build.to_bits(), az_build.to_bits());
}

#[test]
fn provider_swap_does_not_change_virtual_timing() {
    // Prices are billing-only: the discrete-event timeline is identical.
    let time_on = |prices: PriceTable| {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lui);
        cfg.prices = prices;
        let mut w = Warehouse::new(cfg);
        w.upload_documents(corpus());
        let b = w.build_index();
        let q = workload_query("q3").unwrap();
        (b.total_time, w.run_query(&q).exec.response_time)
    };
    assert_eq!(
        time_on(PriceTable::aws_singapore_2012()),
        time_on(PriceTable::windows_azure_2012())
    );
}
