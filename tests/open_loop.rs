//! The open-loop front end's contract:
//!
//! 1. **Empty schedules terminate** — a burst run with zero bursts or an
//!    empty workload still closes the query queue and returns (the
//!    processors' receive loop would otherwise poll forever), and the
//!    open-loop sender inherits the same guarantee for a zero-arrival
//!    process.
//! 2. **Seeded determinism** — the arrival process is a pure function of
//!    its seed, and two identical open-loop runs produce identical
//!    reports.
//! 3. **The storm is shaped** — arrivals are time-ordered, complete, and
//!    Zipf-skewed toward the head of the workload.

use amada::cloud::SimDuration;
use amada::index::Strategy;
use amada::pattern::Query;
use amada::warehouse::{ArrivalProcess, Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload, CorpusConfig};

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        seed: 0x0B5E55ED,
        num_documents: 16,
        target_doc_bytes: 900,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn queries() -> Vec<Query> {
    workload().into_iter().take(4).collect()
}

fn built() -> Warehouse {
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
    w.upload_documents(corpus());
    w.build_index();
    w
}

#[test]
fn zero_bursts_still_close_the_query_queue() {
    let mut w = built();
    let report = w.run_workload_bursts(&queries(), 1, 0, SimDuration::from_secs(1));
    assert!(report.executions.is_empty());
    // The warehouse is still usable afterwards: the queue was closed, not
    // wedged, and a normal run completes.
    let report = w.run_workload(&queries(), 1);
    assert_eq!(report.executions.len(), queries().len());
}

#[test]
fn an_empty_workload_still_closes_the_query_queue() {
    let mut w = built();
    let report = w.run_workload_bursts(&[], 3, 2, SimDuration::from_secs(1));
    assert!(report.executions.is_empty());
    let report = w.run_workload(&[], 5);
    assert!(report.executions.is_empty());
}

#[test]
fn a_zero_arrival_open_loop_run_terminates() {
    let mut w = built();
    let process = ArrivalProcess::steady(7, 0, 2.0);
    let report = w.run_workload_open_loop(&queries(), &process);
    assert!(report.executions.is_empty());
    // The open-loop sender inherited the empty-schedule close.
    let report = w.run_workload(&queries(), 1);
    assert_eq!(report.executions.len(), queries().len());
}

#[test]
fn open_loop_runs_are_deterministic() {
    let queries = queries();
    let mut process = ArrivalProcess::steady(0xA3ADA, 40, 5.0);
    process.zipf_exponent = 1.1;

    let run = || {
        let mut w = built();
        let r = w.run_workload_open_loop(&queries, &process);
        let names: Vec<String> = r.executions.iter().map(|e| e.name.clone()).collect();
        (names, r.total_time, r.cost.total())
    };
    assert_eq!(run(), run());
}

#[test]
fn every_arrival_executes_exactly_once_under_unique_names() {
    let queries = queries();
    let process = ArrivalProcess::steady(3, 25, 4.0);
    let mut w = built();
    let report = w.run_workload_open_loop(&queries, &process);
    assert_eq!(report.executions.len(), 25);
    let mut names: Vec<&str> = report.executions.iter().map(|e| e.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 25, "arrival names are unique");
    assert_eq!(report.redelivered, 0);
}

#[test]
fn the_arrival_process_is_seeded_ordered_and_skewed() {
    let mut process = ArrivalProcess::steady(11, 400, 8.0);
    process.zipf_exponent = 1.3;
    let a = process.offsets(4);
    let b = process.offsets(4);
    assert_eq!(a, b, "offsets are a pure function of the seed");
    assert_eq!(a.len(), 400);
    assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
    // Zipf head: rank 0 must be drawn more than any other rank.
    let mut counts = [0usize; 4];
    for &(_, q) in &a {
        counts[q] += 1;
    }
    assert!(
        (1..4).all(|r| counts[0] > counts[r]),
        "rank 0 dominates: {counts:?}"
    );
    // A different seed reshuffles the storm.
    let mut other = process.clone();
    other.seed = 12;
    assert_ne!(other.offsets(4), a);
}
