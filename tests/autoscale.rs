//! The elastic-scaling layer's contract, end to end:
//!
//! 1. **Off by default** — the default configuration has no autoscaling;
//!    static-pool runs report no scale events.
//! 2. **Degenerate equivalence** — a `min == max` autoscaled pool
//!    executes the workload identically to a static pool of that size:
//!    same executions, same KV/S3/egress bills; the SQS bill differs by
//!    exactly the controller's billed depth probes, and EC2 can only get
//!    cheaper (drained victims freeze their windows early).
//! 3. **Exactly-once under drain** — a bursty autoscaled run completes
//!    every query exactly once with no redeliveries, and every scale-in
//!    victim is stopped with its billing window frozen.
//! 4. **Ledger fidelity** — per-instance billed windows sum exactly into
//!    the EC2 ledger, under both billing granularities, and the
//!    per-started-hour bill brackets the fractional one.
//! 5. **Observation only** — recording an elastic run changes nothing,
//!    and the spans carry the autoscaler's lane and decisions.

use amada::cloud::{BillingGranularity, Money, ServiceKind, SimDuration};
use amada::index::Strategy;
use amada::pattern::Query;
use amada::warehouse::{
    AutoscalePolicy, Pool, ScaleDirection, Warehouse, WarehouseConfig, WorkloadReport,
};
use amada::xmark::{generate_corpus, workload, CorpusConfig};

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        seed: 0x5CA1_AB1E,
        num_documents: 24,
        target_doc_bytes: 1100,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn queries() -> Vec<Query> {
    workload().into_iter().take(5).collect()
}

/// A compressed control loop for the tiny test corpus: queries take
/// fractions of a second, so sampling and boot shrink to match.
fn policy(min: usize, max: usize) -> AutoscalePolicy {
    AutoscalePolicy {
        min,
        max,
        sample_interval: SimDuration::from_secs(1),
        backlog_per_instance: 2,
        boot_latency: SimDuration::from_secs(2),
    }
}

/// Uploads and indexes the corpus under LUP with a static loader pool.
fn built(cfg: WarehouseConfig) -> Warehouse {
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    w.build_index();
    w
}

#[test]
fn autoscaling_is_off_by_default_and_static_runs_report_no_events() {
    let cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    assert!(cfg.loader_autoscale.is_none());
    assert!(cfg.query_autoscale.is_none());
    assert_eq!(cfg.ec2_billing, BillingGranularity::Fractional);

    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    let build = w.build_index();
    assert!(build.scale_events.is_empty());
    let report = w.run_workload(&queries(), 1);
    assert!(report.scale_events.is_empty());
    assert_eq!(w.world().sqs.stats().depth_polls, 0);
}

#[test]
fn min_equals_max_elastic_pool_matches_the_static_pool() {
    let static_cfg = {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.query_pool = Pool::new(2, cfg.query_pool.itype);
        cfg
    };
    let mut ws = built(static_cfg.clone());
    let rs = ws.run_workload(&queries(), 8);

    let mut wa = built(static_cfg);
    // The whole workload runs in about a virtual second on two
    // instances, so sample fast enough to land probes inside it.
    wa.set_query_autoscale(Some(AutoscalePolicy {
        sample_interval: SimDuration::from_micros(200_000),
        ..policy(2, 2)
    }));
    let ra = wa.run_workload(&queries(), 8);

    // Same work, same answers, same virtual timings per query.
    assert_eq!(
        format!("{:?}", rs.executions),
        format!("{:?}", ra.executions),
        "a min == max elastic pool must execute like the static pool"
    );
    // The pool never moved.
    assert!(ra.scale_events.is_empty());
    assert_eq!(rs.redelivered, 0);
    assert_eq!(ra.redelivered, 0);

    // Billing: storage tiers identical; the elastic run pays exactly its
    // depth probes on top of the static SQS bill; EC2 only gets cheaper
    // (workers that exit freeze their windows instead of riding to the
    // end of the phase).
    assert_eq!(rs.cost.kv, ra.cost.kv);
    assert_eq!(rs.cost.s3, ra.cost.s3);
    assert_eq!(rs.cost.egress, ra.cost.egress);
    let polls = wa.world().sqs.stats().depth_polls;
    assert!(polls > 0, "the controller must have sampled the queue");
    assert_eq!(
        ra.cost.sqs,
        rs.cost.sqs + wa.world().prices.qs_request * polls,
        "SQS delta must be exactly the billed depth probes"
    );
    assert!(
        ra.cost.ec2 <= rs.cost.ec2,
        "elastic EC2 {} must not exceed static EC2 {}",
        ra.cost.ec2,
        rs.cost.ec2
    );
}

/// A bursty elastic run on a shared warehouse: 3 bursts of the workload
/// x12, far enough apart that the pool drains back between them. Scale-in
/// only ever shows in a gap *between* bursts — once the last burst is
/// sent the queue closes and the members wind down by themselves — so a
/// burst must outlast the floor's first sample and two gaps must follow.
fn bursty(w: &mut Warehouse) -> WorkloadReport {
    w.set_query_pool(Pool::new(1, w.config().query_pool.itype));
    w.set_query_autoscale(Some(policy(1, 4)));
    w.run_workload_bursts(&queries(), 12, 3, SimDuration::from_secs(30))
}

#[test]
fn bursty_scale_in_is_graceful_and_exactly_once() {
    let mut w = built(WarehouseConfig::with_strategy(Strategy::Lup));
    let report = bursty(&mut w);

    // Every query ran exactly once per send: 5 queries x 12 repeats x 3
    // bursts, no lease expiries, no redeliveries, dead-letter empty.
    assert_eq!(report.executions.len(), queries().len() * 12 * 3);
    for q in queries() {
        let name = q.name.as_deref().unwrap().to_string();
        let runs = report.executions.iter().filter(|e| e.name == name).count();
        assert_eq!(runs, 36, "{name} must run exactly once per send");
    }
    assert_eq!(report.redelivered, 0, "draining never abandons a lease");

    // The bursts forced the pool out and the gap drained it back.
    let out: Vec<_> = report
        .scale_events
        .iter()
        .filter(|e| e.direction == ScaleDirection::Out)
        .collect();
    let drained: Vec<_> = report
        .scale_events
        .iter()
        .filter(|e| e.direction == ScaleDirection::In)
        .collect();
    assert!(!out.is_empty(), "bursts must trigger scale-out");
    assert!(!drained.is_empty(), "gaps must trigger scale-in");

    // Every victim is stopped with its window frozen at or before now —
    // the phase-end extension must not have resurrected it.
    let now = w.now();
    for e in &drained {
        assert!(
            w.world().ec2.is_stopped(e.instance),
            "scale-in victim {:?} must be stopped",
            e.instance
        );
        assert!(w.world().ec2.record(e.instance).end <= now);
    }

    // Per-instance billed windows sum exactly into the EC2 ledger.
    let world = w.world();
    let summed: Money = world
        .ec2
        .records()
        .iter()
        .map(|r| world.ec2.record_cost(r, &world.prices))
        .sum();
    assert_eq!(summed, world.ec2.total_cost(&world.prices));
    assert_eq!(summed, world.cost_report().ec2);
}

#[test]
fn started_hour_billing_brackets_fractional_end_to_end() {
    let run = |granularity: BillingGranularity| {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.ec2_billing = granularity;
        let mut w = built(cfg);
        let report = bursty(&mut w);
        let instances = w.world().ec2.records().len();
        (report, instances)
    };
    let (frac, n_frac) = run(BillingGranularity::Fractional);
    let (hour, n_hour) = run(BillingGranularity::PerStartedHour);

    // Billing granularity is read at settlement, never by the scheduler.
    assert_eq!(n_frac, n_hour);
    assert_eq!(
        format!("{:?}", frac.executions),
        format!("{:?}", hour.executions),
        "granularity must not perturb the simulation"
    );
    assert_eq!(
        format!("{:?}", frac.scale_events),
        format!("{:?}", hour.scale_events)
    );

    // fractional <= per-started-hour <= fractional + 1h x instances.
    assert!(frac.cost.ec2 <= hour.cost.ec2);
    let hour_large = WarehouseConfig::with_strategy(Strategy::Lup)
        .prices
        .vm_hour_large;
    assert!(
        hour.cost.ec2 <= frac.cost.ec2 + hour_large * n_hour as u64,
        "started-hour {} vs fractional {} + {} instance-hours",
        hour.cost.ec2,
        frac.cost.ec2,
        n_hour
    );
}

#[test]
fn recording_an_elastic_run_is_observation_only() {
    let run = |record: bool| {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.host.record = record;
        let mut w = built(cfg);
        let report = bursty(&mut w);
        let rendered = (
            format!("{:?}", report),
            format!("{:?}", w.world().cost_report()),
        );
        (w, rendered)
    };
    let (off_w, off) = run(false);
    let (on_w, on) = run(true);
    assert_eq!(off, on, "recorder-on elastic run diverged");
    assert_eq!(off_w.spans().len(), 0);

    // The recorded stream carries the autoscaler's decisions on its own
    // lane, the victims' drains, and the launched instances' boots.
    let spans = on_w.spans();
    let ops = |op: &str| {
        spans
            .iter()
            .filter(|s| s.service == ServiceKind::Actor && s.op == op)
            .count()
    };
    let report = &on.0;
    assert!(ops("scale-out") > 0, "scale-out decisions must be spanned");
    assert!(ops("scale-in") > 0, "scale-in decisions must be spanned");
    assert!(ops("boot") > 0, "booting instances must be spanned");
    assert!(spans
        .iter()
        .any(|s| s.ctx.actor.is_some_and(|a| a.kind == "autoscaler")));
    // Depth probes are billed SQS requests, so they appear as SQS spans
    // like any other request (ledger reconciliation depends on this).
    assert!(report.contains("scale_events"));
    let sqs_spans = spans
        .iter()
        .filter(|s| s.service == ServiceKind::Sqs)
        .count() as u64;
    assert_eq!(sqs_spans, on_w.world().sqs.stats().requests);
}
