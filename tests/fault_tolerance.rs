//! Fault-tolerance integration tests: the architecture's claim (paper
//! Section 3) that a crashed virtual instance loses its message lease and
//! another instance takes the job over, so the pipeline completes anyway.

use amada::cloud::{InstanceType, SimDuration, SimTime};
use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload_query, CorpusConfig};
use amada_core::actors::{DocCache, LoaderCore, LoaderTotals, QueryCore};
use amada_core::{RetryPolicy, LOADER_QUEUE, QUERY_QUEUE};
use amada_rng::StdRng;
use std::cell::RefCell;
use std::rc::Rc;

fn corpus(n: usize) -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        num_documents: n,
        target_doc_bytes: 1200,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

/// A loader core that crashes after two documents does not lose work: its
/// leased message reappears after the visibility timeout and a healthy
/// core indexes it, so the index ends up complete and correct.
#[test]
fn loader_crash_is_recovered_through_lease_expiry() {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.visibility = SimDuration::from_secs(30);
    let docs = corpus(12);
    let mut w = Warehouse::new(cfg.clone());
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));

    // Hand-build the loader pool: one crashing core, one healthy core.
    let totals = Rc::new(RefCell::new(LoaderTotals::default()));
    let cache: DocCache = amada_index::ExtractCache::shared();
    let start = w.now();
    let engine = w.engine_mut();
    engine.world.sqs.close(LOADER_QUEUE);
    let mk = |engine: &mut amada::cloud::Engine, crash: Option<u32>, seed: u64| {
        let mut core = LoaderCore::new(
            engine.world.ec2.launch(InstanceType::Large, start),
            2.0,
            cfg.strategy,
            cfg.extract,
            totals.clone(),
            cache.clone(),
            cfg.visibility,
            cfg.poll_interval,
            RetryPolicy::default(),
            seed,
        );
        core.crash_after = crash;
        core
    };
    let crashing = mk(engine, Some(2), 1);
    let crashed_instance = crashing.instance;
    engine.spawn(Box::new(crashing), start);
    let healthy = mk(engine, None, 2);
    engine.spawn(Box::new(healthy), start);
    engine.run();
    engine.world.sqs.open(LOADER_QUEUE);

    // Every message was eventually processed and at least one was
    // redelivered after the crashed lease expired.
    assert!(engine.world.sqs.is_empty(LOADER_QUEUE).unwrap());
    assert!(engine.world.sqs.stats().redelivered >= 1);
    assert_eq!(totals.borrow().docs, 12);
    // The crashed instance is billed past its launch: its uptime covers
    // the documents it did finish *and* the final receive that it died
    // holding (the receive is a served request the provider charges for).
    assert!(
        engine.world.ec2.record(crashed_instance).uptime() > SimDuration::ZERO,
        "crashed instance uptime must cover its served requests"
    );

    // The index is correct despite the crash (redelivery is idempotent:
    // range keys are deterministic per document).
    let q = workload_query("q6").unwrap();
    let with_crash = w.run_query(&q).exec.results.len();
    let mut clean = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
    clean.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
    clean.build_index();
    let without_crash = clean.run_query(&q).exec.results.len();
    assert_eq!(with_crash, without_crash);
}

/// A crashed query processor likewise loses its lease; a healthy one
/// answers the query.
#[test]
fn query_processor_crash_is_recovered() {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
    cfg.visibility = SimDuration::from_secs(30);
    let docs = corpus(10);
    let mut w = Warehouse::new(cfg.clone());
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
    w.build_index();

    // q1 targets item-6-0, which exists in every corpus of ≥ 7 documents.
    let q = workload_query("q1").unwrap();
    let start = w.now();
    let executions = Rc::new(RefCell::new(Vec::new()));
    let cache: DocCache = amada_index::ExtractCache::shared();
    let engine = w.engine_mut();
    let t = engine
        .world
        .sqs
        .send(start, QUERY_QUEUE, format!("q1\n{q}"))
        .unwrap();
    engine.world.sqs.close(QUERY_QUEUE);
    let mk = |engine: &mut amada::cloud::Engine, crash: Option<u32>, seed: u64| QueryCore {
        instance: engine.world.ec2.launch(InstanceType::Large, t),
        cores: 2,
        ecu: 2.0,
        strategy: Some(Strategy::Lu),
        plan: None,
        partitions: Rc::default(),
        opts: cfg.extract,
        cache: cache.clone(),
        visibility: cfg.visibility,
        poll: cfg.poll_interval,
        executions: executions.clone(),
        policy: RetryPolicy::default(),
        rng: StdRng::seed_from_u64(seed),
        crash_after: crash,
        processed: 0,
        attempt: 0,
        drain: None,
    };
    // The crashing processor receives the message first (spawned first).
    let crashing = mk(engine, Some(0), 1);
    let crashed_instance = crashing.instance;
    engine.spawn(Box::new(crashing), t);
    let healthy = mk(engine, None, 2);
    engine.spawn(Box::new(healthy), t + SimDuration::from_millis(1));
    let end = engine.run();
    engine.world.sqs.open(QUERY_QUEUE);

    assert_eq!(executions.borrow().len(), 1, "the healthy core answered");
    assert!(engine.world.sqs.stats().redelivered >= 1);
    // Recovery took at least the visibility timeout.
    assert!(end >= SimTime::ZERO + SimDuration::from_secs(30));
    assert!(!executions.borrow()[0].results.is_empty());
    // Billing regression: this instance's only act was the receive it
    // crashed on; before the fix its uptime was zero and the receive went
    // unbilled.
    assert!(
        engine.world.ec2.record(crashed_instance).uptime() > SimDuration::ZERO,
        "a crash after one receive still bills that receive's uptime"
    );
}
