//! Cross-check: the symbolic Section 7.3 cost formulas against the
//! charges metered live by the simulated services — the validation the
//! paper performs in Section 8.3.

use amada::cloud::Money;
use amada::index::Strategy;
use amada::warehouse::{CostModel, Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload_query, CorpusConfig};

fn corpus(n: usize) -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        num_documents: n,
        target_doc_bytes: 1500,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

fn close(a: Money, b: Money, tolerance: f64, what: &str) {
    let (a, b) = (a.dollars(), b.dollars());
    let rel = (a - b).abs() / b.max(1e-15);
    assert!(
        rel < tolerance,
        "{what}: formula {a} vs metered {b} (rel {rel:.4})"
    );
}

#[test]
fn upload_cost_matches_formula_exactly() {
    let docs = corpus(30);
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
    let up = w.upload_documents(docs);
    let model = CostModel::default();
    assert_eq!(up.cost, model.upload_documents(30));
}

#[test]
fn indexing_cost_matches_formula() {
    let docs = corpus(40);
    for strategy in [Strategy::Lu, Strategy::TwoLupi] {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
        let before_kv = w.world().kv.stats().put_ops;
        let up = w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
        let report = w.build_index();
        let put_ops = w.world().kv.stats().put_ops - before_kv;
        let model = CostModel::default();
        let formula = model.index_building(
            40,
            put_ops,
            report.total_time,
            report.instances as u64,
            report.itype,
        );
        // The formula has no idle-poll queue requests and bills every
        // instance for the exact wall window; the metered run includes
        // polls and per-instance drain jitter. They must agree within a
        // few percent.
        close(
            formula,
            report.cost.total() + up.cost,
            0.05,
            &format!("ci$ {strategy}"),
        );
        // The index-store component is exact by construction.
        assert_eq!(report.cost.kv, model.prices.idx_put * put_ops);
    }
}

#[test]
fn indexed_query_cost_matches_formula() {
    let docs = corpus(40);
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lui));
    w.upload_documents(docs);
    w.build_index();
    let q = workload_query("q4").unwrap();
    let run = w.run_query(&q);
    let model = CostModel::default();
    let formula = model.query_indexed(
        run.exec.result_bytes,
        run.exec.index_get_ops,
        run.exec.docs_fetched as u64,
        run.exec.response_time,
        amada::cloud::InstanceType::Large,
    );
    // The formula idealizes: exactly 6 queue requests and instance time
    // equal to the processing time. The metered run adds the final empty
    // poll that detects queue drain and the front-end's enqueue window —
    // a fixed few-microdollar overhead that fades as queries grow.
    close(formula, run.cost.total(), 0.10, "cq$ indexed");
    // Component identities.
    assert_eq!(run.cost.kv, model.prices.idx_get * run.exec.index_get_ops);
    assert_eq!(
        run.cost.egress,
        model.prices.egress_gb.per_gb(run.exec.result_bytes)
    );
}

#[test]
fn scan_query_cost_matches_formula() {
    let docs = corpus(40);
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
    w.upload_documents(docs);
    w.build_index();
    let q = workload_query("q7").unwrap();
    let run = w.run_query_no_index(&q);
    let model = CostModel::default();
    let formula = model.query_no_index(
        run.exec.result_bytes,
        40,
        run.exec.response_time,
        amada::cloud::InstanceType::Large,
    );
    close(formula, run.cost.total(), 0.10, "cq$ no-index");
    assert_eq!(
        run.cost.kv,
        Money::ZERO,
        "a scan never touches the index store"
    );
}

#[test]
fn storage_cost_matches_formula_exactly() {
    let docs = corpus(40);
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
    w.upload_documents(docs);
    w.build_index();
    let model = CostModel::default();
    let kv = w.world().kv.stats();
    let expected = model.monthly_storage(w.world().s3.stats().stored_bytes, kv.stored_bytes());
    assert_eq!(w.storage_cost().total(), expected);
}
