//! Incremental-warehouse integration tests: adding documents in batches
//! and replacing a document under its existing URI.

use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada_pattern::parse_query;

#[test]
fn replacing_a_document_updates_answers_and_accounting() {
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
    w.upload_documents([
        (
            "p.xml",
            "<painting><name>Olympia</name><year>1863</year></painting>",
        ),
        (
            "q.xml",
            "<painting><name>The Lion Hunt</name><year>1854</year></painting>",
        ),
    ]);
    w.build_index();
    let by_year = |w: &mut Warehouse, year: &str| {
        let q = parse_query(&format!("//painting[/name{{val}}, /year{{={year}}}]")).unwrap();
        let mut q = q;
        q.name = Some(format!("year-{year}"));
        w.run_query(&q).exec.results.len()
    };
    assert_eq!(by_year(&mut w, "1863"), 1);

    // Replace p.xml: Olympia's year is corrected; the document count and
    // corpus bytes must reflect the replacement, not a duplicate.
    let docs_before = w.documents().len();
    w.upload_documents([(
        "p.xml",
        "<painting><name>Olympia</name><year>1865</year></painting>",
    )]);
    w.build_index();
    assert_eq!(w.documents().len(), docs_before, "no duplicate URI listing");
    assert_eq!(
        w.corpus_bytes(),
        w.world()
            .s3
            .object_size(amada_core::DOC_BUCKET, "p.xml")
            .unwrap()
            + w.world()
                .s3
                .object_size(amada_core::DOC_BUCKET, "q.xml")
                .unwrap(),
        "corpus bytes equal the stored bytes after replacement"
    );
    // The new content answers, and the rebuild retracted the stale 1863
    // entry — the old year's look-up touches nothing in the index.
    assert_eq!(by_year(&mut w, "1865"), 1);
    assert_eq!(by_year(&mut w, "1863"), 0);
}

#[test]
fn batched_uploads_accumulate() {
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lui));
    for i in 0..3 {
        w.upload_documents([(
            format!("doc{i}.xml"),
            format!("<item><name>thing {i}</name></item>"),
        )]);
        let r = w.build_index();
        assert_eq!(r.documents, 1);
    }
    assert_eq!(w.documents().len(), 3);
    let mut q = parse_query("//item[/name{val}]").unwrap();
    q.name = Some("all".into());
    assert_eq!(w.run_query(&q).exec.results.len(), 3);
}
