//! Cross-crate integration tests: the full warehouse pipeline, across
//! strategies and key-value backends, checked against direct in-memory
//! evaluation of the same corpus.

use amada::cloud::{KvBackend, SimpleDbConfig};
use amada::index::Strategy;
use amada::pattern::evaluate_query_on_documents;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload, CorpusConfig};
use amada::xml::Document;

fn corpus(n: usize) -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        num_documents: n,
        target_doc_bytes: 1500,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

/// Ground truth: evaluate a query directly on the parsed corpus.
fn direct_results(docs: &[(String, String)], q: &amada::pattern::Query) -> Vec<Vec<String>> {
    let parsed: Vec<Document> = docs
        .iter()
        .map(|(u, x)| Document::parse_str(u.clone(), x).unwrap())
        .collect();
    let refs: Vec<&Document> = parsed.iter().collect();
    let (res, _) = evaluate_query_on_documents(q, refs.iter().copied());
    let mut rows: Vec<Vec<String>> = res.into_iter().map(|t| t.columns).collect();
    rows.sort();
    rows
}

#[test]
fn warehouse_results_match_direct_evaluation_for_all_strategies() {
    let docs = corpus(40);
    for strategy in Strategy::ALL {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
        w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
        w.build_index();
        for q in workload() {
            let expected = direct_results(&docs, &q);
            let run = w.run_query(&q);
            let mut got: Vec<Vec<String>> =
                run.exec.results.into_iter().map(|t| t.columns).collect();
            got.sort();
            assert_eq!(got, expected, "query {:?} under {strategy}", q.name);
        }
    }
}

#[test]
fn warehouse_works_on_simpledb_backend() {
    let docs = corpus(25);
    for strategy in [Strategy::Lu, Strategy::Lui] {
        let mut cfg = WarehouseConfig::with_strategy(strategy);
        cfg.backend = KvBackend::Simple(SimpleDbConfig::default());
        let mut w = Warehouse::new(cfg);
        w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
        let build = w.build_index();
        assert_eq!(build.documents, 25);
        for q in workload().into_iter().take(4) {
            let expected = direct_results(&docs, &q);
            let run = w.run_query(&q);
            let mut got: Vec<Vec<String>> =
                run.exec.results.into_iter().map(|t| t.columns).collect();
            got.sort();
            assert_eq!(got, expected, "query {:?} on SimpleDB/{strategy}", q.name);
        }
    }
}

#[test]
fn fulltext_free_index_still_answers_contains_queries() {
    // Without word keys the look-up is less precise (falls back to label
    // keys) but evaluation still filters exactly.
    let docs = corpus(30);
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.extract = amada::index::ExtractOptions { index_words: false };
    let mut w = Warehouse::new(cfg);
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
    w.build_index();
    let q3 = amada::xmark::workload_query("q3").unwrap();
    let expected = direct_results(&docs, &q3);
    let run = w.run_query(&q3);
    let mut got: Vec<Vec<String>> = run.exec.results.into_iter().map(|t| t.columns).collect();
    got.sort();
    assert_eq!(got, expected);
}

#[test]
fn no_index_baseline_matches_direct_evaluation() {
    let docs = corpus(30);
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
    w.build_index();
    for q in workload().into_iter().take(5) {
        let expected = direct_results(&docs, &q);
        let run = w.run_query_no_index(&q);
        let mut got: Vec<Vec<String>> = run.exec.results.into_iter().map(|t| t.columns).collect();
        got.sort();
        assert_eq!(got, expected, "query {:?} without index", q.name);
    }
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    let docs = corpus(20);
    let run = || {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::TwoLupi));
        w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
        let b = w.build_index();
        let q = amada::xmark::workload_query("q4").unwrap();
        let r = w.run_query(&q);
        (b.total_time, r.exec.response_time, r.cost.total())
    };
    assert_eq!(run(), run(), "simulation must be bit-for-bit reproducible");
}
