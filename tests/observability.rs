//! The observability layer's contract, end to end:
//!
//! 1. **Identity** — recording only *watches* the simulation: a run with
//!    the recorder on is bit-identical (reports, virtual times, bills) to
//!    the same run with it off.
//! 2. **Ledger reconciliation** — the spans are an independent view of
//!    the same requests the billing counters meter, so summing span
//!    charges per service reproduces the ledger's cost report exactly
//!    (to within per-span rounding for the one volume-priced service).
//! 3. **Phase reconciliation** — the actor spans recorded during query
//!    processing carry exactly the Figure 9b/9c phase decomposition the
//!    query reports already expose.
//! 4. **Export** — the Chrome trace emitted from a real run is valid JSON
//!    and carries the expected lanes and events.

use amada::cloud::{Money, Outcome, Phase, ServiceKind, SimDuration, Span};
use amada::index::Strategy;
use amada::obs::{chrome_trace, summarize, validate_json, Attribution};
use amada::warehouse::{Warehouse, WarehouseConfig, WorkloadReport};
use amada::xmark::{generate_corpus, CorpusConfig};

fn corpus() -> Vec<(String, String)> {
    let cfg = CorpusConfig {
        seed: 0x0B5E_2BED,
        num_documents: 14,
        target_doc_bytes: 1100,
        ..Default::default()
    };
    generate_corpus(&cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

/// Uploads, builds and runs part of the workload; returns the warehouse
/// plus the Debug renderings of every report produced along the way.
fn run(record: bool) -> (Warehouse, WorkloadReport, Vec<String>) {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.host.record = record;
    let mut w = Warehouse::new(cfg);
    w.upload_documents(corpus());
    let mut out = vec![format!("{:?}", w.build_index())];
    let queries: Vec<_> = amada::xmark::workload().into_iter().take(5).collect();
    let report = w.run_workload(&queries, 1);
    out.push(format!("{:?}", report));
    out.push(format!("{:?}", w.world().cost_report()));
    (w, report, out)
}

#[test]
fn recording_is_observation_only() {
    let (off_w, _, off) = run(false);
    let (on_w, _, on) = run(true);
    assert_eq!(off, on, "recorder-on run diverged from recorder-off run");
    assert_eq!(off_w.spans().len(), 0, "off recorder must collect nothing");
    assert!(on_w.spans().len() > 100, "on recorder must collect the run");
}

#[test]
fn span_billing_reconciles_with_the_ledger() {
    let (w, _, _) = run(true);
    let spans = w.spans();
    let world = w.world();

    // The per-service reconciliation (kv/s3/sqs exact, egress to within
    // per-span rounding, actor unbilled) lives in the shared invariant
    // registry so `repro check` exercises the same predicate.
    if let Err(e) = amada_check::invariants::ledger_matches_spans(&spans, world) {
        panic!("span billing vs ledger: {e}");
    }

    // Attribution is lossless: the phase decomposition sums back to the
    // total span charge.
    let a = Attribution::attribute(&spans);
    assert!(a.phases_sum_to_total());
    assert_eq!(
        a.total,
        spans.iter().map(|s| s.billed).sum::<Money>(),
        "attribution total vs raw span sum"
    );
    for phase in [Phase::Upload, Phase::Build, Phase::Query] {
        assert!(a.phase(phase) > Money::ZERO, "no cost in {}", phase.label());
    }
}

#[test]
fn actor_spans_reconcile_with_phase_decomposition() {
    let (w, report, _) = run(true);
    let spans = w.spans();

    let total_for = |op: &str| -> SimDuration {
        spans
            .iter()
            .filter(|s| s.service == ServiceKind::Actor && s.op == op)
            .map(Span::duration)
            .fold(SimDuration::ZERO, |a, d| a + d)
    };
    let sum_phases = |f: fn(&amada::warehouse::QueryPhases) -> SimDuration| -> SimDuration {
        report
            .executions
            .iter()
            .map(|e| f(&e.phases))
            .fold(SimDuration::ZERO, |a, d| a + d)
    };

    assert_eq!(total_for("lookup_get"), sum_phases(|p| p.lookup_get));
    assert_eq!(total_for("plan"), sum_phases(|p| p.plan));
    assert_eq!(total_for("transfer_eval"), sum_phases(|p| p.transfer_eval));

    // Every query-phase span carries the query it served, so per-query
    // duration roll-ups are possible (Figures 9b/9c per query).
    assert!(spans
        .iter()
        .filter(|s| s.service == ServiceKind::Actor && s.op == "lookup_get")
        .all(|s| s.ctx.query.is_some()));
}

#[test]
fn exported_trace_is_valid_chrome_json() {
    let (w, _, _) = run(true);
    let spans = w.spans();
    let world = w.world();
    let json = chrome_trace(&spans, world.ec2.records(), &world.prices);
    validate_json(&json).expect("trace must be valid JSON");
    assert!(json.contains("\"traceEvents\""));
    assert!(
        json.contains("\"name\":\"loader 0\""),
        "loader lane missing"
    );
    assert!(json.contains("\"cat\":\"ec2\""), "ec2 lanes missing");

    // The summary roll-up sees every span the trace serialised.
    let rows = summarize(&spans);
    let total: u64 = rows.iter().map(|r| r.count).sum();
    assert_eq!(total as usize, spans.len());
    // Empty SQS polls are recorded (billed, no payload) and visible.
    assert!(spans
        .iter()
        .any(|s| s.service == ServiceKind::Sqs && s.outcome == Outcome::Missing));
}
