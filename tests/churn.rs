//! Document-churn integration tests: arbitrary upload/replace/delete
//! interleavings must keep the warehouse accounting reconciled with the
//! live file store, and churn under injected faults (throttles, crashed
//! deletes, mid-replace loader crashes) must converge to the exact same
//! index bytes as a fault-free run — at strictly higher cost.

use amada::cloud::{FaultConfig, InstanceType, SimDuration};
use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada_core::actors::{DocCache, LoaderCore, LoaderTotals};
use amada_core::{RetryPolicy, DOC_BUCKET, LOADER_QUEUE};
use amada_rng::StdRng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

fn doc_xml(id: u64, version: u64) -> String {
    // Content varies with the version so replaces genuinely change keys;
    // tag names rotate so different documents share some index keys.
    format!(
        "<item><name>doc {id} v{version}</name><tag{}>x</tag{}>{}</item>",
        id % 5,
        id % 5,
        "<pad>filler</pad>".repeat((version % 3) as usize)
    )
}

/// Satellite: `corpus_bytes`, `documents()` and `storage_cost` reconcile
/// exactly with the live S3 inventory after arbitrary churn, and the
/// index equals a fresh build of whatever survived.
#[test]
fn accounting_reconciles_after_arbitrary_churn() {
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
        let mut live: BTreeMap<String, String> = BTreeMap::new();
        let mut next_id = 0u64;
        let mut version = 0u64;
        for _ in 0..40 {
            version += 1;
            match rng.gen_range(0u64..5) {
                // Upload a fresh document.
                0 | 1 => {
                    let uri = format!("doc{next_id}.xml");
                    next_id += 1;
                    let xml = doc_xml(next_id, version);
                    live.insert(uri.clone(), xml.clone());
                    w.upload_documents([(uri, xml)]);
                }
                // Replace a random live document (new or identical body).
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let uris: Vec<&String> = live.keys().collect();
                    let uri = uris[rng.gen_range(0..uris.len() as u64) as usize].clone();
                    let id = rng.gen_range(0..next_id.max(1));
                    let xml = doc_xml(id, version);
                    live.insert(uri.clone(), xml.clone());
                    w.upload_documents([(uri, xml)]);
                }
                // Delete a random live document.
                3 => {
                    if live.is_empty() {
                        continue;
                    }
                    let uris: Vec<&String> = live.keys().collect();
                    let uri = uris[rng.gen_range(0..uris.len() as u64) as usize].clone();
                    live.remove(&uri);
                    w.delete_documents([uri]);
                }
                // Drain the loader queue.
                _ => {
                    w.build_index();
                }
            }
        }
        w.build_index();

        // The S3 inventory is the ground truth.
        let inventory = w.world().s3.peek_all(DOC_BUCKET);
        let mut listed: Vec<&str> = w.documents().iter().map(|s| s.as_str()).collect();
        listed.sort_unstable();
        let stored: Vec<&str> = inventory.iter().map(|(u, _)| u.as_str()).collect();
        assert_eq!(listed, stored, "seed {seed}: documents() vs S3 listing");
        let stored_bytes: u64 = inventory.iter().map(|(_, b)| b.len() as u64).sum();
        assert_eq!(
            w.corpus_bytes(),
            stored_bytes,
            "seed {seed}: corpus_bytes vs S3 inventory"
        );

        // A fresh warehouse of the surviving corpus stores the same
        // bytes, charges the same monthly rate, and builds the exact
        // same index.
        let mut fresh = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
        fresh.upload_documents(live.clone());
        fresh.build_index();
        assert_eq!(w.corpus_bytes(), fresh.corpus_bytes(), "seed {seed}");
        assert_eq!(w.storage_cost(), fresh.storage_cost(), "seed {seed}");
        assert_eq!(
            w.world().kv.peek_all(),
            fresh.world().kv.peek_all(),
            "seed {seed}: churned index differs from fresh build"
        );
    }
}

/// Satellite: churn under injected throttles — including throttled
/// S3 DELETEs and throttled index retraction — converges to the exact
/// index and inventory of the fault-free run, at strictly higher cost.
#[test]
fn throttled_churn_converges_at_higher_cost() {
    let run = |rate: f64| {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.faults = FaultConfig {
            seed: 0xFA117,
            s3_rate: rate,
            kv_rate: rate,
            sqs_rate: rate,
        };
        let mut w = Warehouse::new(cfg);
        let docs: Vec<(String, String)> = (0..10)
            .map(|i| (format!("doc{i}.xml"), doc_xml(i, 0)))
            .collect();
        w.upload_documents(docs);
        w.build_index();
        // Replace four documents (shrinks and grows), delete three.
        w.upload_documents((0..4).map(|i| (format!("doc{i}.xml"), doc_xml(i + 20, 1))));
        w.build_index();
        w.delete_documents((4..7).map(|i| format!("doc{i}.xml")));
        w
    };
    let clean = run(0.0);
    let faulty = run(0.08);
    let s3 = faulty.world().s3.stats();
    let kv = faulty.world().kv.stats();
    assert!(
        s3.throttled + kv.throttled > 0,
        "8% fault rate must throttle something"
    );
    assert_eq!(
        faulty.world().kv.peek_all(),
        clean.world().kv.peek_all(),
        "throttled churn must converge to the fault-free index"
    );
    assert_eq!(
        faulty.world().s3.peek_all(DOC_BUCKET),
        clean.world().s3.peek_all(DOC_BUCKET)
    );
    assert_eq!(faulty.corpus_bytes(), clean.corpus_bytes());
    assert!(
        faulty.total_cost().total() > clean.total_cost().total(),
        "every throttled retry is billed: faulty {} vs clean {}",
        faulty.total_cost().total(),
        clean.total_cost().total()
    );
}

/// Tentpole invariant: a loader that crashes *mid-replace* — after
/// writing some new-version batches, or mid-retraction — is recovered by
/// redelivery, and the index converges to exactly the fault-free bytes:
/// either the old or the new version is visible at every instant, never
/// an interleaving that survives.
#[test]
fn mid_replace_crash_converges_to_the_new_version() {
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.visibility = SimDuration::from_secs(30);
    let v1: Vec<(String, String)> = (0..6)
        .map(|i| (format!("doc{i}.xml"), doc_xml(i, 0)))
        .collect();
    let v2: Vec<(String, String)> = (0..6)
        .map(|i| (format!("doc{i}.xml"), doc_xml(i + 40, 1)))
        .collect();

    let mut w = Warehouse::new(cfg.clone());
    w.upload_documents(v1.clone());
    w.build_index();
    let clean_old = w.world().kv.peek_all();
    w.upload_documents(v2.clone());

    // Rebuild with a hand-built pool: one core crashes after its first
    // index batch (mid-replace — new items partly written, stale items
    // not yet deleted), a healthy core picks up the redelivery.
    let totals = Rc::new(RefCell::new(LoaderTotals::default()));
    let cache: DocCache = w.cache().clone();
    let registry = w.retraction_registry();
    let start = w.now();
    let engine = w.engine_mut();
    engine.world.sqs.close(LOADER_QUEUE);
    let mk = |engine: &mut amada::cloud::Engine, seed: u64| {
        let mut core = LoaderCore::new(
            engine.world.ec2.launch(InstanceType::Large, start),
            2.0,
            cfg.strategy,
            cfg.extract,
            totals.clone(),
            cache.clone(),
            cfg.visibility,
            cfg.poll_interval,
            RetryPolicy::default(),
            seed,
        );
        core.retractions = registry.clone();
        core
    };
    let mut crashing = mk(engine, 1);
    crashing.crash_after_batches = Some(1);
    engine.spawn(Box::new(crashing), start);
    let healthy = mk(engine, 2);
    engine.spawn(Box::new(healthy), start);
    engine.run();
    engine.world.sqs.open(LOADER_QUEUE);
    assert!(
        engine.world.sqs.stats().redelivered >= 1,
        "the crash must lose a lease"
    );
    let crashed_index = engine.world.kv.peek_all();
    let crashed_put_ops = engine.world.kv.stats().put_ops;

    // The fault-free run of the same churn.
    let mut clean = Warehouse::new(cfg.clone());
    clean.upload_documents(v1);
    clean.build_index();
    clean.upload_documents(v2.clone());
    clean.build_index();
    let clean_index = clean.world().kv.peek_all();
    assert_ne!(clean_index, clean_old, "the replace must change the index");
    assert_eq!(
        crashed_index, clean_index,
        "mid-replace crash must converge to the new version, byte-identical"
    );
    assert!(
        crashed_put_ops > clean.world().kv.stats().put_ops,
        "recovery rewrites idempotently — visible as extra billed writes"
    );

    // And both equal a fresh build of v2 alone: no v1 leftovers at all.
    let mut fresh = Warehouse::new(cfg);
    fresh.upload_documents(v2);
    fresh.build_index();
    assert_eq!(clean_index, fresh.world().kv.peek_all());
}
