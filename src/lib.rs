//! # amada — cloud XML warehousing with cost-aware indexing
//!
//! A from-scratch Rust reproduction of *"Web Data Indexing in the Cloud:
//! Efficiency and Cost Reductions"* (Camacho-Rodríguez, Colazzo, Manolescu;
//! EDBT 2013): an architecture for warehousing tree-shaped Web data (XML) in
//! a commercial cloud, where documents live in a file store, a structural /
//! full-text index lives in a key-value store, virtual instances run the
//! indexing and query-processing modules, and message queues tie the
//! pipeline together — with a first-class *monetary cost model*.
//!
//! This umbrella crate re-exports the subsystem crates:
//!
//! * [`xml`] — XML parser, arena trees, *(pre, post, depth)* structural IDs;
//! * [`pattern`] — the tree-pattern query language and evaluators
//!   (naive + holistic twig join);
//! * [`xmark`] — deterministic XMark-style corpus generator and the paper's
//!   experimental workload;
//! * [`cloud`] — the simulated commercial cloud (file store, key-value
//!   stores, queues, instances, pricing, discrete-event clock);
//! * [`index`] — the four indexing strategies (LU, LUP, LUI, 2LUPI) and
//!   their look-up planners;
//! * [`warehouse`] — the end-to-end warehouse tying everything together,
//!   plus the Section 7 cost model;
//! * [`obs`] — analyses over the recorded span stream (time-series, cost
//!   attribution, Chrome trace export).
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use amada_cloud as cloud;
pub use amada_core as warehouse;
pub use amada_index as index;
pub use amada_obs as obs;
pub use amada_pattern as pattern;
pub use amada_xmark as xmark;
pub use amada_xml as xml;
