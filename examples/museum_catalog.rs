//! The paper's running example at corpus scale: a gallery of painting
//! documents plus museum documents referencing them (Figures 2–3),
//! comparing all four indexing strategies on the five Figure 2 queries —
//! including q5, the value join between museums and paintings.
//!
//! ```text
//! cargo run --example museum_catalog
//! ```

use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{figure2_queries, generate_gallery};
use amada_pattern::parse_query;

fn main() {
    // A deterministic gallery: 300 paintings across six painters, plus
    // 5 museum documents referencing paintings by @id.
    let gallery = generate_gallery(42, 300, 5);
    println!(
        "gallery: {} documents ({} bytes)",
        gallery.len(),
        gallery.iter().map(|d| d.xml.len()).sum::<usize>()
    );

    println!(
        "\n{:<6} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "query", "strategy", "candidates", "fetched", "results", "cost"
    );
    for strategy in Strategy::ALL {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
        w.upload_documents(gallery.iter().map(|d| (d.uri.clone(), d.xml.clone())));
        let build = w.build_index();

        for (name, text) in figure2_queries() {
            let mut q = parse_query(text).expect("figure 2 queries parse");
            q.name = Some(name.to_string());
            let run = w.run_query(&q);
            println!(
                "{:<6} {:>10} {:>12} {:>12} {:>10} {:>12}",
                name,
                strategy.name(),
                run.exec.docs_from_index,
                run.exec.docs_fetched,
                run.exec.results.len(),
                run.cost.total().to_string(),
            );
        }
        println!(
            "{:<6} {:>10} build: {} entries, {}, charged {}\n",
            "--",
            strategy.name(),
            build.entries,
            build.total_time,
            build.cost.total()
        );
    }

    // Show q5's actual join results once (strategy-independent).
    let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lui));
    w.upload_documents(gallery.iter().map(|d| (d.uri.clone(), d.xml.clone())));
    w.build_index();
    let (name, text) = figure2_queries()[4];
    let mut q5 = parse_query(text).unwrap();
    q5.name = Some(name.into());
    let run = w.run_query(&q5);
    println!(
        "museums exposing paintings by Delacroix ({} joined tuples):",
        run.exec.results.len()
    );
    let mut museums: Vec<&str> = run
        .exec
        .results
        .iter()
        .map(|t| t.columns[0].as_str())
        .collect();
    museums.sort();
    museums.dedup();
    for m in museums {
        println!("  {m}");
    }
}
