//! The paper's experimental setting in miniature: an XMark corpus
//! warehoused in the cloud, the ten-query workload (Section 8.2), and a
//! side-by-side of response time and monetary cost with and without the
//! index — the headline claim of the paper ("indexing can reduce
//! processing time by up to two orders of magnitude and costs by one
//! order of magnitude").
//!
//! ```text
//! cargo run --release --example xmark_warehouse [docs] [strategy]
//! ```

use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{generate_corpus, workload, CorpusConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let docs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let strategy = args
        .next()
        .and_then(|a| Strategy::parse(&a))
        .unwrap_or(Strategy::Lup);

    let corpus_cfg = CorpusConfig {
        num_documents: docs,
        ..Default::default()
    };
    let corpus = generate_corpus(&corpus_cfg);
    let bytes: usize = corpus.iter().map(|d| d.xml.len()).sum();
    println!(
        "corpus: {docs} XMark documents, {:.2} MB; strategy {strategy}",
        bytes as f64 / 1048576.0
    );

    let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
    w.upload_documents(corpus.into_iter().map(|d| (d.uri, d.xml)));
    let build = w.build_index();
    println!(
        "index build on {} large instances: {} entries, total {} (extract {}, upload {}), charged {}",
        build.instances,
        build.entries,
        build.total_time,
        build.avg_extraction_time,
        build.avg_upload_time,
        build.cost.total()
    );
    println!(
        "monthly storage: data {} + index {}",
        w.storage_cost().file_store,
        w.storage_cost().index_store
    );

    println!(
        "\n{:<5} {:>12} {:>12} {:>8} {:>13} {:>13} {:>8} {:>8}",
        "query", "t-indexed", "t-scan", "speedup", "$-indexed", "$-scan", "saving", "results"
    );
    let mut total_indexed = 0.0;
    let mut total_scan = 0.0;
    for q in workload() {
        let with = w.run_query(&q);
        let without = w.run_query_no_index(&q);
        let ti = with.exec.response_time.as_secs_f64();
        let ts = without.exec.response_time.as_secs_f64();
        let ci = with.cost.total().dollars();
        let cs = without.cost.total().dollars();
        total_indexed += ci;
        total_scan += cs;
        println!(
            "{:<5} {:>11.3}s {:>11.3}s {:>7.1}x {:>13.8} {:>13.8} {:>7.1}% {:>8}",
            q.name.as_deref().unwrap(),
            ti,
            ts,
            ts / ti,
            ci,
            cs,
            100.0 * (1.0 - ci / cs),
            with.exec.results.len(),
        );
    }
    println!(
        "\nworkload total: ${total_indexed:.6} indexed vs ${total_scan:.6} scanning \
         ({:.1}% saved)",
        100.0 * (1.0 - total_indexed / total_scan)
    );
}
