//! Cost what-if explorer: the Section 7 cost model applied symbolically,
//! the index advisor (the paper's future-work tool), and provider
//! portability (Table 1: the same architecture priced on AWS, Google
//! Cloud and Windows Azure).
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use amada::cloud::{InstanceType, PriceTable, SimDuration};
use amada::index::{explain, ExtractOptions, Strategy};
use amada::warehouse::{advise, advise_queries, CostModel, WarehouseConfig};
use amada::xmark::{generate_corpus, workload, workload_query, CorpusConfig};

fn main() {
    // ----- 1. The paper's own scenario, through the symbolic cost model.
    // 20 000 documents, 40 GB, LUP index ≈ 55 GB with full text.
    let model = CostModel::default();
    println!("== Section 7 cost model, paper-scale inputs ==");
    println!(
        "upload 20 000 documents:        {}",
        model.upload_documents(20_000)
    );
    let ci = model.index_building(
        20_000,
        140_000_000, // billed write units for a ~55 GB index
        SimDuration::from_secs(4 * 3600 + 25 * 60),
        8,
        InstanceType::Large,
    );
    println!("build LUP index (8 L, 4h25):    {ci}");
    println!(
        "store 40 GB data + 55 GB index: {} / month",
        model.monthly_storage(40_000_000_000, 55_000_000_000)
    );
    println!(
        "selective query, indexed:       {}",
        model.query_indexed(
            500_000,
            100,
            350,
            SimDuration::from_secs(12),
            InstanceType::Large
        )
    );
    println!(
        "same query, full scan:          {}",
        model.query_no_index(
            500_000,
            20_000,
            SimDuration::from_secs(1800),
            InstanceType::Large
        )
    );

    // ----- 2. Provider portability (paper Table 1).
    println!("\n== Same workload, different providers ==");
    for prices in [
        PriceTable::aws_singapore_2012(),
        PriceTable::google_cloud_2012(),
        PriceTable::windows_azure_2012(),
    ] {
        let m = CostModel::new(prices);
        println!(
            "{:<28} storage {} / month, indexed query {}",
            m.prices.provider,
            m.monthly_storage(40_000_000_000, 55_000_000_000),
            m.query_indexed(
                500_000,
                100,
                350,
                SimDuration::from_secs(12),
                InstanceType::Large
            ),
        );
    }

    // ----- 3. Look-up plans (the paper's Figure 5, for each strategy).
    println!("\n== Look-up plans for q2 ==");
    let q2 = workload_query("q2").expect("q2 exists");
    for s in Strategy::ALL {
        println!("{}", explain(s, &q2, ExtractOptions::default()));
    }

    // ----- 4. The index advisor on a live sample.
    println!("\n== Index advisor (paper Section 9 future work) ==");
    let sample_cfg = CorpusConfig {
        num_documents: 120,
        ..Default::default()
    };
    let sample: Vec<(String, String)> = generate_corpus(&sample_cfg)
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect();
    let queries = workload();
    for expected_runs in [5u32, 500] {
        let advice = advise(
            &sample,
            &queries,
            expected_runs,
            1.0,
            &WarehouseConfig::default(),
        );
        println!("\nexpected workload runs: {expected_runs}");
        println!(
            "  {:<8} {:>14} {:>14} {:>14} {:>14}",
            "strategy", "build", "$/run", "storage/mo", "projected"
        );
        for e in &advice.ranked {
            println!(
                "  {:<8} {:>14} {:>14} {:>14} {:>14}",
                e.strategy.map_or("none", |s| s.name()),
                e.build_cost.to_string(),
                e.run_cost.to_string(),
                e.storage_per_month.to_string(),
                e.projected_total.to_string(),
            );
        }
        println!(
            "  no-index baseline projected: {} -> indexing {}",
            advice.no_index_total,
            if advice.indexing_pays_off() {
                "pays off"
            } else {
                "does not pay off yet"
            }
        );
    }

    // ----- 5. Per-query structural hints from the DataGuide summary
    // (the paper's Section 8.5 criterion for LUI/2LUPI).
    println!("\n== Per-query strategy hints (DataGuide summary) ==");
    for (name, hints) in advise_queries(&sample, &queries).expect("sample corpus parses") {
        for (i, h) in hints.iter().enumerate() {
            println!(
                "  {name} pattern {}: {} branch(es), est. selectivity {:.3}, \
                 co-occurrence gap {:.2} -> {}",
                i + 1,
                h.branches,
                h.estimated_selectivity,
                h.cooccurrence_gap,
                if h.use_fine_granularity {
                    "LUI/2LUPI"
                } else {
                    "LU/LUP"
                }
            );
        }
    }
}
