//! Quickstart: store two XML documents in the cloud warehouse, index
//! them, and run a tree-pattern query — the paper's Figure 3 documents
//! and a Figure 2 query, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use amada::index::Strategy;
use amada::warehouse::{Warehouse, WarehouseConfig};
use amada::xmark::{delacroix_xml, manet_xml};
use amada_pattern::parse_query;

fn main() {
    // 1. Provision a warehouse using the LUP (Label-URI-Path) strategy —
    //    the paper's best all-round performer.
    let mut warehouse = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));

    // 2. Upload the two documents of the paper's Figure 3. Each upload
    //    stores the file in the (simulated) S3 bucket and enqueues an
    //    indexing request.
    let upload = warehouse.upload_documents([
        ("delacroix.xml", delacroix_xml()),
        ("manet.xml", manet_xml()),
    ]);
    println!(
        "uploaded {} documents ({} bytes) for {}",
        upload.documents, upload.bytes, upload.cost
    );

    // 3. Build the index: 8 large EC2 instances drain the loader queue,
    //    extract `key(n) -> (URI, paths)` entries and batch-write them to
    //    DynamoDB.
    let build = warehouse.build_index();
    println!(
        "indexed {} entries in {} (virtual), charged {}",
        build.entries,
        build.total_time,
        build.cost.total()
    );

    // 4. Ask for painters of paintings whose name contains "Lion"
    //    (the paper's q3).
    let q3 = {
        let mut q =
            parse_query("//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]").unwrap();
        q.name = Some("q3".into());
        q
    };
    let run = warehouse.run_query(&q3);
    println!(
        "q3: {} candidate document(s) from the index, {} fetched, {} result(s) in {} for {}",
        run.exec.docs_from_index,
        run.exec.docs_fetched,
        run.exec.results.len(),
        run.exec.response_time,
        run.cost.total(),
    );
    for tuple in &run.exec.results {
        println!("  painter: {}", tuple.columns.join(", "));
    }
    assert_eq!(run.exec.results[0].columns, ["Delacroix"]);

    // 5. What would this warehouse cost to keep for a month?
    let storage = warehouse.storage_cost();
    println!(
        "monthly storage: files {} + index {} = {}",
        storage.file_store,
        storage.index_store,
        storage.total()
    );
}
