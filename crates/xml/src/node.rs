//! Arena node storage for parsed documents.

use crate::interner::Sym;
use crate::sid::StructuralId;

/// Index of a node inside its [`crate::Document`]'s arena.
///
/// Nodes are stored in document (preorder) order, so `NodeId(i)` always has
/// `pre == i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub(crate) const NONE: u32 = u32::MAX;

    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The three node kinds the warehouse distinguishes.
///
/// Comments and processing instructions are dropped at parse time: the
/// paper's indexing strategies (Table 2) only ever key on elements,
/// attributes and words, and queries cannot address anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An XML element (`<painting>`).
    Element,
    /// An attribute (`id="1854-1"`); a leaf node carrying its value inline,
    /// numbered *before* its owner element's children, matching the
    /// paper's Figure 3 IDs (e.g. `@id` = `(2, 1, 2)` in delacroix.xml).
    Attribute,
    /// A text leaf.
    Text,
}

/// Byte range of an attribute value or text content within its
/// [`crate::Document`]'s shared text arena. Only meaningful together with
/// the arena it indexes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TextSpan {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

/// One node of a parsed document.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Element / attribute kind.
    pub kind: NodeKind,
    /// Interned name for elements and attributes; unused (`Sym(u32::MAX)`
    /// never handed out by the interner) for text nodes.
    pub(crate) sym: Option<Sym>,
    /// Attribute value or text content, as a span into the document's
    /// text arena (one allocation per document, not per node).
    pub(crate) value: Option<TextSpan>,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) next_sibling: u32,
    /// Postorder rank; `pre` is implicit (arena index + 1).
    pub(crate) post: u32,
    pub(crate) depth: u32,
}

impl NodeData {
    /// The structural identifier of the node sitting at arena index `index`.
    #[inline]
    pub(crate) fn sid(&self, index: usize) -> StructuralId {
        StructuralId {
            pre: index as u32 + 1,
            post: self.post,
            depth: self.depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sid_derives_pre_from_index() {
        let n = NodeData {
            kind: NodeKind::Element,
            sym: None,
            value: None,
            parent: NodeId::NONE,
            first_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
            post: 7,
            depth: 2,
        };
        assert_eq!(n.sid(4), StructuralId::new(5, 7, 2));
    }
}
