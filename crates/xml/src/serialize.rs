//! XML serialization: whole documents and subtrees.
//!
//! Subtree serialization is the *content* (`cont`) granularity of the
//! paper's query language (Section 4): "the full XML subtree rooted at this
//! node", i.e. what an XPath evaluation returns.

use crate::node::{NodeId, NodeKind};
use crate::tree::Document;

impl Document {
    /// Serializes the whole document (root subtree) back to XML text.
    pub fn to_xml(&self) -> String {
        self.serialize_subtree(self.root())
    }

    /// Serializes the subtree rooted at `id` to XML text.
    ///
    /// * Element: `<name attrs…>children…</name>` (or `<name attrs…/>`).
    /// * Attribute: `name="value"`.
    /// * Text: the escaped text.
    pub fn serialize_subtree(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_subtree(id, &mut out);
        out
    }

    fn write_subtree(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text => escape_text(self.value(id).unwrap_or_default(), out),
            NodeKind::Attribute => {
                out.push_str(self.name(id).unwrap_or_default());
                out.push_str("=\"");
                escape_attr(self.value(id).unwrap_or_default(), out);
                out.push('"');
            }
            NodeKind::Element => {
                let name = self.name(id).unwrap_or_default();
                out.push('<');
                out.push_str(name);
                let mut content = Vec::new();
                for c in self.children(id) {
                    if self.kind(c) == NodeKind::Attribute {
                        out.push(' ');
                        out.push_str(self.name(c).unwrap_or_default());
                        out.push_str("=\"");
                        escape_attr(self.value(c).unwrap_or_default(), out);
                        out.push('"');
                    } else {
                        content.push(c);
                    }
                }
                if content.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in content {
                        self.write_subtree(c, out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
        }
    }
}

/// Escapes `<`, `>`, `&` in text content.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escapes `<`, `&`, `"` in attribute values.
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::Document;

    #[test]
    fn round_trip_simple() {
        let src = "<painting id=\"1854-1\"><name>The Lion Hunt</name><year>1854</year></painting>";
        let doc = Document::parse_str("d.xml", src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn round_trip_is_fixpoint() {
        let src = "<a x=\"1 &amp; 2\"><b>t &lt; u</b><c/><d>m<e/>n</d></a>";
        let doc = Document::parse_str("d.xml", src).unwrap();
        let once = doc.to_xml();
        let doc2 = Document::parse_str("d.xml", &once).unwrap();
        assert_eq!(doc2.to_xml(), once);
        // And the re-parsed tree is structurally identical.
        assert_eq!(doc.node_count(), doc2.node_count());
        for (a, b) in doc.all_nodes().zip(doc2.all_nodes()) {
            assert_eq!(doc.sid(a), doc2.sid(b));
            assert_eq!(doc.name(a), doc2.name(b));
            assert_eq!(doc.value(a), doc2.value(b));
        }
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = Document::parse_str("d.xml", "<a><b></b></a>").unwrap();
        assert_eq!(doc.to_xml(), "<a><b/></a>");
    }

    #[test]
    fn subtree_serialization() {
        let doc = Document::parse_str("d.xml", "<a><b k=\"v\"><c>x</c></b><d/></a>").unwrap();
        let b = doc.elements_named("b")[0];
        assert_eq!(doc.serialize_subtree(b), "<b k=\"v\"><c>x</c></b>");
        let k = doc.attributes_named("k")[0];
        assert_eq!(doc.serialize_subtree(k), "k=\"v\"");
    }

    #[test]
    fn escaping_special_characters() {
        let doc = Document::parse_str(
            "d.xml",
            "<a t=\"&quot;q&quot; &lt; &amp;\">&lt;x&gt; &amp; y</a>",
        )
        .unwrap();
        let out = doc.to_xml();
        let doc2 = Document::parse_str("d.xml", &out).unwrap();
        assert_eq!(doc2.attribute(doc2.root(), "t"), Some("\"q\" < &"));
        assert_eq!(doc2.string_value(doc2.root()), "<x> & y");
    }
}
