//! # amada-xml
//!
//! A self-contained XML substrate for the AMADA cloud warehouse: a
//! from-scratch, single-pass XML parser, an arena document tree annotated
//! with *(pre, post, depth)* structural identifiers, a serializer, and the
//! word tokenizer used by the full-text index keys.
//!
//! The structural identifiers follow Al-Khalifa et al. (ICDE 2002), as used
//! by the paper (Section 5, "Notations"): for two nodes `n1`, `n2`,
//!
//! * `n1` is an **ancestor** of `n2` iff `n1.pre < n2.pre` and
//!   `n1.post > n2.post`;
//! * `n1` is additionally the **parent** of `n2` iff `n1.depth + 1 == n2.depth`.
//!
//! Documents are immutable after parsing; all query processing and index
//! extraction in the other crates works off this representation.
//!
//! ## Example
//!
//! ```
//! use amada_xml::Document;
//!
//! let doc = Document::parse_str(
//!     "delacroix.xml",
//!     r#"<painting id="1854-1"><name>The Lion Hunt</name></painting>"#,
//! ).unwrap();
//! let root = doc.root();
//! assert_eq!(doc.name(root), Some("painting"));
//! assert_eq!(doc.string_value(root), "The Lion Hunt");
//! ```

pub mod error;
pub mod interner;
pub mod node;
pub mod parser;
pub mod serialize;
pub mod sid;
pub mod tree;
pub mod words;

pub use error::{XmlError, XmlErrorKind};
pub use interner::{Interner, Sym};
pub use node::{NodeData, NodeId, NodeKind};
pub use sid::StructuralId;
pub use tree::Document;
pub use words::{contains_word, for_each_word, tokenize};

// Parsed documents are shared across host threads (the warehouse's
// parallel cache-prewarm stage); keep that guaranteed at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Document>();
    assert_send_sync::<Interner>();
};
