//! A single-pass, from-scratch XML parser producing the arena tree.
//!
//! Scope: well-formed document parsing sufficient for data-centric corpora
//! such as XMark — elements, attributes, text, CDATA, comments, processing
//! instructions, an optional XML declaration and DOCTYPE, the five
//! predefined entities and numeric character references. Namespaces are
//! treated lexically (a name may contain `:`), which is also how the
//! paper's index keys treat labels.
//!
//! Whitespace-only text between elements is dropped (data-centric
//! convention); this keeps *(pre, post, depth)* numbering identical whether
//! or not a document is pretty-printed, matching the paper's Figure 3
//! numbering.

use crate::error::{XmlError, XmlErrorKind};
use crate::interner::{Interner, Sym};
use crate::node::{NodeData, NodeId, NodeKind, TextSpan};

/// Internal parser state.
pub(crate) struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    nodes: Vec<NodeData>,
    interner: Interner,
    /// Text arena: attribute values and text content accumulate here, one
    /// allocation per document; nodes hold [`TextSpan`]s into it.
    text: String,
    /// Stack of open element arena indices.
    stack: Vec<usize>,
    /// Last child pushed for each open element (for sibling linking),
    /// parallel to `stack`.
    last_child: Vec<u32>,
    post_counter: u32,
    root_seen: bool,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a [u8]) -> Self {
        Parser {
            input,
            pos: 0,
            nodes: Vec::new(),
            interner: Interner::new(),
            text: String::new(),
            stack: Vec::new(),
            last_child: Vec::new(),
            post_counter: 0,
            root_seen: false,
        }
    }

    pub(crate) fn parse(mut self) -> Result<(Vec<NodeData>, Interner, String), XmlError> {
        self.skip_bom();
        loop {
            self.skip_misc_or_text()?;
            if self.pos >= self.input.len() {
                break;
            }
            // At '<' of a tag.
            if self.peek() != Some(b'<') {
                return Err(self.err(XmlErrorKind::UnexpectedByte(self.input[self.pos])));
            }
            match self.input.get(self.pos + 1) {
                Some(b'/') => self.parse_close_tag()?,
                Some(b'!') | Some(b'?') => self.parse_markup_decl()?,
                Some(_) => self.parse_open_tag()?,
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
        if !self.stack.is_empty() {
            return Err(self.err(XmlErrorKind::UnexpectedEof));
        }
        if !self.root_seen {
            return Err(self.err(XmlErrorKind::NoRootElement));
        }
        Ok((self.nodes, self.interner, self.text))
    }

    // ---- low-level helpers -------------------------------------------------

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.input, self.pos)
    }

    fn skip_bom(&mut self) {
        if self.input.starts_with(&[0xEF, 0xBB, 0xBF]) {
            self.pos = 3;
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(x) => Err(self.err(XmlErrorKind::UnexpectedByte(x))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    /// Consumes text content up to the next `<`, decoding entities into
    /// the text arena, and emits a text node if the content is not
    /// all-whitespace (otherwise the arena is rolled back). Returns at EOF
    /// or at a `<`.
    fn skip_misc_or_text(&mut self) -> Result<(), XmlError> {
        let arena_start = self.text.len();
        let mut any_non_ws = false;
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    if !c.is_whitespace() {
                        any_non_ws = true;
                    }
                    self.text.push(c);
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'<') | Some(b'&')) {
                        if !self.input[self.pos].is_ascii_whitespace() {
                            any_non_ws = true;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err(XmlErrorKind::InvalidUtf8))?;
                    self.text.push_str(s);
                }
            }
        }
        if any_non_ws {
            if self.stack.is_empty() {
                return Err(self.err(XmlErrorKind::NoRootElement));
            }
            let span = self.arena_span(arena_start);
            self.push_leaf(NodeKind::Text, None, Some(span));
        } else {
            // Whitespace-only (or empty) run: drop it from the arena.
            self.text.truncate(arena_start);
        }
        Ok(())
    }

    /// The span of arena text appended since `start`.
    fn arena_span(&self, start: usize) -> TextSpan {
        TextSpan {
            start: start as u32,
            len: (self.text.len() - start) as u32,
        }
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while self.peek() != Some(b';') {
            if self.peek().is_none() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
            self.pos += 1;
            if self.pos - start > 10 {
                return Err(self.err(XmlErrorKind::InvalidCharRef));
            }
        }
        let name = &self.input[start..self.pos];
        self.pos += 1; // ';'
        match name {
            b"lt" => Ok('<'),
            b"gt" => Ok('>'),
            b"amp" => Ok('&'),
            b"quot" => Ok('"'),
            b"apos" => Ok('\''),
            _ if name.first() == Some(&b'#') => {
                let digits = &name[1..];
                let (digits, radix) = match digits.first() {
                    Some(b'x') | Some(b'X') => (&digits[1..], 16),
                    _ => (digits, 10),
                };
                let s = std::str::from_utf8(digits)
                    .map_err(|_| self.err(XmlErrorKind::InvalidCharRef))?;
                let code = u32::from_str_radix(s, radix)
                    .map_err(|_| self.err(XmlErrorKind::InvalidCharRef))?;
                char::from_u32(code).ok_or_else(|| self.err(XmlErrorKind::InvalidCharRef))
            }
            _ => {
                let n = String::from_utf8_lossy(name).into_owned();
                Err(self.err(XmlErrorKind::UnknownEntity(n)))
            }
        }
    }

    /// Consumes a name, returning its raw bytes. UTF-8 validation is
    /// deferred to [`Self::intern_name`], which only validates names not
    /// already in the interner.
    fn parse_name_bytes(&mut self) -> Result<&'a [u8], XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.err(XmlErrorKind::InvalidName)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    /// Interns a name taken straight from the input buffer; a *new* name
    /// that is not valid UTF-8 is rejected here.
    fn intern_name(&mut self, name: &[u8]) -> Result<Sym, XmlError> {
        self.interner
            .intern_bytes(name)
            .ok_or_else(|| self.err(XmlErrorKind::InvalidUtf8))
    }

    // ---- markup ------------------------------------------------------------

    /// `<?...?>`, `<!--...-->`, `<!DOCTYPE...>`, `<![CDATA[...]]>`.
    fn parse_markup_decl(&mut self) -> Result<(), XmlError> {
        let rest = &self.input[self.pos..];
        if rest.starts_with(b"<!--") {
            self.pos += 4;
            self.consume_until(b"-->")
        } else if rest.starts_with(b"<![CDATA[") {
            self.parse_cdata()
        } else if rest.starts_with(b"<!DOCTYPE") {
            self.parse_doctype()
        } else if rest.starts_with(b"<?") {
            self.pos += 2;
            self.consume_until(b"?>")
        } else {
            Err(self.err(XmlErrorKind::UnexpectedByte(
                rest.get(1).copied().unwrap_or(b'!'),
            )))
        }
    }

    fn consume_until(&mut self, delim: &[u8]) -> Result<(), XmlError> {
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with(delim) {
                self.pos += delim.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn parse_cdata(&mut self) -> Result<(), XmlError> {
        if self.stack.is_empty() {
            return Err(self.err(XmlErrorKind::NoRootElement));
        }
        self.pos += b"<![CDATA[".len();
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with(b"]]>") {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err(XmlErrorKind::InvalidUtf8))?;
                self.pos += 3;
                if !s.trim().is_empty() {
                    let arena_start = self.text.len();
                    self.text.push_str(s);
                    let span = self.arena_span(arena_start);
                    self.push_leaf(NodeKind::Text, None, Some(span));
                }
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    /// DOCTYPE with an optional internal subset `[ ... ]`.
    fn parse_doctype(&mut self) -> Result<(), XmlError> {
        self.pos += b"<!DOCTYPE".len();
        let mut depth = 0i32;
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    // ---- elements ----------------------------------------------------------

    fn parse_open_tag(&mut self) -> Result<(), XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name_bytes()?;
        // Intern (and so UTF-8-validate) before the multiple-roots check to
        // keep error precedence identical to the validating parser.
        let sym = self.intern_name(name)?;
        if self.stack.is_empty() {
            if self.root_seen {
                return Err(self.err(XmlErrorKind::MultipleRoots));
            }
            self.root_seen = true;
        }
        let elem_idx = self.push_node(NodeKind::Element, Some(sym), None);
        self.stack.push(elem_idx);
        self.last_child.push(NodeId::NONE);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    self.finish_element();
                    return Ok(());
                }
                Some(b) if is_name_start(b) => self.parse_attribute(elem_idx)?,
                Some(b) => return Err(self.err(XmlErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_attribute(&mut self, elem_idx: usize) -> Result<(), XmlError> {
        let name = self.parse_name_bytes()?;
        let sym = self.intern_name(name)?;
        let err_pos = self.pos;
        self.skip_ws();
        self.expect(b'=')?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            Some(b) => return Err(self.err(XmlErrorKind::UnexpectedByte(b))),
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        let arena_start = self.text.len();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    self.text.push(c);
                }
                Some(b'<') => return Err(self.err(XmlErrorKind::UnexpectedByte(b'<'))),
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'&') | Some(b'<'))
                        && self.peek() != Some(quote)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err(XmlErrorKind::InvalidUtf8))?;
                    self.text.push_str(s);
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
        // Duplicate attribute detection: scan existing attribute children.
        let mut c = self.nodes[elem_idx].first_child;
        while c != NodeId::NONE {
            let child = &self.nodes[c as usize];
            if child.kind == NodeKind::Attribute && child.sym == Some(sym) {
                return Err(XmlError::new(
                    XmlErrorKind::DuplicateAttribute(String::from_utf8_lossy(name).into_owned()),
                    self.input,
                    err_pos,
                ));
            }
            c = child.next_sibling;
        }
        let span = self.arena_span(arena_start);
        self.push_leaf(NodeKind::Attribute, Some(sym), Some(span));
        Ok(())
    }

    fn parse_close_tag(&mut self) -> Result<(), XmlError> {
        self.pos += 2; // "</"
        let name = self.parse_name_bytes()?;
        self.skip_ws();
        self.expect(b'>')?;
        let Some(&open_idx) = self.stack.last() else {
            return Err(self.err(XmlErrorKind::UnmatchedClose(
                String::from_utf8_lossy(name).into_owned(),
            )));
        };
        let open_sym = self.nodes[open_idx].sym.expect("open elements have names");
        // Close-tag names are compared as raw bytes against the interned
        // open name; lossy conversion happens only on the error path.
        if self.interner.resolve(open_sym).as_bytes() != name {
            return Err(self.err(XmlErrorKind::MismatchedTag {
                open: self.interner.resolve(open_sym).to_string(),
                close: String::from_utf8_lossy(name).into_owned(),
            }));
        }
        self.finish_element();
        Ok(())
    }

    fn finish_element(&mut self) {
        let idx = self.stack.pop().expect("finish_element with open element");
        self.last_child.pop();
        self.post_counter += 1;
        self.nodes[idx].post = self.post_counter;
    }

    // ---- arena construction --------------------------------------------------

    /// Pushes a node, linking it under the current open element.
    fn push_node(&mut self, kind: NodeKind, sym: Option<Sym>, value: Option<TextSpan>) -> usize {
        let idx = self.nodes.len();
        let parent = self.stack.last().copied();
        let depth = parent.map_or(1, |p| self.nodes[p].depth + 1);
        self.nodes.push(NodeData {
            kind,
            sym,
            value,
            parent: parent.map_or(NodeId::NONE, |p| p as u32),
            first_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
            post: 0,
            depth,
        });
        if let Some(p) = parent {
            let slot = self
                .last_child
                .last_mut()
                .expect("stack and last_child in sync");
            if *slot == NodeId::NONE {
                self.nodes[p].first_child = idx as u32;
            } else {
                self.nodes[*slot as usize].next_sibling = idx as u32;
            }
            *slot = idx as u32;
        }
        idx
    }

    /// Pushes a leaf (attribute or text), which completes immediately and
    /// therefore receives the next postorder rank.
    fn push_leaf(&mut self, kind: NodeKind, sym: Option<Sym>, value: Option<TextSpan>) {
        let idx = self.push_node(kind, sym, value);
        self.post_counter += 1;
        self.nodes[idx].post = self.post_counter;
    }
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use crate::error::XmlErrorKind;
    use crate::node::NodeKind;
    use crate::tree::Document;

    #[test]
    fn parses_declaration_comments_and_pi() {
        let doc = Document::parse_str(
            "t.xml",
            "<?xml version=\"1.0\"?><!-- hi --><?pi data?><a><b/></a><!-- bye -->",
        )
        .unwrap();
        assert_eq!(doc.name(doc.root()), Some("a"));
        assert_eq!(doc.node_count(), 2);
    }

    #[test]
    fn parses_doctype_with_internal_subset() {
        let doc = Document::parse_str(
            "t.xml",
            "<!DOCTYPE site [ <!ELEMENT site (x)> ]><site><x>1</x></site>",
        )
        .unwrap();
        assert_eq!(doc.name(doc.root()), Some("site"));
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let doc = Document::parse_str(
            "t.xml",
            "<a t=\"x &amp; y &#65;\">&lt;tag&gt; &apos;q&quot; &#x41;</a>",
        )
        .unwrap();
        assert_eq!(doc.attribute(doc.root(), "t"), Some("x & y A"));
        assert_eq!(doc.string_value(doc.root()), "<tag> 'q\" A");
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = Document::parse_str("t.xml", "<a><![CDATA[1 < 2 & 3]]></a>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "1 < 2 & 3");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let pretty = Document::parse_str("t.xml", "<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        let dense = Document::parse_str("t.xml", "<a><b>x</b><c>y</c></a>").unwrap();
        assert_eq!(pretty.node_count(), dense.node_count());
        for (p, d) in pretty.all_nodes().zip(dense.all_nodes()) {
            assert_eq!(pretty.sid(p), dense.sid(d));
        }
    }

    #[test]
    fn mixed_content_text_is_kept() {
        let doc = Document::parse_str("t.xml", "<p>hello <b>bold</b> world</p>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "hello bold world");
        let texts = doc
            .all_nodes()
            .filter(|&n| doc.kind(n) == NodeKind::Text)
            .count();
        assert_eq!(texts, 3);
    }

    #[test]
    fn self_closing_elements() {
        let doc = Document::parse_str("t.xml", "<a><b x=\"1\"/><c/></a>").unwrap();
        assert_eq!(doc.element_children(doc.root()).count(), 2);
        let b = doc.elements_named("b")[0];
        assert_eq!(doc.attribute(b, "x"), Some("1"));
    }

    #[test]
    fn error_mismatched_tag() {
        let err = Document::parse_str("t.xml", "<a><b></a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn error_unmatched_close() {
        let err = Document::parse_str("t.xml", "<a></a></b>").unwrap_err();
        // After the root closes, `</b>` has nothing to match.
        assert!(matches!(
            err.kind,
            XmlErrorKind::UnmatchedClose(_) | XmlErrorKind::MultipleRoots
        ));
    }

    #[test]
    fn error_eof_inside_element() {
        let err = Document::parse_str("t.xml", "<a><b>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_duplicate_attribute() {
        let err = Document::parse_str("t.xml", "<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute(a) if a == "x"));
    }

    #[test]
    fn error_multiple_roots() {
        let err = Document::parse_str("t.xml", "<a/><b/>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::MultipleRoots);
    }

    #[test]
    fn error_no_root() {
        let err = Document::parse_str("t.xml", "   ").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::NoRootElement);
        let err = Document::parse_str("t.xml", "just text").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::NoRootElement);
    }

    #[test]
    fn error_unknown_entity() {
        let err = Document::parse_str("t.xml", "<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(e) if e == "nope"));
    }

    #[test]
    fn error_invalid_char_ref() {
        let err = Document::parse_str("t.xml", "<a>&#xD800;</a>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::InvalidCharRef);
    }

    #[test]
    fn bom_is_skipped() {
        let mut bytes = vec![0xEF, 0xBB, 0xBF];
        bytes.extend_from_slice(b"<a>x</a>");
        let doc = Document::parse("t.xml", &bytes).unwrap();
        assert_eq!(doc.string_value(doc.root()), "x");
    }

    #[test]
    fn utf8_names_and_text() {
        let doc = Document::parse_str("t.xml", "<musée>Eugène</musée>").unwrap();
        assert_eq!(doc.name(doc.root()), Some("musée"));
        assert_eq!(doc.string_value(doc.root()), "Eugène");
    }

    #[test]
    fn post_order_is_a_permutation() {
        let doc =
            Document::parse_str("t.xml", "<a p=\"1\"><b><c>t</c></b><d>u<e/>v</d></a>").unwrap();
        let mut posts: Vec<u32> = doc.all_nodes().map(|n| doc.sid(n).post).collect();
        posts.sort_unstable();
        let expect: Vec<u32> = (1..=doc.node_count() as u32).collect();
        assert_eq!(posts, expect);
    }
}
