//! Per-document string interning for element and attribute names.
//!
//! XML corpora repeat a small vocabulary of tag names across millions of
//! nodes, so nodes store a 4-byte [`Sym`] instead of an owned string. Label
//! comparison during pattern matching is then a single integer compare.

use std::collections::HashMap;

/// An interned name. Only meaningful together with the [`Interner`]
/// (in practice: the [`crate::Document`]) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// A simple append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Sym>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.into());
        self.map.insert(name.into(), sym);
        sym
    }

    /// Looks up the symbol for `name` without interning it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("painting");
        let b = i.intern("painter");
        let a2 = i.intern("painting");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("name");
        assert_eq!(i.resolve(s), "name");
        assert_eq!(i.lookup("name"), Some(s));
        assert_eq!(i.lookup("absent"), None);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
