//! Per-document string interning for element and attribute names.
//!
//! XML corpora repeat a small vocabulary of tag names across millions of
//! nodes, so nodes store a 4-byte [`Sym`] instead of an owned string. Label
//! comparison during pattern matching is then a single integer compare.
//!
//! The map is keyed on raw bytes with an FNV-1a hasher: the parser interns
//! names straight from the input buffer, so the per-tag hot path is one
//! short-string hash and one probe — no owned-`String` allocation and no
//! UTF-8 validation for names already seen (validation runs once, when a
//! *new* name enters the table).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// An interned name. Only meaningful together with the [`Interner`]
/// (in practice: the [`crate::Document`]) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// FNV-1a (64-bit). Names are short — a handful of bytes — where FNV beats
/// the default SipHash by a wide margin; interning is per-document
/// vocabulary, not an attacker-controlled collision surface.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// A simple append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<[u8]>, Sym, BuildHasherDefault<Fnv>>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        self.intern_bytes(name.as_bytes())
            .expect("&str input is valid UTF-8")
    }

    /// Interns a raw byte slice, returning `None` when the bytes are a
    /// *new* name that is not valid UTF-8. Known names are matched on
    /// bytes alone — no validation, no allocation.
    pub fn intern_bytes(&mut self, name: &[u8]) -> Option<Sym> {
        if let Some(&sym) = self.map.get(name) {
            return Some(sym);
        }
        let checked = std::str::from_utf8(name).ok()?;
        let sym = Sym(self.names.len() as u32);
        self.names.push(checked.into());
        self.map.insert(name.into(), sym);
        Some(sym)
    }

    /// Looks up the symbol for `name` without interning it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name.as_bytes()).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("painting");
        let b = i.intern("painter");
        let a2 = i.intern("painting");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("name");
        assert_eq!(i.resolve(s), "name");
        assert_eq!(i.lookup("name"), Some(s));
        assert_eq!(i.lookup("absent"), None);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn intern_bytes_validates_only_new_names() {
        let mut i = Interner::new();
        let a = i.intern_bytes("musée".as_bytes()).unwrap();
        assert_eq!(i.resolve(a), "musée");
        assert_eq!(i.intern_bytes("musée".as_bytes()), Some(a));
        // A new name must be valid UTF-8.
        assert_eq!(i.intern_bytes(&[0xff, 0xfe]), None);
        assert_eq!(i.len(), 1);
    }
}
