//! Parse-error reporting with byte offsets and line/column positions.

use std::fmt;

/// The category of an XML parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A byte that cannot start or continue the current construct.
    UnexpectedByte(u8),
    /// `</b>` closing an element opened as `<a>`.
    MismatchedTag { open: String, close: String },
    /// A closing tag with no matching open tag.
    UnmatchedClose(String),
    /// An element or attribute name that is empty or starts illegally.
    InvalidName,
    /// `&foo;` where `foo` is not one of the five predefined entities and
    /// not a character reference.
    UnknownEntity(String),
    /// A character reference (`&#NNN;`) that is out of range or malformed.
    InvalidCharRef,
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// The document has no root element, or text outside the root.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots,
    /// Malformed UTF-8 in text content.
    InvalidUtf8,
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedByte(b) => {
                if b.is_ascii_graphic() {
                    write!(f, "unexpected byte '{}'", *b as char)
                } else {
                    write!(f, "unexpected byte 0x{b:02x}")
                }
            }
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")
            }
            XmlErrorKind::UnmatchedClose(name) => write!(f, "unmatched closing tag </{name}>"),
            XmlErrorKind::InvalidName => write!(f, "invalid XML name"),
            XmlErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            XmlErrorKind::InvalidCharRef => write!(f, "invalid character reference"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute '{a}'"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::MultipleRoots => write!(f, "document has multiple root elements"),
            XmlErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8 in document"),
        }
    }
}

/// An XML parse error, carrying the byte offset at which it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub column: u32,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, input: &[u8], offset: usize) -> Self {
        let mut line = 1u32;
        let mut col = 1u32;
        for &b in &input[..offset.min(input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            kind,
            offset,
            line,
            column: col,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {}: {}",
            self.line, self.column, self.kind
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_is_computed_from_offset() {
        let input = b"<a>\n  <b oops";
        let err = XmlError::new(XmlErrorKind::UnexpectedEof, input, 9);
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 6);
    }

    #[test]
    fn display_is_human_readable() {
        let err = XmlError::new(XmlErrorKind::UnmatchedClose("b".into()), b"</b>", 0);
        let s = err.to_string();
        assert!(s.contains("line 1"));
        assert!(s.contains("</b>"));
    }

    #[test]
    fn unexpected_byte_displays_printable_and_hex() {
        assert!(XmlErrorKind::UnexpectedByte(b'<')
            .to_string()
            .contains("'<'"));
        assert!(XmlErrorKind::UnexpectedByte(0x01)
            .to_string()
            .contains("0x01"));
    }
}
