//! *(pre, post, depth)* structural identifiers and their order algebra.
//!
//! These are the node IDs the paper's LUI / 2LUPI strategies store in the
//! key-value index (Section 5, "Notations", citing Al-Khalifa et al.,
//! ICDE 2002). The whole point of the encoding is that structural
//! relationships between two nodes can be decided from the IDs alone,
//! without touching the document:
//!
//! * ancestor:  `a.pre < d.pre && a.post > d.post`
//! * parent:    ancestor and `a.depth + 1 == d.depth`
//!
//! `pre` is assigned on first visit (document order), `post` on last visit;
//! both are 1-based and count every node kind (element, attribute, text),
//! matching the worked example of the paper's Figure 3 where
//! `name` in `delacroix.xml` gets `(3, 3, 2)` and the attribute `@id`
//! gets `(2, 1, 2)`.

use std::fmt;

/// A structural node identifier: `(pre, post, depth)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructuralId {
    /// 1-based preorder rank (document order).
    pub pre: u32,
    /// 1-based postorder rank.
    pub post: u32,
    /// Depth; the document root element has depth 1.
    pub depth: u32,
}

impl StructuralId {
    /// Creates an ID from its three components.
    pub const fn new(pre: u32, post: u32, depth: u32) -> Self {
        StructuralId { pre, post, depth }
    }

    /// True iff `self` is a proper ancestor of `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &StructuralId) -> bool {
        self.pre < other.pre && self.post > other.post
    }

    /// True iff `self` is the parent of `other`.
    #[inline]
    pub fn is_parent_of(&self, other: &StructuralId) -> bool {
        self.is_ancestor_of(other) && self.depth + 1 == other.depth
    }

    /// True iff `self` precedes `other` in document order and is *not*
    /// one of its ancestors (the XPath `preceding` axis).
    #[inline]
    pub fn precedes(&self, other: &StructuralId) -> bool {
        self.pre < other.pre && self.post < other.post
    }
}

/// IDs order by `pre` (document order); the paper keeps per-key ID lists
/// "already sorted by their pre component" so holistic twig joins can
/// consume them without re-sorting (Section 5.3).
impl PartialOrd for StructuralId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StructuralId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.pre.cmp(&other.pre)
    }
}

/// Formats as the paper's `(pre, post, depth)` notation used in its
/// index-content tables.
impl fmt::Display for StructuralId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.pre, self.post, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The delacroix.xml IDs from the paper's Section 5.3 example.
    const PAINTING: StructuralId = StructuralId::new(1, 10, 1);
    const AT_ID: StructuralId = StructuralId::new(2, 1, 2);
    const NAME1: StructuralId = StructuralId::new(3, 3, 2);
    const TEXT1: StructuralId = StructuralId::new(4, 2, 3);
    const NAME2: StructuralId = StructuralId::new(6, 8, 3);

    #[test]
    fn ancestor_relation_matches_paper_example() {
        assert!(PAINTING.is_ancestor_of(&AT_ID));
        assert!(PAINTING.is_ancestor_of(&NAME2));
        assert!(NAME1.is_ancestor_of(&TEXT1));
        assert!(!NAME1.is_ancestor_of(&NAME2));
        assert!(!AT_ID.is_ancestor_of(&PAINTING));
        // A node is not its own ancestor.
        assert!(!NAME1.is_ancestor_of(&NAME1));
    }

    #[test]
    fn parent_needs_adjacent_depth() {
        assert!(PAINTING.is_parent_of(&NAME1));
        assert!(NAME1.is_parent_of(&TEXT1));
        // painting is an ancestor of the nested name but not its parent.
        assert!(PAINTING.is_ancestor_of(&NAME2) && !PAINTING.is_parent_of(&NAME2));
    }

    #[test]
    fn preceding_axis() {
        assert!(AT_ID.precedes(&NAME1));
        assert!(NAME1.precedes(&NAME2));
        assert!(!PAINTING.precedes(&NAME1)); // ancestor, not preceding
        assert!(!NAME2.precedes(&NAME1));
    }

    #[test]
    fn ordering_is_by_pre() {
        let mut v = [NAME2, AT_ID, TEXT1, NAME1, PAINTING];
        v.sort();
        let pres: Vec<u32> = v.iter().map(|s| s.pre).collect();
        assert_eq!(pres, [1, 2, 3, 4, 6]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NAME1.to_string(), "(3, 3, 2)");
    }
}
