//! The word tokenizer behind the full-text (`w‖word`) index keys and the
//! `contains(c)` predicate (Sections 4 and 5).
//!
//! A *word* is a maximal run of alphanumeric characters; matching is
//! case-insensitive, implemented by lowercasing at both index and query
//! time. `contains(Lion)` on the value `"The Lion Hunt"` therefore matches
//! the word list `["the", "lion", "hunt"]`.
//!
//! The streaming form [`for_each_word`] is the hot path: index extraction
//! and predicate evaluation visit every text node of every document, so
//! words are yielded as borrowed `&str` with no per-word (and, for
//! lowercase-ASCII runs, no per-call) allocation. [`tokenize`] collects
//! the same stream for callers that need owned words.

/// Calls `f` with each lowercase word of `text`, in order.
///
/// Words are maximal alphanumeric runs, lowercased exactly as
/// [`tokenize`] does (per-`char` `to_lowercase`). Runs that are already
/// lowercase ASCII are yielded as sub-slices of `text` without copying;
/// other runs are lowercased into one reused scratch buffer.
pub fn for_each_word(text: &str, mut f: impl FnMut(&str)) {
    for_each_word_until(text, &mut |w| {
        f(w);
        false
    });
}

/// True iff `word` occurs in `text` under word tokenization.
/// `word` must itself be a single word; it is lowercased internally
/// (skipped when already lowercase ASCII) and the scan stops at the
/// first match.
pub fn contains_word(text: &str, word: &str) -> bool {
    let lowered;
    let needle: &str = if word
        .bytes()
        .all(|b| b.is_ascii() && !b.is_ascii_uppercase())
    {
        word
    } else {
        lowered = word.to_lowercase();
        &lowered
    };
    for_each_word_until(text, &mut |w| w == needle)
}

/// Splits `text` into lowercase words.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    for_each_word(text, |w| words.push(w.to_string()));
    words
}

/// Streaming core: yields words to `f` until it returns `true` (stop) or
/// the text is exhausted; returns whether `f` stopped the scan.
fn for_each_word_until(text: &str, f: &mut impl FnMut(&str) -> bool) -> bool {
    let bytes = text.as_bytes();
    let mut scratch = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii() {
            if !b.is_ascii_alphanumeric() {
                i += 1;
                continue;
            }
            // ASCII fast path: scan the ASCII-alphanumeric run.
            let start = i;
            let mut has_upper = false;
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                has_upper |= bytes[i].is_ascii_uppercase();
                i += 1;
            }
            if i >= bytes.len() || bytes[i].is_ascii() {
                // The run ends at an ASCII non-alphanumeric boundary (or
                // end of text): a pure-ASCII word.
                let stop = if has_upper {
                    scratch.clear();
                    scratch.push_str(&text[start..i]);
                    scratch.make_ascii_lowercase();
                    f(&scratch)
                } else {
                    f(&text[start..i])
                };
                if stop {
                    return true;
                }
                continue;
            }
            // A non-ASCII character may extend the word: take the slow
            // path over the whole run.
            i = start;
        }
        // Slow path: char-wise maximal alphanumeric run with full Unicode
        // lowercasing, starting at a char boundary.
        scratch.clear();
        let mut end = i;
        for (off, c) in text[i..].char_indices() {
            if !c.is_alphanumeric() {
                break;
            }
            for lc in c.to_lowercase() {
                scratch.push(lc);
            }
            end = i + off + c.len_utf8();
        }
        if scratch.is_empty() {
            // Non-alphanumeric non-ASCII char: step over it.
            i += text[i..].chars().next().map_or(1, char::len_utf8);
        } else {
            if f(&scratch) {
                return true;
            }
            i = end;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("The Lion Hunt"), ["the", "lion", "hunt"]);
    }

    #[test]
    fn tokenize_punctuation_and_digits() {
        assert_eq!(tokenize("Olympia, 1863-1!"), ["olympia", "1863", "1"]);
    }

    #[test]
    fn tokenize_empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n .,;").is_empty());
    }

    #[test]
    fn tokenize_unicode() {
        assert_eq!(tokenize("Eugène Delacroix"), ["eugène", "delacroix"]);
    }

    #[test]
    fn contains_word_is_word_granular() {
        assert!(contains_word("The Lion Hunt", "Lion"));
        assert!(contains_word("The Lion Hunt", "lion"));
        // Substrings of words do not match: "Lio" is not a word of the text.
        assert!(!contains_word("The Lion Hunt", "Lio"));
        assert!(!contains_word("The Lionhunt", "Lion"));
    }

    #[test]
    fn streaming_matches_reference_tokenizer() {
        // for_each_word must yield exactly what the collecting tokenizer
        // returns, across ASCII/Unicode/mixed-boundary shapes.
        fn reference(text: &str) -> Vec<String> {
            let mut words = Vec::new();
            let mut current = String::new();
            for c in text.chars() {
                if c.is_alphanumeric() {
                    for lc in c.to_lowercase() {
                        current.push(lc);
                    }
                } else if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                words.push(current);
            }
            words
        }
        for text in [
            "",
            "x",
            "É",
            "The Lion Hunt",
            "Olympia, 1863-1!",
            "Eugène Delacroix",
            "abcÉdef ghi",          // ASCII run extended by non-ASCII
            "ABCß",                 // uppercase ASCII then non-ASCII
            "münchen…überall 1a2b", // non-ASCII separators
            "Ꮎbig!",                // uppercase non-ASCII start
            "İstanbul",             // expanding lowercase (İ → i̇)
            "a…b—c",
        ] {
            assert_eq!(tokenize(text), reference(text), "{text:?}");
            let mut streamed = Vec::new();
            for_each_word(text, |w| streamed.push(w.to_string()));
            assert_eq!(streamed, reference(text), "{text:?}");
        }
    }

    #[test]
    fn contains_word_stops_early_and_handles_case() {
        assert!(contains_word("Eugène Delacroix", "EUGÈNE"));
        assert!(contains_word("a b c d lion", "lion"));
        assert!(!contains_word("", "lion"));
        // Needle lowercasing matches the tokenizer's on ASCII; a mixed
        // needle still compares against per-char-lowercased text words.
        assert!(contains_word("1863", "1863"));
    }
}
