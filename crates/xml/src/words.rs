//! The word tokenizer behind the full-text (`w‖word`) index keys and the
//! `contains(c)` predicate (Sections 4 and 5).
//!
//! A *word* is a maximal run of alphanumeric characters; matching is
//! case-insensitive, implemented by lowercasing at both index and query
//! time. `contains(Lion)` on the value `"The Lion Hunt"` therefore matches
//! the word list `["the", "lion", "hunt"]`.

/// Splits `text` into lowercase words.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// True iff `word` occurs in `text` under word tokenization.
/// `word` must itself be a single word; it is lowercased internally.
pub fn contains_word(text: &str, word: &str) -> bool {
    let needle = word.to_lowercase();
    tokenize(text).contains(&needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("The Lion Hunt"), ["the", "lion", "hunt"]);
    }

    #[test]
    fn tokenize_punctuation_and_digits() {
        assert_eq!(tokenize("Olympia, 1863-1!"), ["olympia", "1863", "1"]);
    }

    #[test]
    fn tokenize_empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n .,;").is_empty());
    }

    #[test]
    fn tokenize_unicode() {
        assert_eq!(tokenize("Eugène Delacroix"), ["eugène", "delacroix"]);
    }

    #[test]
    fn contains_word_is_word_granular() {
        assert!(contains_word("The Lion Hunt", "Lion"));
        assert!(contains_word("The Lion Hunt", "lion"));
        // Substrings of words do not match: "Lio" is not a word of the text.
        assert!(!contains_word("The Lion Hunt", "Lio"));
        assert!(!contains_word("The Lionhunt", "Lion"));
    }
}
