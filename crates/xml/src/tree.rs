//! The immutable [`Document`] tree and its navigation / inspection API.

use crate::error::XmlError;
use crate::interner::{Interner, Sym};
use crate::node::{NodeData, NodeId, NodeKind};
use crate::parser::Parser;
use crate::sid::StructuralId;

/// A parsed, immutable XML document.
///
/// Nodes live in a preorder arena ([`NodeId`] is the arena index), each
/// annotated with a *(pre, post, depth)* [`StructuralId`]. The document also
/// maintains a label → node-list map (`postings`) used both by index
/// extraction and as the per-label input streams of the holistic twig join.
#[derive(Debug, Clone)]
pub struct Document {
    uri: String,
    nodes: Vec<NodeData>,
    interner: Interner,
    /// Shared text arena: attribute values and text content of all nodes,
    /// concatenated; nodes carry spans into it (one allocation per
    /// document instead of one per value).
    text: String,
    /// For each interned name (indexed by `Sym`): the nodes bearing it, in
    /// document order. Element and attribute occurrences are kept separate
    /// because the index keys distinguish `e‖label` from `a‖name`.
    element_postings: Vec<Vec<NodeId>>,
    attribute_postings: Vec<Vec<NodeId>>,
    /// Size in bytes of the serialized source this document was parsed from.
    source_bytes: usize,
}

impl Document {
    /// Parses a document from raw bytes.
    pub fn parse(uri: impl Into<String>, input: &[u8]) -> Result<Document, XmlError> {
        let (nodes, interner, text) = Parser::new(input).parse()?;
        Ok(Self::assemble(
            uri.into(),
            nodes,
            interner,
            text,
            input.len(),
        ))
    }

    /// Parses a document from a `&str`.
    pub fn parse_str(uri: impl Into<String>, input: &str) -> Result<Document, XmlError> {
        Self::parse(uri, input.as_bytes())
    }

    fn assemble(
        uri: String,
        nodes: Vec<NodeData>,
        interner: Interner,
        text: String,
        source_bytes: usize,
    ) -> Document {
        let mut element_postings: Vec<Vec<NodeId>> = vec![Vec::new(); interner.len()];
        let mut attribute_postings: Vec<Vec<NodeId>> = vec![Vec::new(); interner.len()];
        for (i, n) in nodes.iter().enumerate() {
            if let Some(sym) = n.sym {
                let postings = match n.kind {
                    NodeKind::Element => &mut element_postings,
                    NodeKind::Attribute => &mut attribute_postings,
                    NodeKind::Text => continue,
                };
                postings[sym.0 as usize].push(NodeId(i as u32));
            }
        }
        Document {
            uri,
            nodes,
            interner,
            text,
            element_postings,
            attribute_postings,
            source_bytes,
        }
    }

    /// The document's URI (its object name in the cloud file store).
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Size in bytes of the source text this document was parsed from.
    pub fn source_bytes(&self) -> usize {
        self.source_bytes
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes (elements + attributes + text).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates all node ids in document (preorder) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The name interner (shared vocabulary of this document).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    #[inline]
    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.data(id).kind
    }

    /// The node's structural identifier.
    #[inline]
    pub fn sid(&self, id: NodeId) -> StructuralId {
        self.data(id).sid(id.index())
    }

    /// Interned name symbol (elements and attributes only).
    #[inline]
    pub fn sym(&self, id: NodeId) -> Option<Sym> {
        self.data(id).sym
    }

    /// Element / attribute name, or `None` for text nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.data(id).sym.map(|s| self.interner.resolve(s))
    }

    /// Attribute value or text content; `None` for elements.
    pub fn value(&self, id: NodeId) -> Option<&str> {
        self.data(id)
            .value
            .map(|sp| &self.text[sp.start as usize..(sp.start + sp.len) as usize])
    }

    /// The parent node, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.data(id).parent;
        (p != NodeId::NONE).then_some(NodeId(p))
    }

    /// Iterates the node's children (attributes first, then content) in
    /// document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.data(id).first_child,
        }
    }

    /// Iterates only the element children.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .filter(|&c| self.kind(c) == NodeKind::Element)
    }

    /// Iterates only the attribute nodes of an element.
    pub fn attributes(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .take_while(|&c| self.kind(c) == NodeKind::Attribute)
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        let sym = self.interner.lookup(name)?;
        self.attributes(id)
            .find(|&a| self.sym(a) == Some(sym))
            .and_then(|a| self.value(a))
    }

    /// Iterates the strict ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.data(id).parent,
        }
    }

    /// All descendants of `id` (excluding `id`), in document order.
    ///
    /// Exploits the arena layout: descendants are exactly the contiguous
    /// preorder range `(pre, pre + subtree_size)`.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.sid(id);
        let start = id.index() + 1;
        (start..self.nodes.len())
            .map(NodeId::from_index)
            .take_while(move |&d| me.is_ancestor_of(&self.sid(d)))
    }

    /// The element nodes labeled `name`, in document order.
    pub fn elements_named(&self, name: &str) -> &[NodeId] {
        self.interner
            .lookup(name)
            .map_or(&[], |s| self.element_postings[s.0 as usize].as_slice())
    }

    /// The attribute nodes named `name`, in document order.
    pub fn attributes_named(&self, name: &str) -> &[NodeId] {
        self.interner
            .lookup(name)
            .map_or(&[], |s| self.attribute_postings[s.0 as usize].as_slice())
    }

    /// Iterates `(name, nodes)` for every distinct element label.
    pub fn element_labels(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.element_postings
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (self.interner.resolve(Sym(i as u32)), v.as_slice()))
    }

    /// Iterates `(name, nodes)` for every distinct attribute name.
    pub fn attribute_labels(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.attribute_postings
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (self.interner.resolve(Sym(i as u32)), v.as_slice()))
    }

    /// The *string value* of a node (XQuery data model): for text and
    /// attribute nodes their content; for elements the concatenation of all
    /// descendant text, in document order. This is what a `val`-annotated
    /// pattern node returns (Section 4).
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text | NodeKind::Attribute => self.value(id).unwrap_or_default().to_string(),
            NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for c in self.children(id) {
            match self.kind(c) {
                NodeKind::Text => out.push_str(self.value(c).unwrap_or_default()),
                NodeKind::Element => self.collect_text(c, out),
                NodeKind::Attribute => {}
            }
        }
    }

    /// The label path from the root down to `id` — the paper's `inPath(n)`
    /// (Section 5). Components are raw labels, outermost first; attribute
    /// and text node information is carried by the node itself, so the path
    /// of an attribute ends at the attribute name.
    pub fn label_path(&self, id: NodeId) -> Vec<&str> {
        let mut path: Vec<&str> = Vec::with_capacity(self.sid(id).depth as usize);
        if let Some(n) = self.name(id) {
            path.push(n);
        }
        for a in self.ancestors(id) {
            if let Some(n) = self.name(a) {
                path.push(n);
            }
        }
        path.reverse();
        path
    }
}

impl NodeId {
    #[inline]
    fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

/// Iterator over a node's children.
pub struct Children<'d> {
    doc: &'d Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NodeId::NONE {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.doc.data(id).next_sibling;
        Some(id)
    }
}

/// Iterator over a node's ancestors, nearest first.
pub struct Ancestors<'d> {
    doc: &'d Document,
    next: u32,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NodeId::NONE {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.doc.data(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 left document.
    pub(crate) const DELACROIX: &str = "<painting id=\"1854-1\">\
         <name>The Lion Hunt</name>\
         <painter><name><first>Eugene</first><last>Delacroix</last></name></painter>\
         </painting>";

    fn doc() -> Document {
        Document::parse_str("delacroix.xml", DELACROIX).unwrap()
    }

    #[test]
    fn figure3_structural_ids_match_paper() {
        let d = doc();
        // Paper Section 5.3: ename -> (3,3,2)(6,8,3); aid -> (2,1,2).
        let names: Vec<StructuralId> = d.elements_named("name").iter().map(|&n| d.sid(n)).collect();
        assert_eq!(
            names,
            [StructuralId::new(3, 3, 2), StructuralId::new(6, 8, 3)]
        );
        let ids: Vec<StructuralId> = d.attributes_named("id").iter().map(|&n| d.sid(n)).collect();
        assert_eq!(ids, [StructuralId::new(2, 1, 2)]);
    }

    #[test]
    fn navigation_and_names() {
        let d = doc();
        let root = d.root();
        assert_eq!(d.name(root), Some("painting"));
        assert_eq!(d.parent(root), None);
        assert_eq!(d.attribute(root, "id"), Some("1854-1"));
        let kids: Vec<_> = d
            .element_children(root)
            .map(|c| d.name(c).unwrap())
            .collect();
        assert_eq!(kids, ["name", "painter"]);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let d = doc();
        let painter = d.elements_named("painter")[0];
        assert_eq!(d.string_value(painter), "EugeneDelacroix");
        let last = d.elements_named("last")[0];
        assert_eq!(d.string_value(last), "Delacroix");
    }

    #[test]
    fn label_path_is_in_path() {
        let d = doc();
        let last = d.elements_named("last")[0];
        assert_eq!(d.label_path(last), ["painting", "painter", "name", "last"]);
        let attr = d.attributes_named("id")[0];
        assert_eq!(d.label_path(attr), ["painting", "id"]);
    }

    #[test]
    fn descendants_are_contiguous_preorder_range() {
        let d = doc();
        let painter = d.elements_named("painter")[0];
        let descendant_names: Vec<_> = d.descendants(painter).filter_map(|n| d.name(n)).collect();
        assert_eq!(descendant_names, ["name", "first", "last"]);
        // descendants of the root = everything else
        assert_eq!(d.descendants(d.root()).count(), d.node_count() - 1);
    }

    #[test]
    fn ancestors_nearest_first() {
        let d = doc();
        let first = d.elements_named("first")[0];
        let names: Vec<_> = d.ancestors(first).map(|a| d.name(a).unwrap()).collect();
        assert_eq!(names, ["name", "painter", "painting"]);
    }

    #[test]
    fn postings_are_in_document_order() {
        let d = doc();
        for (_, nodes) in d.element_labels() {
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
