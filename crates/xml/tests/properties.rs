//! Property-based tests for the XML substrate: serialization round-trips
//! and the (pre, post, depth) structural-identifier invariants.

use amada_xml::{Document, NodeKind};
use proptest::prelude::*;

/// A recursively generated XML element as a value tree.
#[derive(Debug, Clone)]
struct GenElem {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<GenContent>,
}

#[derive(Debug, Clone)]
enum GenContent {
    Elem(GenElem),
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes XML-special characters to exercise escaping.
    "[ a-zA-Z0-9<>&\"']{1,20}".prop_filter("non-whitespace", |s| !s.trim().is_empty())
}

fn elem_strategy() -> impl Strategy<Value = GenElem> {
    let leaf = (name_strategy(), prop::collection::vec((name_strategy(), text_strategy()), 0..3))
        .prop_map(|(name, attrs)| GenElem { name, attrs: dedup_attrs(attrs), children: vec![] });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(
                prop_oneof![
                    inner.prop_map(GenContent::Elem),
                    text_strategy().prop_map(GenContent::Text)
                ],
                0..5,
            ),
        )
            .prop_map(|(name, attrs, children)| GenElem {
                name,
                attrs: dedup_attrs(attrs),
                children,
            })
    })
}

fn dedup_attrs(mut attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(k, _)| seen.insert(k.clone()));
    attrs
}

fn render(e: &GenElem, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        amada_xml::serialize::escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            GenContent::Elem(e) => render(e, out),
            GenContent::Text(t) => amada_xml::serialize::escape_text(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

proptest! {
    /// parse ∘ serialize ∘ parse is the identity on document structure.
    #[test]
    fn round_trip_preserves_structure(e in elem_strategy()) {
        let mut src = String::new();
        render(&e, &mut src);
        let doc = Document::parse_str("p.xml", &src).unwrap();
        let out = doc.to_xml();
        let doc2 = Document::parse_str("p.xml", &out).unwrap();
        prop_assert_eq!(doc.node_count(), doc2.node_count());
        for (a, b) in doc.all_nodes().zip(doc2.all_nodes()) {
            prop_assert_eq!(doc.kind(a), doc2.kind(b));
            prop_assert_eq!(doc.sid(a), doc2.sid(b));
            prop_assert_eq!(doc.name(a), doc2.name(b));
            prop_assert_eq!(doc.value(a), doc2.value(b));
        }
        // Serialization is a fixpoint after one round.
        prop_assert_eq!(doc2.to_xml(), out);
    }

    /// pre and post are permutations of 1..=n; depth of root is 1.
    #[test]
    fn pre_post_are_permutations(e in elem_strategy()) {
        let mut src = String::new();
        render(&e, &mut src);
        let doc = Document::parse_str("p.xml", &src).unwrap();
        let n = doc.node_count() as u32;
        let mut pres: Vec<u32> = doc.all_nodes().map(|i| doc.sid(i).pre).collect();
        let mut posts: Vec<u32> = doc.all_nodes().map(|i| doc.sid(i).post).collect();
        pres.sort_unstable();
        posts.sort_unstable();
        let expect: Vec<u32> = (1..=n).collect();
        prop_assert_eq!(&pres, &expect);
        prop_assert_eq!(&posts, &expect);
        prop_assert_eq!(doc.sid(doc.root()).depth, 1);
    }

    /// The ID algebra agrees with actual tree navigation: for every pair of
    /// nodes, `is_ancestor_of` iff walking parents reaches the other node,
    /// and `is_parent_of` iff it is the direct parent.
    #[test]
    fn id_algebra_matches_tree(e in elem_strategy()) {
        let mut src = String::new();
        render(&e, &mut src);
        let doc = Document::parse_str("p.xml", &src).unwrap();
        let nodes: Vec<_> = doc.all_nodes().collect();
        for &a in nodes.iter().take(30) {
            for &d in nodes.iter().take(30) {
                let really_ancestor = doc.ancestors(d).any(|x| x == a);
                prop_assert_eq!(
                    doc.sid(a).is_ancestor_of(&doc.sid(d)),
                    really_ancestor,
                    "ancestor mismatch for {:?} vs {:?}", a, d
                );
                let really_parent = doc.parent(d) == Some(a);
                prop_assert_eq!(doc.sid(a).is_parent_of(&doc.sid(d)), really_parent);
            }
        }
    }

    /// string_value equals the concatenation of descendant text nodes.
    #[test]
    fn string_value_is_descendant_text(e in elem_strategy()) {
        let mut src = String::new();
        render(&e, &mut src);
        let doc = Document::parse_str("p.xml", &src).unwrap();
        let root = doc.root();
        let mut expected = String::new();
        for d in doc.descendants(root) {
            if doc.kind(d) == NodeKind::Text {
                expected.push_str(doc.value(d).unwrap());
            }
        }
        prop_assert_eq!(doc.string_value(root), expected);
    }
}
