//! Property-based tests for the XML substrate: serialization round-trips
//! and the (pre, post, depth) structural-identifier invariants.
//!
//! Inputs are generated with the workspace's own deterministic RNG
//! (`amada-rng`): each case derives from `(fixed master seed, case
//! index)`, so failures reproduce exactly and report the case index.

use amada_rng::StdRng;
use amada_xml::{Document, NodeKind};

/// A recursively generated XML element as a value tree.
#[derive(Debug, Clone)]
struct GenElem {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<GenContent>,
}

#[derive(Debug, Clone)]
enum GenContent {
    Elem(GenElem),
    Text(String),
}

/// `[a-z][a-z0-9_]{0,6}`.
fn gen_name(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(*rng.choose(FIRST) as char);
    for _ in 0..rng.gen_range(0..=6usize) {
        s.push(*rng.choose(REST) as char);
    }
    s
}

/// Non-whitespace-only text over `[ a-zA-Z0-9<>&"']{1,20}` — includes the
/// XML-special characters to exercise escaping.
fn gen_text(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b" abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789<>&\"'";
    loop {
        let n = rng.gen_range(1..=20usize);
        let s: String = (0..n).map(|_| *rng.choose(CHARS) as char).collect();
        if !s.trim().is_empty() {
            return s;
        }
    }
}

fn gen_attrs(rng: &mut StdRng) -> Vec<(String, String)> {
    let attrs: Vec<(String, String)> = (0..rng.gen_range(0..3usize))
        .map(|_| (gen_name(rng), gen_text(rng)))
        .collect();
    dedup_attrs(attrs)
}

/// A random element with at most `depth` further levels below it.
fn gen_elem(rng: &mut StdRng, depth: u32) -> GenElem {
    let name = gen_name(rng);
    let attrs = gen_attrs(rng);
    let children = if depth == 0 {
        Vec::new()
    } else {
        (0..rng.gen_range(0..5usize))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    GenContent::Elem(gen_elem(rng, depth - 1))
                } else {
                    GenContent::Text(gen_text(rng))
                }
            })
            .collect()
    };
    GenElem {
        name,
        attrs,
        children,
    }
}

fn dedup_attrs(mut attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(k, _)| seen.insert(k.clone()));
    attrs
}

fn render(e: &GenElem, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        amada_xml::serialize::escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            GenContent::Elem(e) => render(e, out),
            GenContent::Text(t) => amada_xml::serialize::escape_text(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Runs `check` on `cases` generated documents, reporting the failing
/// case's index and source on panic.
fn for_random_docs(cases: u64, check: impl Fn(&Document, &str)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xD0C5_0000 + case);
        let e = gen_elem(&mut rng, 4);
        let mut src = String::new();
        render(&e, &mut src);
        let doc = Document::parse_str("p.xml", &src)
            .unwrap_or_else(|err| panic!("case {case}: parse failed: {err}\n{src}"));
        check(&doc, &src);
    }
}

/// parse ∘ serialize ∘ parse is the identity on document structure.
#[test]
fn round_trip_preserves_structure() {
    for_random_docs(256, |doc, _| {
        let out = doc.to_xml();
        let doc2 = Document::parse_str("p.xml", &out).unwrap();
        assert_eq!(doc.node_count(), doc2.node_count(), "{out}");
        for (a, b) in doc.all_nodes().zip(doc2.all_nodes()) {
            assert_eq!(doc.kind(a), doc2.kind(b), "{out}");
            assert_eq!(doc.sid(a), doc2.sid(b), "{out}");
            assert_eq!(doc.name(a), doc2.name(b), "{out}");
            assert_eq!(doc.value(a), doc2.value(b), "{out}");
        }
        // Serialization is a fixpoint after one round.
        assert_eq!(doc2.to_xml(), out);
    });
}

/// pre and post are permutations of 1..=n; depth of root is 1.
#[test]
fn pre_post_are_permutations() {
    for_random_docs(256, |doc, src| {
        let n = doc.node_count() as u32;
        let mut pres: Vec<u32> = doc.all_nodes().map(|i| doc.sid(i).pre).collect();
        let mut posts: Vec<u32> = doc.all_nodes().map(|i| doc.sid(i).post).collect();
        pres.sort_unstable();
        posts.sort_unstable();
        let expect: Vec<u32> = (1..=n).collect();
        assert_eq!(pres, expect, "{src}");
        assert_eq!(posts, expect, "{src}");
        assert_eq!(doc.sid(doc.root()).depth, 1, "{src}");
    });
}

/// The ID algebra agrees with actual tree navigation: for every pair of
/// nodes, `is_ancestor_of` iff walking parents reaches the other node,
/// and `is_parent_of` iff it is the direct parent.
#[test]
fn id_algebra_matches_tree() {
    for_random_docs(128, |doc, src| {
        let nodes: Vec<_> = doc.all_nodes().collect();
        for &a in nodes.iter().take(30) {
            for &d in nodes.iter().take(30) {
                let really_ancestor = doc.ancestors(d).any(|x| x == a);
                assert_eq!(
                    doc.sid(a).is_ancestor_of(&doc.sid(d)),
                    really_ancestor,
                    "ancestor mismatch for {a:?} vs {d:?} in {src}"
                );
                let really_parent = doc.parent(d) == Some(a);
                assert_eq!(doc.sid(a).is_parent_of(&doc.sid(d)), really_parent, "{src}");
            }
        }
    });
}

/// string_value equals the concatenation of descendant text nodes.
#[test]
fn string_value_is_descendant_text() {
    for_random_docs(256, |doc, src| {
        let root = doc.root();
        let mut expected = String::new();
        for d in doc.descendants(root) {
            if doc.kind(d) == NodeKind::Text {
                expected.push_str(doc.value(d).unwrap());
            }
        }
        assert_eq!(doc.string_value(root), expected, "{src}");
    });
}
