//! # amada-rng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! with the subset of the `rand` crate's API that the workspace uses
//! (`seed_from_u64`, `gen_range`, `gen_bool`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors nothing and depends on nothing external; this crate
//! replaces `rand`. Determinism is part of the contract: the corpus
//! generator derives one seed per document from `(master seed, doc
//! index)`, and the parallel generation path is byte-identical to the
//! sequential one precisely because every stream is a pure function of
//! its seed.
//!
//! The core generator is xoshiro256** (public domain, Blackman &
//! Vigna), seeded through SplitMix64 — the same construction `rand`'s
//! `StdRng::seed_from_u64` documents, though the streams differ, which is
//! fine: nothing in the repository depends on `rand`'s exact streams.

/// Expands a 64-bit seed into independent state words (SplitMix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// Named `StdRng` so call sites read exactly as they did under `rand`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro256** breaks on the all-zero state; SplitMix64 cannot
        // produce four zero words from one seed, but keep the guard local
        // and explicit.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15; 4];
        }
        StdRng { s }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in `range`. Supports the half-open and inclusive
    /// integer ranges and the half-open `f64` ranges the workspace uses.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range(0..slice.len())]
    }
}

/// A range that [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

/// Maps 64 uniform bits onto `[0, span)` without modulo bias
/// (fixed-point multiply: Lemire's method's first step; the tiny residual
/// bias at 64-bit spans is irrelevant for test-data generation).
fn sample_span(rng: &mut StdRng, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(5.0..100.0);
            assert!((5.0..100.0).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.19..0.21).contains(&rate), "rate {rate}");
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}
