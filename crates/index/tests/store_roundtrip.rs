//! Seeded property tests for the store codec: `encode_entry` →
//! (optionally a real backend) → `decode_*` must be lossless for every
//! payload shape, on both backend profiles, including profiles with
//! shrunken `max_item_bytes` / `max_attrs_per_item` budgets that force
//! aggressive chunking. Until now only the integration paths exercised
//! these combinations.

use amada_cloud::{DynamoDb, KvProfile, KvStore, SimTime, SimpleDb};
use amada_index::store::{decode_id_lists, decode_path_lists, decode_presence_uris, encode_entry};
use amada_index::{IndexEntry, Payload, UuidGen, TABLE_MAIN};
use amada_rng::StdRng;
use amada_xml::StructuralId;

/// The two real profiles plus shrunken-budget variants of each.
fn profiles_under_test() -> Vec<KvProfile> {
    let base = [DynamoDb::default().profile(), SimpleDb::default().profile()];
    let mut out = Vec::new();
    for p in base {
        out.push(p);
        for max_item_bytes in [640, 1500, 4096] {
            for max_attrs_per_item in [1, 3, 64] {
                let mut q = p;
                q.max_item_bytes = max_item_bytes;
                q.max_attrs_per_item = max_attrs_per_item;
                out.push(q);
            }
        }
    }
    out
}

fn random_label(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// A data path like the extractor produces: `/`-joined labels, never
/// containing `\n` (the blob separator) — occasionally deep enough to
/// overflow a per-item budget and force the marked-blob fallback.
fn random_path(rng: &mut StdRng) -> String {
    let comps = if rng.gen_bool(0.05) {
        rng.gen_range(100..400usize)
    } else {
        rng.gen_range(1..=8usize)
    };
    let mut p = String::new();
    for _ in 0..comps {
        p.push('/');
        p.push('e');
        p.push_str(&random_label(rng, 10));
    }
    p
}

fn random_ids(rng: &mut StdRng) -> Vec<StructuralId> {
    let n = rng.gen_range(1..=1500usize);
    let mut pre = 0u32;
    (0..n)
        .map(|_| {
            // Pre-sorted, as the extractor guarantees; gaps exercise the
            // delta varints across 1- to 5-byte widths.
            pre = pre.saturating_add(rng.gen_range(1..=100_000u32));
            StructuralId::new(pre, rng.next_u64() as u32, rng.gen_range(1..=64u32))
        })
        .collect()
}

fn random_payload(rng: &mut StdRng) -> Payload {
    match rng.gen_range(0..4u32) {
        0 => Payload::Presence,
        1 => Payload::Paths(
            (0..rng.gen_range(1..=40usize))
                .map(|_| random_path(rng))
                .collect(),
        ),
        _ => Payload::Ids(random_ids(rng)),
    }
}

fn round_trips(entry: &IndexEntry, profile: &KvProfile) -> Result<(), String> {
    let mut uuids = UuidGen::for_document(&entry.uri);
    let items = encode_entry(entry, profile, &mut uuids);
    for item in &items {
        if item.attrs[0].1.len() > profile.max_attrs_per_item {
            return Err(format!(
                "item holds {} values, profile allows {}",
                item.attrs[0].1.len(),
                profile.max_attrs_per_item
            ));
        }
    }
    let ok = match &entry.payload {
        Payload::Presence => decode_presence_uris(&items) == vec![entry.uri.clone()],
        Payload::Paths(paths) => decode_path_lists(&items, profile).get(&entry.uri) == Some(paths),
        Payload::Ids(ids) => decode_id_lists(&items, profile).get(&entry.uri) == Some(ids),
    };
    if ok {
        Ok(())
    } else {
        Err("decoded payload differs from the encoded one".to_string())
    }
}

#[test]
fn random_payloads_round_trip_across_profiles_and_budgets() {
    let profiles = profiles_under_test();
    let mut rng = StdRng::seed_from_u64(0x0C0D_EC01);
    for case in 0..400 {
        let entry = IndexEntry {
            table: TABLE_MAIN,
            key: format!("e{}", random_label(&mut rng, 24)),
            uri: format!("{}.xml", random_label(&mut rng, 16)),
            payload: random_payload(&mut rng),
        };
        let profile = profiles[rng.gen_range(0..profiles.len())];
        if let Err(why) = round_trips(&entry, &profile) {
            panic!(
                "case {case}: {why}\n  profile {} (item {} B, {} attrs)\n  key {:?} uri {:?} payload {:?}",
                profile.name,
                profile.max_item_bytes,
                profile.max_attrs_per_item,
                entry.key,
                entry.uri,
                kind(&entry.payload),
            );
        }
    }
}

#[test]
fn random_payloads_round_trip_through_real_stores() {
    let mut rng = StdRng::seed_from_u64(0x5704_43ED);
    for case in 0..60 {
        let entry = IndexEntry {
            table: TABLE_MAIN,
            key: format!("e{}", random_label(&mut rng, 16)),
            uri: format!("{}.xml", random_label(&mut rng, 12)),
            payload: random_payload(&mut rng),
        };
        for (mut store, profile) in [
            (
                Box::new(DynamoDb::default()) as Box<dyn KvStore>,
                DynamoDb::default().profile(),
            ),
            (
                Box::new(SimpleDb::default()) as Box<dyn KvStore>,
                SimpleDb::default().profile(),
            ),
        ] {
            store.ensure_table(TABLE_MAIN);
            let mut uuids = UuidGen::for_document(&entry.uri);
            let items = encode_entry(&entry, &profile, &mut uuids);
            for batch in items.chunks(profile.batch_put_limit.max(1)) {
                store
                    .batch_put(SimTime::ZERO, TABLE_MAIN, batch.to_vec())
                    .unwrap();
            }
            let (fetched, _) = store.get(SimTime::ZERO, TABLE_MAIN, &entry.key).unwrap();
            let ok = match &entry.payload {
                Payload::Presence => decode_presence_uris(&fetched) == vec![entry.uri.clone()],
                Payload::Paths(paths) => {
                    decode_path_lists(&fetched, &profile).get(&entry.uri) == Some(paths)
                }
                Payload::Ids(ids) => {
                    decode_id_lists(&fetched, &profile).get(&entry.uri) == Some(ids)
                }
            };
            assert!(
                ok,
                "case {case}: {} store round-trip lost the {} payload for key {:?}",
                profile.name,
                kind(&entry.payload),
                entry.key
            );
        }
    }
}

fn kind(p: &Payload) -> &'static str {
    match p {
        Payload::Presence => "presence",
        Payload::Paths(_) => "paths",
        Payload::Ids(_) => "ids",
    }
}
