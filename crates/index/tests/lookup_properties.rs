//! Property tests for the look-up planners: on random corpora and random
//! patterns over the XMark vocabulary,
//!
//! * candidate sets are contained as LU ⊇ LUP ⊇ LUI = 2LUPI (the paper's
//!   Table 5 invariant), and
//! * no strategy ever loses a document that actually matches
//!   (no false negatives — look-ups are conservative by design).

use amada_cloud::{DynamoDb, KvStore, SimTime};
use amada_index::{index_documents, lookup_pattern, ExtractOptions, Strategy as IndexStrategy};
use amada_pattern::ast::{Axis, NodeTest, Output, PatternNode, Predicate, TreePattern};
use amada_pattern::eval::naive_has_match;
use amada_xmark::{generate_document, CorpusConfig};
use amada_xml::Document;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Labels and words that actually occur in the generated corpus, plus a
/// few that do not (to exercise empty-key paths).
const LABELS: &[&str] = &[
    "site", "regions", "item", "name", "payment", "description", "mailbox", "mail", "from",
    "person", "profile", "age", "open_auction", "bidder", "increase", "closed_auction",
    "price", "nonexistent",
];
const ATTRS: &[&str] = &["id", "person", "item", "category"];
const WORDS: &[&str] = &["gold", "dragon", "shipment", "creditcard", "regular", "zzzz"];

fn pattern_strategy() -> impl Strategy<Value = TreePattern> {
    prop::collection::vec(
        (
            prop::sample::select(LABELS.to_vec()),
            prop::bool::ANY,                       // descendant axis
            prop::num::u8::ANY,                    // parent choice
            prop::option::weighted(
                0.3,
                prop_oneof![
                    prop::sample::select(WORDS.to_vec())
                        .prop_map(|w| Predicate::Contains(w.into())),
                    prop::sample::select(WORDS.to_vec()).prop_map(|w| Predicate::Eq(w.into())),
                ],
            ),
            proptest::bool::weighted(0.25),        // attribute node
            prop::sample::select(ATTRS.to_vec()),
        ),
        1..5,
    )
    .prop_map(|spec| {
        let mut nodes: Vec<PatternNode> = Vec::new();
        for (i, (label, desc, pchoice, pred, is_attr, attr)) in spec.into_iter().enumerate() {
            let parent = if i == 0 { None } else { Some(pchoice as usize % i) };
            let attr_ok = is_attr && i > 0;
            let test = if attr_ok {
                NodeTest::Attribute(attr.to_string())
            } else {
                NodeTest::Element(label.to_string())
            };
            if let Some(p) = parent {
                nodes[p].children.push(i);
            }
            nodes.push(PatternNode {
                test,
                axis: if desc { Axis::Descendant } else { Axis::Child },
                parent,
                children: Vec::new(),
                outputs: vec![Output::Val { join_var: None }],
                predicate: if attr_ok { None } else { pred },
            });
        }
        TreePattern { nodes }
    })
    .prop_filter("attributes are leaves", |p| {
        p.nodes.iter().all(|n| !n.test.is_attribute() || n.children.is_empty())
    })
}

fn corpus(seed: u64) -> Vec<Document> {
    let cfg = CorpusConfig {
        seed,
        num_documents: 12,
        target_doc_bytes: 1200,
        ..Default::default()
    };
    (0..cfg.num_documents)
        .map(|i| {
            let d = generate_document(&cfg, i);
            Document::parse_str(d.uri, &d.xml).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn containment_and_no_false_negatives(seed in 0u64..8, pattern in pattern_strategy()) {
        let docs = corpus(seed);
        let opts = ExtractOptions::default();
        let mut per_strategy: Vec<BTreeSet<String>> = Vec::new();
        for s in IndexStrategy::ALL {
            let mut store: Box<dyn KvStore> = Box::new(DynamoDb::default());
            index_documents(store.as_mut(), &docs, s, opts);
            let out = lookup_pattern(store.as_mut(), SimTime::ZERO, s, opts, &pattern).unwrap();
            per_strategy.push(out.uris.into_iter().collect());
        }
        let (lu, lup, lui, lupi) =
            (&per_strategy[0], &per_strategy[1], &per_strategy[2], &per_strategy[3]);
        prop_assert!(lup.is_subset(lu), "LUP ⊆ LU\n{pattern:?}");
        prop_assert!(lui.is_subset(lup), "LUI ⊆ LUP\n{pattern:?}");
        prop_assert_eq!(lui, lupi, "LUI = 2LUPI");
        // No false negatives anywhere.
        for d in &docs {
            if naive_has_match(d, &pattern) {
                for (s, set) in IndexStrategy::ALL.iter().zip(&per_strategy) {
                    prop_assert!(
                        set.contains(d.uri()),
                        "{s} dropped matching document {}\npattern {pattern:?}",
                        d.uri()
                    );
                }
            }
        }
    }
}
