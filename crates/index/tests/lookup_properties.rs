//! Property tests for the look-up planners: on random corpora and random
//! patterns over the XMark vocabulary,
//!
//! * candidate sets are contained as LU ⊇ LUP ⊇ LUI = 2LUPI (the paper's
//!   Table 5 invariant), and
//! * no strategy ever loses a document that actually matches
//!   (no false negatives — look-ups are conservative by design).
//!
//! Cases derive deterministically from `(fixed master seed, case index)`
//! via `amada-rng`, so failures reproduce exactly.

use amada_cloud::{DynamoDb, KvStore, SimTime};
use amada_index::{index_documents, lookup_pattern, ExtractOptions, Strategy as IndexStrategy};
use amada_pattern::ast::{Axis, NodeTest, Output, PatternNode, Predicate, TreePattern};
use amada_pattern::eval::naive_has_match;
use amada_rng::StdRng;
use amada_xmark::{generate_document, CorpusConfig};
use amada_xml::Document;
use std::collections::BTreeSet;

/// Labels and words that actually occur in the generated corpus, plus a
/// few that do not (to exercise empty-key paths).
const LABELS: &[&str] = &[
    "site",
    "regions",
    "item",
    "name",
    "payment",
    "description",
    "mailbox",
    "mail",
    "from",
    "person",
    "profile",
    "age",
    "open_auction",
    "bidder",
    "increase",
    "closed_auction",
    "price",
    "nonexistent",
];
const ATTRS: &[&str] = &["id", "person", "item", "category"];
const WORDS: &[&str] = &[
    "gold",
    "dragon",
    "shipment",
    "creditcard",
    "regular",
    "zzzz",
];

/// Random pattern over the XMark vocabulary: a flat spec per node
/// (label, axis, parent choice, weighted predicate, weighted attribute),
/// retried until no attribute node has children.
fn gen_pattern(rng: &mut StdRng) -> TreePattern {
    loop {
        let n = rng.gen_range(1..5usize);
        let mut nodes: Vec<PatternNode> = Vec::new();
        for i in 0..n {
            let label = *rng.choose(LABELS);
            let desc = rng.gen_bool(0.5);
            let pchoice = rng.gen_range(0..=255u8) as usize;
            let pred = if rng.gen_bool(0.3) {
                let w = *rng.choose(WORDS);
                Some(if rng.gen_bool(0.5) {
                    Predicate::Contains(w.into())
                } else {
                    Predicate::Eq(w.into())
                })
            } else {
                None
            };
            let is_attr = rng.gen_bool(0.25);
            let attr = *rng.choose(ATTRS);
            let parent = if i == 0 { None } else { Some(pchoice % i) };
            let attr_ok = is_attr && i > 0;
            let test = if attr_ok {
                NodeTest::Attribute(attr.to_string())
            } else {
                NodeTest::Element(label.to_string())
            };
            if let Some(p) = parent {
                nodes[p].children.push(i);
            }
            nodes.push(PatternNode {
                test,
                axis: if desc { Axis::Descendant } else { Axis::Child },
                parent,
                children: Vec::new(),
                outputs: vec![Output::Val { join_var: None }],
                predicate: if attr_ok { None } else { pred },
            });
        }
        let pattern = TreePattern { nodes };
        // Attributes cannot have children.
        if pattern
            .nodes
            .iter()
            .all(|n| !n.test.is_attribute() || n.children.is_empty())
        {
            return pattern;
        }
    }
}

fn corpus(seed: u64) -> Vec<Document> {
    let cfg = CorpusConfig {
        seed,
        num_documents: 12,
        target_doc_bytes: 1200,
        ..Default::default()
    };
    (0..cfg.num_documents)
        .map(|i| {
            let d = generate_document(&cfg, i);
            Document::parse_str(d.uri, &d.xml).unwrap()
        })
        .collect()
}

#[test]
fn containment_and_no_false_negatives() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x100C_0000 + case);
        let seed = rng.gen_range(0..8u64);
        let pattern = gen_pattern(&mut rng);
        let docs = corpus(seed);
        let opts = ExtractOptions::default();
        let mut per_strategy: Vec<BTreeSet<String>> = Vec::new();
        for s in IndexStrategy::ALL {
            let mut store: Box<dyn KvStore> = Box::new(DynamoDb::default());
            index_documents(store.as_mut(), &docs, s, opts);
            let out = lookup_pattern(store.as_mut(), SimTime::ZERO, s, opts, &pattern).unwrap();
            per_strategy.push(out.uris.into_iter().collect());
        }
        let (lu, lup, lui, lupi) = (
            &per_strategy[0],
            &per_strategy[1],
            &per_strategy[2],
            &per_strategy[3],
        );
        assert!(lup.is_subset(lu), "case {case}: LUP ⊆ LU\n{pattern:?}");
        assert!(lui.is_subset(lup), "case {case}: LUI ⊆ LUP\n{pattern:?}");
        assert_eq!(lui, lupi, "case {case}: LUI = 2LUPI");
        // No false negatives anywhere.
        for d in &docs {
            if naive_has_match(d, &pattern) {
                for (s, set) in IndexStrategy::ALL.iter().zip(&per_strategy) {
                    assert!(
                        set.contains(d.uri()),
                        "case {case}: {s} dropped matching document {}\npattern {pattern:?}",
                        d.uri()
                    );
                }
            }
        }
    }
}
