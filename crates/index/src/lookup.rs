//! Index look-up: from a query to the set of candidate documents,
//! per strategy (paper Sections 5.1–5.5).
//!
//! * **LU** — get every key mentioned by the query, intersect the URI sets.
//! * **LUP** — for each root-to-leaf *query path*, get the terminal key,
//!   keep URIs owning a stored data path that matches the query path
//!   (`(/|//)a₁(/|//)a₂…`), intersect across query paths.
//! * **LUI** — get the ID lists of every query key and run the holistic
//!   twig join per candidate document; exact for single-pattern queries.
//! * **2LUPI** — LUP look-up on the path table first, producing `R₁(URI)`;
//!   then the LUI twig join on the ID table *reduced* to `R₁` (the
//!   semijoin pre-filtering of the paper's Figure 5). Returns the same
//!   URIs as LUI.
//!
//! Range predicates are ignored during look-up and applied during query
//! evaluation (the two-step strategy of Section 5.5: "range look-ups in
//! key-value stores usually imply a full scan, which is very expensive").
//! Value joins are handled per tree pattern: each pattern is looked up
//! independently and evaluated independently; the join runs on the tuple
//! results (Section 5.5).

use crate::codec::{BlockCursor, BlockList};
use crate::key;
use crate::store::{decode_id_postings, decode_path_lists, decode_presence_uris};
use crate::strategy::{ExtractOptions, Strategy, TABLE_ID, TABLE_MAIN, TABLE_PATH};
use amada_cloud::{KvError, KvItem, KvStore, SimTime};
use amada_pattern::twig::{twig_streams_have_match, TwigShape};
use amada_pattern::{Axis, Predicate, Query, TreePattern, TwigStream};
use amada_xml::{tokenize, StructuralId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The result of looking up one tree pattern.
#[derive(Debug, Clone, Default)]
pub struct LookupOutcome {
    /// Candidate document URIs, sorted.
    pub uris: Vec<String>,
    /// Index entries (URIs, paths or IDs) processed by the look-up plan —
    /// the work metric for the "plan execution" phase of Figure 9b/9c.
    pub entries_processed: u64,
    /// Billed get operations issued.
    pub get_ops: u64,
    /// Virtual time at which the last index response arrived.
    pub ready_at: SimTime,
}

/// The result of looking up a whole (possibly multi-pattern) query.
#[derive(Debug, Clone, Default)]
pub struct QueryLookup {
    /// Per-pattern outcomes, in pattern order.
    pub per_pattern: Vec<LookupOutcome>,
    /// Union of candidate URIs across patterns, sorted and deduplicated.
    pub uris: Vec<String>,
    /// Sum of per-pattern candidate counts — the paper's Table 5 counts
    /// ("for queries featuring value joins, Table 5 sums the numbers of
    /// document IDs retrieved for each tree pattern").
    pub total_doc_ids: usize,
}

impl QueryLookup {
    /// Total entries processed across patterns.
    pub fn entries_processed(&self) -> u64 {
        self.per_pattern.iter().map(|p| p.entries_processed).sum()
    }

    /// Total billed gets across patterns.
    pub fn get_ops(&self) -> u64 {
        self.per_pattern.iter().map(|p| p.get_ops).sum()
    }

    /// Virtual completion time of the slowest pattern chain.
    pub fn ready_at(&self) -> SimTime {
        self.per_pattern
            .iter()
            .map(|p| p.ready_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Looks up a full query: each tree pattern independently (Section 5.5).
pub fn lookup_query(
    store: &mut dyn KvStore,
    now: SimTime,
    strategy: Strategy,
    opts: ExtractOptions,
    query: &Query,
) -> Result<QueryLookup, KvError> {
    let mut per_pattern = Vec::with_capacity(query.patterns.len());
    let mut t = now;
    for p in &query.patterns {
        let outcome = lookup_pattern(store, t, strategy, opts, p)?;
        t = outcome.ready_at;
        per_pattern.push(outcome);
    }
    let mut uris: Vec<String> = per_pattern
        .iter()
        .flat_map(|o| o.uris.iter().cloned())
        .collect();
    uris.sort();
    uris.dedup();
    let total = per_pattern.iter().map(|o| o.uris.len()).sum();
    Ok(QueryLookup {
        per_pattern,
        uris,
        total_doc_ids: total,
    })
}

/// The physical tables a strategy's look-up reads. Defaults to the
/// global table constants; per-partition routing ([`crate::partition`])
/// points them at a partition's own tables instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyTables {
    /// Single-table strategies (LU / LUP / LUI / LUP-PD).
    pub main: &'static str,
    /// 2LUPI path sub-index.
    pub path: &'static str,
    /// 2LUPI ID sub-index.
    pub id: &'static str,
}

impl Default for StrategyTables {
    fn default() -> Self {
        StrategyTables {
            main: TABLE_MAIN,
            path: TABLE_PATH,
            id: TABLE_ID,
        }
    }
}

/// Looks up a single tree pattern.
pub fn lookup_pattern(
    store: &mut dyn KvStore,
    now: SimTime,
    strategy: Strategy,
    opts: ExtractOptions,
    pattern: &TreePattern,
) -> Result<LookupOutcome, KvError> {
    lookup_pattern_in(
        store,
        now,
        strategy,
        opts,
        pattern,
        StrategyTables::default(),
    )
}

/// Looks up a single tree pattern against an explicit table set (the
/// default tables, or one partition's tables under a mixed plan).
pub fn lookup_pattern_in(
    store: &mut dyn KvStore,
    now: SimTime,
    strategy: Strategy,
    opts: ExtractOptions,
    pattern: &TreePattern,
    tables: StrategyTables,
) -> Result<LookupOutcome, KvError> {
    match strategy {
        Strategy::Lu => lookup_lu(store, now, opts, pattern, tables.main),
        // LUP-PD narrows candidates exactly like LUP; only the fetch side
        // differs (the query core scans candidates server-side instead of
        // GET-ing them).
        Strategy::Lup | Strategy::LupPd => lookup_lup(store, now, opts, pattern, tables.main),
        Strategy::Lui => lookup_lui(store, now, opts, pattern, tables.main, None),
        Strategy::TwoLupi => {
            // Phase 1: LUP on the path table → R1(URI).
            let r1 = lookup_lup(store, now, opts, pattern, tables.path)?;
            if r1.uris.is_empty() {
                return Ok(r1);
            }
            let reduce: BTreeSet<String> = r1.uris.iter().cloned().collect();
            // Phase 2: ID twig join reduced to R1.
            let mut r2 = lookup_lui(store, r1.ready_at, opts, pattern, tables.id, Some(&reduce))?;
            r2.entries_processed += r1.entries_processed;
            r2.get_ops += r1.get_ops;
            Ok(r2)
        }
    }
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

/// The look-up keys of one pattern node.
#[derive(Debug, Clone)]
pub struct NodeKeys {
    /// Pattern node index.
    pub node: usize,
    /// `e‖label`, `a‖name`, or `a‖name value` (attribute equality).
    pub main_key: String,
    /// `w‖word` keys from an element's equality / containment predicate.
    pub word_keys: Vec<String>,
}

/// Derives the look-up keys for every pattern node (Section 5.1: "all node
/// names, attribute and element string values are extracted from the
/// query"). Range predicates contribute no keys (two-step strategy).
pub fn pattern_keys(pattern: &TreePattern, opts: ExtractOptions) -> Vec<NodeKeys> {
    pattern
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let label = n.test.label();
            let (main_key, words): (String, Vec<String>) = if n.test.is_attribute() {
                match &n.predicate {
                    Some(Predicate::Eq(c)) => (key::attribute_value_key(label, c), vec![]),
                    _ => (key::attribute_key(label), vec![]),
                }
            } else {
                let words = if !opts.index_words {
                    vec![]
                } else {
                    match &n.predicate {
                        Some(Predicate::Eq(c)) => tokenize(c),
                        Some(Predicate::Contains(w)) => tokenize(w),
                        _ => vec![],
                    }
                };
                (key::element_key(label), words)
            };
            NodeKeys {
                node: i,
                main_key,
                word_keys: words.iter().map(|w| key::word_key(w)).collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Shared fetching
// ---------------------------------------------------------------------------

/// Items grouped per hash key, the completion time, and the billed gets.
type Fetched = (HashMap<String, Vec<KvItem>>, SimTime, u64);

/// Fetches all `keys` (deduplicated) with batch gets, returning items
/// grouped per key and the completion time.
fn fetch_keys(
    store: &mut dyn KvStore,
    now: SimTime,
    table: &str,
    keys: &[String],
) -> Result<Fetched, KvError> {
    let mut unique: Vec<String> = keys.to_vec();
    unique.sort();
    unique.dedup();
    let limit = store.profile().batch_get_limit.max(1);
    let mut by_key: HashMap<String, Vec<KvItem>> = HashMap::new();
    let mut t = now;
    let ops_before = store.stats().get_ops;
    for chunk in unique.chunks(limit) {
        let (items, ready) = store.batch_get(t, table, chunk)?;
        t = ready;
        for item in items {
            by_key.entry(item.hash_key.clone()).or_default().push(item);
        }
    }
    // Billed get operations, as the backend itself accounts them (capacity
    // units on DynamoDB, key look-ups on SimpleDB) — the cost model's
    // `|op(q, D, I)|`.
    let ops = store.stats().get_ops - ops_before;
    Ok((by_key, t, ops))
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

fn lookup_lu(
    store: &mut dyn KvStore,
    now: SimTime,
    opts: ExtractOptions,
    pattern: &TreePattern,
    table: &str,
) -> Result<LookupOutcome, KvError> {
    let node_keys = pattern_keys(pattern, opts);
    let keys: Vec<String> = node_keys
        .iter()
        .flat_map(|nk| std::iter::once(nk.main_key.clone()).chain(nk.word_keys.iter().cloned()))
        .collect();
    let (by_key, ready_at, get_ops) = fetch_keys(store, now, table, &keys)?;
    let mut entries = 0u64;
    let mut result: Option<BTreeSet<String>> = None;
    let mut sorted_keys: Vec<&String> = keys.iter().collect();
    sorted_keys.sort();
    sorted_keys.dedup();
    for k in sorted_keys {
        let uris: BTreeSet<String> = by_key
            .get(k)
            .map(|items| decode_presence_uris(items).into_iter().collect())
            .unwrap_or_default();
        entries += uris.len() as u64;
        result = Some(match result {
            None => uris,
            Some(prev) => prev.intersection(&uris).cloned().collect(),
        });
        if result.as_ref().is_some_and(BTreeSet::is_empty) {
            break;
        }
    }
    Ok(LookupOutcome {
        uris: result.unwrap_or_default().into_iter().collect(),
        entries_processed: entries,
        get_ops,
        ready_at,
    })
}

// ---------------------------------------------------------------------------
// LUP
// ---------------------------------------------------------------------------

/// A query path: `(axis, key)` steps from the root down (Section 5.2).
pub type QueryPath = Vec<(Axis, String)>;

/// Builds the root-to-leaf query paths of a pattern, extending leaves by
/// their predicate word / attribute-value keys, as the paper's q2 path
/// extends `year` by its equality constant `1854` — except that the word
/// step is `//`, not `/`: the predicate value is the subtree's
/// concatenated text, so the word's text node may sit below intervening
/// elements.
pub fn query_paths(pattern: &TreePattern, opts: ExtractOptions) -> Vec<QueryPath> {
    let node_keys = pattern_keys(pattern, opts);
    let mut out = Vec::new();
    for path in pattern.root_to_leaf_paths() {
        let base: QueryPath = path
            .iter()
            .map(|&(axis, n)| (axis, node_keys[n].main_key.clone()))
            .collect();
        let (_, leaf) = *path.last().expect("paths are non-empty");
        let words = &node_keys[leaf].word_keys;
        if words.is_empty() {
            out.push(base);
        } else {
            // One query path per predicate word, each extended by the word
            // key as a *descendant* step: an element predicate evaluates
            // against the concatenated text of the whole subtree, so the
            // word's text node may sit under any descendant element, and
            // extraction stores the word under that deeper path.
            for w in words {
                let mut p = base.clone();
                p.push((Axis::Descendant, w.clone()));
                out.push(p);
            }
        }
        // Word predicates on inner nodes also become query paths of their
        // own (root-to-node extended by the word).
        for &(_, n) in &path[..path.len().saturating_sub(1)] {
            for w in &node_keys[n].word_keys {
                let mut p: QueryPath = path
                    .iter()
                    .take_while(|&&(_, x)| x != n)
                    .map(|&(axis, x)| (axis, node_keys[x].main_key.clone()))
                    .collect();
                p.push((pattern.nodes[n].axis, node_keys[n].main_key.clone()));
                p.push((Axis::Descendant, w.clone()));
                out.push(p);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Tests whether a stored data path (e.g. `/esite/eregions/eitem/ename`)
/// matches a query path, respecting `/` vs `//` steps. The match is
/// anchored: the last query step must map to the last data component, and
/// a leading `/` step must map to the first.
pub fn data_path_matches(query: &[(Axis, String)], data: &str) -> bool {
    let comps: Vec<&str> = data.split('/').filter(|c| !c.is_empty()).collect();
    // Memoized over `(qi, ci)`: without it, adversarial descendant chains
    // (`//a//a//a…` against `/a/a/…/b`) backtrack exponentially, since the
    // same suffix pair is re-explored once per way of reaching it.
    const UNKNOWN: u8 = 0;
    const NO: u8 = 1;
    const YES: u8 = 2;
    let mut memo = vec![UNKNOWN; (query.len() + 1) * (comps.len() + 1)];
    fn rec(
        query: &[(Axis, String)],
        comps: &[&str],
        qi: usize,
        ci: usize,
        memo: &mut [u8],
    ) -> bool {
        let slot = qi * (comps.len() + 1) + ci;
        match memo[slot] {
            NO => return false,
            YES => return true,
            _ => {}
        }
        let matched = if qi == query.len() {
            ci == comps.len()
        } else {
            let (axis, ref k) = query[qi];
            match axis {
                Axis::Child => {
                    comps.get(ci) == Some(&k.as_str()) && rec(query, comps, qi + 1, ci + 1, memo)
                }
                Axis::Descendant => (ci..comps.len())
                    .any(|j| comps[j] == k.as_str() && rec(query, comps, qi + 1, j + 1, memo)),
            }
        };
        memo[slot] = if matched { YES } else { NO };
        matched
    }
    // The final component must be consumed exactly; `rec` enforces both.
    rec(query, &comps, 0, 0, &mut memo)
}

fn lookup_lup(
    store: &mut dyn KvStore,
    now: SimTime,
    opts: ExtractOptions,
    pattern: &TreePattern,
    table: &str,
) -> Result<LookupOutcome, KvError> {
    let paths = query_paths(pattern, opts);
    let terminal_keys: Vec<String> = paths
        .iter()
        .map(|p| p.last().expect("non-empty").1.clone())
        .collect();
    let (by_key, ready_at, get_ops) = fetch_keys(store, now, table, &terminal_keys)?;
    let profile = store.profile();
    // Decode each distinct terminal key once; several query paths may share
    // a terminal (e.g. two branches ending in the same label).
    let mut decoded: HashMap<&String, BTreeMap<String, Vec<String>>> = HashMap::new();
    let mut entries = 0u64;
    for terminal in paths.iter().map(|qp| &qp.last().expect("non-empty").1) {
        if !decoded.contains_key(terminal) {
            let map = by_key
                .get(terminal)
                .map(|items| decode_path_lists(items, &profile))
                .unwrap_or_default();
            entries += map.values().map(|v| v.len() as u64).sum::<u64>();
            decoded.insert(terminal, map);
        }
    }
    let mut result: Option<BTreeSet<String>> = None;
    for qp in &paths {
        let terminal = &qp.last().expect("non-empty").1;
        let mut uris = BTreeSet::new();
        for (uri, data_paths) in &decoded[terminal] {
            if data_paths.iter().any(|dp| data_path_matches(qp, dp)) {
                uris.insert(uri.clone());
            }
        }
        result = Some(match result {
            None => uris,
            Some(prev) => prev.intersection(&uris).cloned().collect(),
        });
        if result.as_ref().is_some_and(BTreeSet::is_empty) {
            break;
        }
    }
    Ok(LookupOutcome {
        uris: result.unwrap_or_default().into_iter().collect(),
        entries_processed: entries,
        get_ops,
        ready_at,
    })
}

// ---------------------------------------------------------------------------
// LUI (and the ID phase of 2LUPI)
// ---------------------------------------------------------------------------

fn lookup_lui(
    store: &mut dyn KvStore,
    now: SimTime,
    opts: ExtractOptions,
    pattern: &TreePattern,
    table: &str,
    reduce_to: Option<&BTreeSet<String>>,
) -> Result<LookupOutcome, KvError> {
    let node_keys = pattern_keys(pattern, opts);
    // The twig run over index streams: base pattern nodes plus one extra
    // child node per predicate word (its stream is the word key's IDs).
    let mut shape = TwigShape::from_pattern(pattern);
    // stream_keys[i] = the key feeding twig node i.
    let mut stream_keys: Vec<String> = node_keys.iter().map(|nk| nk.main_key.clone()).collect();
    for nk in &node_keys {
        for w in &nk.word_keys {
            let idx = shape.parent.len();
            shape.parent.push(Some(nk.node));
            // Descendant, not child: the word's text node may live under a
            // descendant element of the constrained one (an element
            // predicate evaluates the whole subtree's text), and the word
            // stream holds the text node's structural ID.
            shape.axis.push(Axis::Descendant);
            shape.children.push(Vec::new());
            shape.children[nk.node].push(idx);
            stream_keys.push(w.clone());
        }
    }
    let (by_key, ready_at, get_ops) = fetch_keys(store, now, table, &stream_keys)?;
    let profile = store.profile();
    // Group each distinct key's wire bytes once, as `lookup_lup` does: a
    // pattern with repeated labels feeds several twig nodes from the same
    // key, and regrouping would double-count `entries_processed`. The IDs
    // stay block-compressed; only the blocks the join lands in are decoded.
    let mut memo: HashMap<&String, BTreeMap<String, BlockList>> = HashMap::new();
    let mut entries = 0u64;
    for k in &stream_keys {
        if !memo.contains_key(k) {
            let map = by_key
                .get(k)
                .map(|items| decode_id_postings(items, &profile))
                .unwrap_or_default();
            entries += map.values().map(|v| v.len() as u64).sum::<u64>();
            memo.insert(k, map);
        }
    }
    // Per-stream view: stream i reads the postings of its key.
    let decoded: Vec<&BTreeMap<String, BlockList>> = stream_keys.iter().map(|k| &memo[k]).collect();
    // Candidate URIs: documents contributing IDs to *every* stream,
    // optionally reduced by the 2LUPI semijoin set.
    let mut candidates: Option<BTreeSet<String>> = reduce_to.cloned();
    for map in &decoded {
        let uris: BTreeSet<String> = map.keys().cloned().collect();
        candidates = Some(match candidates {
            None => uris,
            Some(prev) => prev.intersection(&uris).cloned().collect(),
        });
    }
    let candidates = candidates.unwrap_or_default();
    // Per candidate document, run the holistic twig join on lazy cursors
    // over its posting lists.
    let root_is_anchored = pattern.nodes[0].axis == Axis::Child;
    let mut uris = Vec::new();
    for uri in candidates {
        let mut streams: Vec<LuiStream<'_>> = Vec::with_capacity(stream_keys.len());
        let mut ok = true;
        for (i, map) in decoded.iter().enumerate() {
            let Some(list) = map.get(&uri) else {
                ok = false;
                break;
            };
            streams.push(LuiStream {
                cur: list.cursor(),
                depth1_only: root_is_anchored && i == 0,
            });
        }
        if !ok {
            continue;
        }
        if twig_streams_have_match(&shape, &mut streams) {
            uris.push(uri);
        }
    }
    Ok(LookupOutcome {
        uris,
        entries_processed: entries,
        get_ops,
        ready_at,
    })
}

/// [`TwigStream`] over a lazy block cursor, optionally restricted to
/// depth-1 IDs — the anchored-root case (`/label`), where the old path
/// materialized the list and `retain`ed document roots.
struct LuiStream<'a> {
    cur: BlockCursor<'a>,
    depth1_only: bool,
}

impl LuiStream<'_> {
    /// Re-establishes the depth-1 invariant after any repositioning.
    fn settle(&mut self) {
        if self.depth1_only {
            while let Some(id) = self.cur.peek() {
                if id.depth == 1 {
                    break;
                }
                self.cur.advance();
            }
        }
    }
}

impl TwigStream<()> for LuiStream<'_> {
    #[inline]
    fn peek(&self) -> Option<(StructuralId, ())> {
        self.cur.peek().map(|id| (id, ()))
    }

    fn advance(&mut self) {
        self.cur.advance();
        self.settle();
    }

    fn skip_to_pre(&mut self, min_pre: u32) {
        self.cur.skip_to_pre(min_pre);
        self.settle();
    }

    fn skip_to_end(&mut self) {
        self.cur.skip_to_end();
    }

    fn reset(&mut self) {
        self.cur.reset();
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadutil::index_documents;
    use crate::store::decode_id_lists;
    use amada_cloud::{DynamoDb, KvStore};
    use amada_pattern::parse_pattern;
    use amada_xml::Document;

    fn docs() -> Vec<Document> {
        vec![
            Document::parse_str(
                "delacroix.xml",
                "<painting id=\"1854-1\"><name>The Lion Hunt</name>\
                 <painter><name><first>Eugene</first><last>Delacroix</last></name></painter>\
                 </painting>",
            )
            .unwrap(),
            Document::parse_str(
                "manet.xml",
                "<painting id=\"1863-1\"><name>Olympia</name>\
                 <painter><name><first>Edouard</first><last>Manet</last></name></painter>\
                 </painting>",
            )
            .unwrap(),
            // A document with the same labels under a different structure:
            // a LU false positive that LUP must filter out for child paths.
            Document::parse_str(
                "weird.xml",
                "<painting id=\"x-1\"><meta><name>Storm</name></meta>\
                 <painter><name><first>A</first><last>B</last></name></painter></painting>",
            )
            .unwrap(),
            // Labels present but never under one painting: a LUP false
            // positive (paths exist) that the LUI twig join must filter.
            Document::parse_str(
                "split.xml",
                "<gallery><painting id=\"y-1\"><name>Sun</name></painting>\
                 <painting id=\"y-2\"><painter><name><first>C</first><last>D</last></name>\
                 </painter></painting></gallery>",
            )
            .unwrap(),
        ]
    }

    fn store_with(strategy: Strategy) -> Box<dyn KvStore> {
        let mut store: Box<dyn KvStore> = Box::new(DynamoDb::default());
        index_documents(store.as_mut(), &docs(), strategy, ExtractOptions::default());
        store
    }

    fn run(strategy: Strategy, pattern: &str) -> Vec<String> {
        let mut store = store_with(strategy);
        let p = parse_pattern(pattern).unwrap();
        lookup_pattern(
            store.as_mut(),
            SimTime::ZERO,
            strategy,
            ExtractOptions::default(),
            &p,
        )
        .unwrap()
        .uris
    }

    const Q1_LIKE: &str = "//painting[/name{val}, //painter[/name{val}]]";

    #[test]
    fn lu_returns_label_superset() {
        let uris = run(Strategy::Lu, Q1_LIKE);
        // All four documents contain the labels painting, name, painter.
        assert_eq!(uris.len(), 4);
    }

    #[test]
    fn lup_filters_structural_mismatches() {
        let uris = run(Strategy::Lup, Q1_LIKE);
        // weird.xml has no painting/name *child* path; split.xml has both
        // paths (painting/name on y-1) so LUP keeps it.
        assert_eq!(uris, ["delacroix.xml", "manet.xml", "split.xml"]);
    }

    #[test]
    fn lui_filters_non_cooccurring_twigs() {
        let uris = run(Strategy::Lui, Q1_LIKE);
        // split.xml's name and painter live under different paintings.
        assert_eq!(uris, ["delacroix.xml", "manet.xml"]);
    }

    #[test]
    fn two_lupi_equals_lui() {
        for pattern in [
            Q1_LIKE,
            "//painting[/name{contains(Lion)}]",
            "//painting[/@id{=\"1863-1\"}]",
            "//painter[/name[/first{val}, /last{val}]]",
        ] {
            let lui = run(Strategy::Lui, pattern);
            let lupi = run(Strategy::TwoLupi, pattern);
            assert_eq!(lui, lupi, "pattern {pattern}");
        }
    }

    #[test]
    fn containment_chain_lu_lup_lui() {
        // The paper's Table 5 invariant: LU ⊇ LUP ⊇ LUI.
        for pattern in [
            Q1_LIKE,
            "//painting[/name{val}]",
            "//painting[/name{contains(Hunt)}, //painter[/name[/last{val}]]]",
        ] {
            let lu: BTreeSet<_> = run(Strategy::Lu, pattern).into_iter().collect();
            let lup: BTreeSet<_> = run(Strategy::Lup, pattern).into_iter().collect();
            let lui: BTreeSet<_> = run(Strategy::Lui, pattern).into_iter().collect();
            assert!(lup.is_subset(&lu), "{pattern}");
            assert!(lui.is_subset(&lup), "{pattern}");
        }
    }

    #[test]
    fn attribute_equality_is_selective() {
        let uris = run(Strategy::Lu, "//painting[/@id{=\"1863-1\"}, /name{val}]");
        assert_eq!(uris, ["manet.xml"]);
    }

    #[test]
    fn word_lookup_q3_style() {
        let uris = run(
            Strategy::Lui,
            "//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]",
        );
        assert_eq!(uris, ["delacroix.xml"]);
    }

    #[test]
    fn range_predicates_are_ignored_at_lookup() {
        // Section 5.5 two-step strategy: the range must not restrict the
        // look-up, only the labels do.
        let with_range = run(Strategy::Lui, "//painting[/@id{val}, /name{1<val<=2}]");
        let without = run(Strategy::Lui, "//painting[/@id{val}, /name{val}]");
        assert_eq!(with_range, without);
    }

    #[test]
    fn query_paths_extend_predicates() {
        let p = parse_pattern("//painting[//description, /year{=\"1854\"}]").unwrap();
        let qps = query_paths(&p, ExtractOptions::default());
        let rendered: Vec<String> = qps
            .iter()
            .map(|qp| {
                qp.iter()
                    .map(|(a, k)| format!("{}{}", if *a == Axis::Child { "/" } else { "//" }, k))
                    .collect::<String>()
            })
            .collect();
        assert!(
            rendered.contains(&"//epainting//edescription".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"//epainting/eyear//w1854".to_string()),
            "{rendered:?}"
        );
    }

    #[test]
    fn data_path_matching() {
        let q = |s: &str| {
            // Tiny helper: parse "//ea/eb" into a QueryPath.
            let mut out: QueryPath = Vec::new();
            let mut rest = s;
            while !rest.is_empty() {
                let (axis, after) = if let Some(r) = rest.strip_prefix("//") {
                    (Axis::Descendant, r)
                } else if let Some(r) = rest.strip_prefix('/') {
                    (Axis::Child, r)
                } else {
                    panic!("bad path {s}");
                };
                let end = after.find('/').unwrap_or(after.len());
                out.push((axis, after[..end].to_string()));
                rest = &after[end..];
            }
            out
        };
        assert!(data_path_matches(
            &q("//eitem/ename"),
            "/esite/eregions/eitem/ename"
        ));
        assert!(!data_path_matches(
            &q("//eitem/ename"),
            "/esite/eitem/einfo/ename"
        ));
        assert!(data_path_matches(
            &q("//eitem//ename"),
            "/esite/eitem/einfo/ename"
        ));
        assert!(data_path_matches(&q("/ea/eb"), "/ea/eb"));
        assert!(!data_path_matches(&q("/eb"), "/ea/eb"));
        // The query must consume the whole data path tail.
        assert!(!data_path_matches(&q("//ea"), "/ea/eb"));
    }

    #[test]
    fn repeated_label_entries_are_counted_once() {
        // Both patterns read the same distinct key set {epainting, ename,
        // epainter}; the repeated `name` node feeds a second twig stream
        // from the same key and must not re-count its decoded entries
        // (the Figure 9b/9c plan-execution work metric).
        let repeated = parse_pattern("//painting[/name, //painter[/name]]").unwrap();
        let id_keys = ["epainting", "ename", "epainter"]; // distinct, name once
        let sum_ids = |store: &mut dyn KvStore, table: &str, keys: &[&str]| -> u64 {
            let profile = store.profile();
            keys.iter()
                .map(|k| {
                    let (items, _) = store.get(SimTime::ZERO, table, k).unwrap();
                    decode_id_lists(&items, &profile)
                        .values()
                        .map(|v| v.len() as u64)
                        .sum::<u64>()
                })
                .sum()
        };
        let run = |store: &mut dyn KvStore, strategy: Strategy| {
            lookup_pattern(
                store,
                SimTime::ZERO,
                strategy,
                ExtractOptions::default(),
                &repeated,
            )
            .unwrap()
            .entries_processed
        };

        let mut store = store_with(Strategy::Lui);
        let expected = sum_ids(store.as_mut(), TABLE_MAIN, &id_keys);
        assert_eq!(run(store.as_mut(), Strategy::Lui), expected);

        // 2LUPI adds its path phase: both query paths end in `name`, so the
        // path table contributes the single distinct terminal `ename`.
        let mut store = store_with(Strategy::TwoLupi);
        let profile = store.profile();
        let (items, _) = store.get(SimTime::ZERO, TABLE_PATH, "ename").unwrap();
        let path_entries: u64 = decode_path_lists(&items, &profile)
            .values()
            .map(|v| v.len() as u64)
            .sum();
        let expected = path_entries + sum_ids(store.as_mut(), TABLE_ID, &id_keys);
        assert_eq!(run(store.as_mut(), Strategy::TwoLupi), expected);
    }

    #[test]
    fn adversarial_descendant_chain_matches_without_backtracking() {
        // `//a` × 18 against `/a/a/…/a/b` (300 components): the naive
        // backtracking matcher explores C(300, 18) interleavings and never
        // terminates; the memoized matcher is polynomial.
        let chain: QueryPath = (0..18)
            .map(|_| (Axis::Descendant, "ea".to_string()))
            .collect();
        let mut data = "/ea".repeat(300);
        data.push_str("/eb");
        let started = std::time::Instant::now();
        // Fails only at the very end of every interleaving: the worst case.
        assert!(!data_path_matches(&chain, &data));
        let mut matching = chain.clone();
        matching.push((Axis::Descendant, "eb".to_string()));
        assert!(data_path_matches(&matching, &data));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "data_path_matches backtracked exponentially"
        );
    }

    #[test]
    fn missing_key_short_circuits_to_empty() {
        let mut store = store_with(Strategy::Lu);
        let p = parse_pattern("//nonexistent[/name]").unwrap();
        let out = lookup_pattern(
            store.as_mut(),
            SimTime::ZERO,
            Strategy::Lu,
            ExtractOptions::default(),
            &p,
        )
        .unwrap();
        assert!(out.uris.is_empty());
        assert!(out.get_ops > 0);
    }

    #[test]
    fn multi_pattern_lookup_sums_counts() {
        let mut store = store_with(Strategy::Lui);
        let q = amada_pattern::parse_query(
            "//painting[/@id{val as $p}]; //painting[/@id{val as $p}, //painter]",
        )
        .unwrap();
        let out = lookup_query(
            store.as_mut(),
            SimTime::ZERO,
            Strategy::Lui,
            ExtractOptions::default(),
            &q,
        )
        .unwrap();
        assert_eq!(out.per_pattern.len(), 2);
        assert_eq!(
            out.total_doc_ids,
            out.per_pattern[0].uris.len() + out.per_pattern[1].uris.len()
        );
        assert!(out.ready_at() > SimTime::ZERO);
    }
}
