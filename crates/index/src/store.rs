//! Mapping index entries onto key-value items, per backend.
//!
//! Paper Section 6: an entry becomes one or more items whose hash key is
//! the entry key and whose range key is a UUID "generated at indexing
//! time", so that concurrently-indexing instances can never overwrite each
//! other's items; the document URI becomes the attribute name and the
//! entry values the attribute values.
//!
//! Encoding differs by backend capability:
//!
//! * **DynamoDB** — paths are native string values; ID lists are a single
//!   compressed *binary* value (split across items only past the 64 KB
//!   item cap);
//! * **SimpleDB** — no binary values and a 1 KB value cap, so both paths
//!   and ID lists are serialized to a byte blob, base64-coded, and chunked
//!   into ≤ 1 KB string values spread over as many items as needed — the
//!   request/storage amplification behind the paper's Tables 7–8.
//!
//! Chunk order is preserved by prefixing range keys with a zero-padded
//! sequence number, so a plain `get` returns chunks in order per document.

use crate::codec::{
    base64_decode, base64_encode, decode_ids, encode_ids, encode_ids_chunked, BlockList,
};
use crate::strategy::{IndexEntry, Payload};
use amada_cloud::{KvItem, KvProfile, KvValue};
use amada_xml::StructuralId;
use std::collections::BTreeMap;

/// Deterministic UUID-shaped range-key generator (splitmix64 over a seed
/// derived from the document URI, so re-indexing a document is stable).
#[derive(Debug, Clone)]
pub struct UuidGen {
    state: u64,
}

impl UuidGen {
    /// Seeds the generator from a document URI.
    pub fn for_document(uri: &str) -> UuidGen {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in uri.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        UuidGen { state: h }
    }

    /// Produces the next UUID-shaped token.
    pub fn next_uuid(&mut self) -> String {
        let mut z = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let a = z ^ (z >> 31);
        let mut z2 = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state = z2;
        z2 = (z2 ^ (z2 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let b = z2 ^ (z2 >> 27);
        format!(
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (a >> 32) as u32,
            (a >> 16) as u16,
            a as u16,
            (b >> 48) as u16,
            b & 0xffff_ffff_ffff
        )
    }

    /// Chunk sequence numbers the fixed-width range-key prefix can order.
    ///
    /// Past this bound `{seq:06}` would widen to seven digits and sort
    /// *before* the six-digit prefixes (`"1000000-…" < "999999-…"`), so
    /// chunk reassembly would silently interleave. Widening the prefix is
    /// not an option either — item sizes (and therefore billed bytes)
    /// depend on the range-key length — so the generator hard-errors
    /// instead. One entry would need > 10⁶ chunks (≈ 1 GB on SimpleDB) to
    /// get here, far past any per-document payload the pipeline produces.
    pub const MAX_CHUNK_SEQ: usize = 1_000_000;

    fn range_key(&mut self, seq: usize) -> String {
        assert!(
            seq < Self::MAX_CHUNK_SEQ,
            "range-key sequence {seq} overflows the fixed {}-digit prefix: \
             lexicographic chunk order would corrupt reassembly",
            6
        );
        format!("{seq:06}-{}", self.next_uuid())
    }
}

/// Base64 chunk size: the largest multiple of 4 not exceeding the 1 KB
/// SimpleDB value cap, so chunks concatenate into valid base64.
const B64_CHUNK: usize = 1024;

/// Prefix marking a blob-encoded path list stored on a binary-capable
/// backend (used when a single path exceeds the per-item budget). `\x01`
/// cannot start a data path (paths start with `/`).
const BLOB_MARKER: &str = "\u{1}b64\u{1}";

/// Slack reserved per item for store bookkeeping when computing budgets.
const ITEM_SLACK: usize = 128;

/// Encodes one extracted entry into store items for the given backend.
pub fn encode_entry(entry: &IndexEntry, profile: &KvProfile, uuids: &mut UuidGen) -> Vec<KvItem> {
    let fixed = entry.key.len() + 43 /* range key */ + entry.uri.len() + ITEM_SLACK;
    let budget = profile.max_item_bytes.saturating_sub(fixed).max(256);
    let values: Vec<KvValue> = match &entry.payload {
        Payload::Presence => vec![KvValue::S(String::new())],
        Payload::Paths(paths) => {
            if profile.supports_binary && paths.iter().all(|p| p.len() <= budget) {
                paths.iter().map(|p| KvValue::S(p.clone())).collect()
            } else {
                // Either a string-only backend, or a single path exceeds
                // what one item can hold: fall back to the newline-joined
                // blob, chunked into in-budget string values. The first
                // chunk carries a marker so the decoder can tell blob
                // chunks from native path values.
                let mut values = blob_to_string_values(paths.join("\n").as_bytes());
                if profile.supports_binary {
                    if let Some(KvValue::S(first)) = values.first_mut() {
                        first.insert_str(0, BLOB_MARKER);
                    }
                }
                values
            }
        }
        Payload::Ids(ids) => {
            if profile.supports_binary {
                encode_ids_chunked(ids, budget)
                    .into_iter()
                    .map(KvValue::B)
                    .collect()
            } else {
                blob_to_string_values(&encode_ids(ids))
            }
        }
    };
    // Group values into items within the backend's item budget and
    // attribute-count limit.
    let mut items = Vec::new();
    let mut current: Vec<KvValue> = Vec::new();
    let mut current_bytes = 0usize;
    let mut seq = 0usize;
    let flush =
        |vals: &mut Vec<KvValue>, seq: &mut usize, items: &mut Vec<KvItem>, uuids: &mut UuidGen| {
            if vals.is_empty() {
                return;
            }
            items.push(KvItem {
                hash_key: entry.key.clone(),
                range_key: uuids.range_key(*seq),
                attrs: vec![(entry.uri.clone(), std::mem::take(vals))],
            });
            *seq += 1;
        };
    for v in values {
        let vlen = v.len();
        if !current.is_empty()
            && (current_bytes + vlen > budget || current.len() >= profile.max_attrs_per_item)
        {
            flush(&mut current, &mut seq, &mut items, uuids);
            current_bytes = 0;
        }
        current_bytes += vlen;
        current.push(v);
    }
    flush(&mut current, &mut seq, &mut items, uuids);
    items
}

fn blob_to_string_values(blob: &[u8]) -> Vec<KvValue> {
    let b64 = base64_encode(blob);
    if b64.is_empty() {
        return vec![KvValue::S(String::new())];
    }
    b64.as_bytes()
        .chunks(B64_CHUNK)
        .map(|c| KvValue::S(String::from_utf8(c.to_vec()).expect("base64 is ASCII")))
        .collect()
}

/// Groups fetched items per document URI, with values ordered by range key
/// (i.e. chunk sequence).
fn group_by_uri(items: &[KvItem]) -> BTreeMap<String, Vec<(&str, &[KvValue])>> {
    let mut by_uri: BTreeMap<String, Vec<(&str, &[KvValue])>> = BTreeMap::new();
    for item in items {
        for (uri, values) in &item.attrs {
            by_uri
                .entry(uri.clone())
                .or_default()
                .push((item.range_key.as_str(), values.as_slice()));
        }
    }
    for chunks in by_uri.values_mut() {
        chunks.sort_by(|a, b| a.0.cmp(b.0));
    }
    by_uri
}

/// Decodes LU presence items into the set of document URIs.
pub fn decode_presence_uris(items: &[KvItem]) -> Vec<String> {
    group_by_uri(items).into_keys().collect()
}

/// Decodes LUP items into per-URI path lists.
pub fn decode_path_lists(items: &[KvItem], profile: &KvProfile) -> BTreeMap<String, Vec<String>> {
    group_by_uri(items)
        .into_iter()
        .map(|(uri, chunks)| {
            let is_marked_blob = matches!(
                chunks.first().and_then(|(_, vs)| vs.first()),
                Some(KvValue::S(s)) if s.starts_with(BLOB_MARKER)
            );
            let paths: Vec<String> = if profile.supports_binary && !is_marked_blob {
                chunks
                    .iter()
                    .flat_map(|(_, vs)| vs.iter())
                    .filter_map(|v| match v {
                        KvValue::S(s) => Some(s.clone()),
                        KvValue::B(_) => None,
                    })
                    .collect()
            } else if is_marked_blob {
                let mut b64 = String::new();
                for (_, vs) in &chunks {
                    for v in *vs {
                        if let KvValue::S(s) = v {
                            b64.push_str(s.strip_prefix(BLOB_MARKER).unwrap_or(s));
                        }
                    }
                }
                let blob = base64_decode(&b64).unwrap_or_default();
                if blob.is_empty() {
                    Vec::new()
                } else {
                    String::from_utf8_lossy(&blob)
                        .split('\n')
                        .map(String::from)
                        .collect()
                }
            } else {
                let blob = reassemble_blob(&chunks);
                if blob.is_empty() {
                    Vec::new()
                } else {
                    String::from_utf8_lossy(&blob)
                        .split('\n')
                        .map(String::from)
                        .collect()
                }
            };
            (uri, paths)
        })
        .collect()
}

/// Decodes LUI items into per-URI, `pre`-sorted ID lists.
pub fn decode_id_lists(
    items: &[KvItem],
    profile: &KvProfile,
) -> BTreeMap<String, Vec<StructuralId>> {
    group_by_uri(items)
        .into_iter()
        .map(|(uri, chunks)| {
            let ids: Vec<StructuralId> = if profile.supports_binary {
                chunks
                    .iter()
                    .flat_map(|(_, vs)| vs.iter())
                    .filter_map(|v| match v {
                        KvValue::B(b) => decode_ids(b),
                        KvValue::S(_) => None,
                    })
                    .flatten()
                    .collect()
            } else {
                decode_ids(&reassemble_blob(&chunks)).unwrap_or_default()
            };
            (uri, ids)
        })
        .collect()
}

/// Decodes LUI items into per-URI block-structured postings.
///
/// Same grouping and per-chunk tolerance as [`decode_id_lists`] (a
/// malformed binary chunk is dropped, a malformed string blob yields an
/// empty list), but the IDs stay in their wire bytes behind
/// [`BlockList`] skip metadata: the twig join decodes only the blocks it
/// lands in.
pub fn decode_id_postings(items: &[KvItem], profile: &KvProfile) -> BTreeMap<String, BlockList> {
    group_by_uri(items)
        .into_iter()
        .map(|(uri, chunks)| {
            let list = if profile.supports_binary {
                BlockList::from_chunks(chunks.iter().flat_map(|(_, vs)| vs.iter()).filter_map(
                    |v| match v {
                        KvValue::B(b) => Some(b.as_slice()),
                        KvValue::S(_) => None,
                    },
                ))
            } else {
                BlockList::from_flat(&reassemble_blob(&chunks)).unwrap_or_default()
            };
            (uri, list)
        })
        .collect()
}

fn reassemble_blob(chunks: &[(&str, &[KvValue])]) -> Vec<u8> {
    let mut b64 = String::new();
    for (_, vs) in chunks {
        for v in *vs {
            if let KvValue::S(s) = v {
                b64.push_str(s);
            }
        }
    }
    base64_decode(&b64).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TABLE_MAIN;
    use amada_cloud::{DynamoDb, KvStore, SimpleDb};

    fn dynamo_profile() -> KvProfile {
        DynamoDb::default().profile()
    }

    fn simple_profile() -> KvProfile {
        SimpleDb::default().profile()
    }

    fn entry(payload: Payload) -> IndexEntry {
        IndexEntry {
            table: TABLE_MAIN,
            key: "ename".into(),
            uri: "doc.xml".into(),
            payload,
        }
    }

    fn ids(n: u32) -> Vec<StructuralId> {
        (1..=n)
            .map(|i| StructuralId::new(i * 2, i * 2 - 1, (i % 7) + 1))
            .collect()
    }

    #[test]
    fn uuids_are_unique_and_deterministic() {
        let mut a = UuidGen::for_document("doc.xml");
        let mut b = UuidGen::for_document("doc.xml");
        let u1 = a.next_uuid();
        assert_eq!(u1, b.next_uuid());
        assert_ne!(u1, a.next_uuid());
        assert_eq!(u1.len(), 36);
        let mut other = UuidGen::for_document("other.xml");
        assert_ne!(u1, other.next_uuid());
    }

    #[test]
    fn range_keys_order_lexicographically_up_to_the_cap() {
        let mut g = UuidGen::for_document("doc.xml");
        let penultimate = g.range_key(UuidGen::MAX_CHUNK_SEQ - 2);
        let last = g.range_key(UuidGen::MAX_CHUNK_SEQ - 1);
        assert!(
            penultimate < last,
            "chunk order must follow sequence order at the edge"
        );
        assert_eq!(last.len(), 6 + 1 + 36);
    }

    #[test]
    #[should_panic(expected = "range-key sequence")]
    fn range_key_hard_errors_past_the_sequence_cap() {
        let mut g = UuidGen::for_document("doc.xml");
        let _ = g.range_key(UuidGen::MAX_CHUNK_SEQ);
    }

    #[test]
    fn dynamo_ids_fit_one_binary_value() {
        let mut uuids = UuidGen::for_document("doc.xml");
        let items = encode_entry(
            &entry(Payload::Ids(ids(100))),
            &dynamo_profile(),
            &mut uuids,
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].attrs[0].1.len(), 1);
        assert!(items[0].attrs[0].1[0].is_binary());
        let decoded = decode_id_lists(&items, &dynamo_profile());
        assert_eq!(decoded["doc.xml"], ids(100));
    }

    #[test]
    fn simpledb_ids_chunk_into_string_values() {
        let mut uuids = UuidGen::for_document("doc.xml");
        let list = ids(5000); // ~20 KB encoded → many 1 KB chunks
        let items = encode_entry(
            &entry(Payload::Ids(list.clone())),
            &simple_profile(),
            &mut uuids,
        );
        assert!(!items.is_empty());
        let total_values: usize = items.iter().map(|i| i.attrs[0].1.len()).sum();
        assert!(
            total_values > 10,
            "expected many chunks, got {total_values}"
        );
        for item in &items {
            for (_, vs) in &item.attrs {
                for v in vs {
                    assert!(!v.is_binary());
                    assert!(v.len() <= 1024);
                }
            }
        }
        let decoded = decode_id_lists(&items, &simple_profile());
        assert_eq!(decoded["doc.xml"], list);
    }

    #[test]
    fn simpledb_amplifies_item_count_vs_dynamo() {
        let list = ids(60_000); // ~240 KB encoded
        let mut u1 = UuidGen::for_document("doc.xml");
        let mut u2 = UuidGen::for_document("doc.xml");
        let d = encode_entry(
            &entry(Payload::Ids(list.clone())),
            &dynamo_profile(),
            &mut u1,
        );
        let s = encode_entry(&entry(Payload::Ids(list)), &simple_profile(), &mut u2);
        let d_values: usize = d.iter().map(|i| i.attrs[0].1.len()).sum();
        let s_values: usize = s.iter().map(|i| i.attrs[0].1.len()).sum();
        assert!(
            s_values > 20 * d_values,
            "SimpleDB values {s_values} vs DynamoDB values {d_values}"
        );
    }

    #[test]
    fn paths_native_on_dynamo_blob_on_simpledb() {
        let paths = vec!["/ea/eb".to_string(), "/ea/ec/ed".to_string()];
        let mut u1 = UuidGen::for_document("doc.xml");
        let d = encode_entry(
            &entry(Payload::Paths(paths.clone())),
            &dynamo_profile(),
            &mut u1,
        );
        assert_eq!(d[0].attrs[0].1.len(), 2);
        let decoded = decode_path_lists(&d, &dynamo_profile());
        assert_eq!(decoded["doc.xml"], paths);

        let mut u2 = UuidGen::for_document("doc.xml");
        let s = encode_entry(
            &entry(Payload::Paths(paths.clone())),
            &simple_profile(),
            &mut u2,
        );
        let decoded = decode_path_lists(&s, &simple_profile());
        assert_eq!(decoded["doc.xml"], paths);
    }

    #[test]
    fn oversized_native_path_falls_back_to_marked_blob() {
        // One path longer than the DynamoDB item budget: the entry must
        // still store and decode losslessly (and every item stays legal).
        let deep = format!("/e{}", "a/e".repeat(40_000));
        let paths = vec!["/ea/eb".to_string(), deep.clone()];
        let mut uuids = UuidGen::for_document("doc.xml");
        let items = encode_entry(
            &entry(Payload::Paths(paths.clone())),
            &dynamo_profile(),
            &mut uuids,
        );
        for i in &items {
            assert!(
                i.byte_size() <= dynamo_profile().max_item_bytes,
                "{}",
                i.byte_size()
            );
        }
        let decoded = decode_path_lists(&items, &dynamo_profile());
        assert_eq!(decoded["doc.xml"], paths);
    }

    #[test]
    fn presence_round_trip_multiple_documents() {
        let mut items = Vec::new();
        for uri in ["b.xml", "a.xml"] {
            let mut uuids = UuidGen::for_document(uri);
            let e = IndexEntry {
                table: TABLE_MAIN,
                key: "ename".into(),
                uri: uri.into(),
                payload: Payload::Presence,
            };
            items.extend(encode_entry(&e, &dynamo_profile(), &mut uuids));
        }
        assert_eq!(decode_presence_uris(&items), ["a.xml", "b.xml"]);
    }

    #[test]
    fn round_trip_through_real_stores() {
        use amada_cloud::SimTime;
        for (mut store, profile) in [
            (
                Box::new(DynamoDb::default()) as Box<dyn KvStore>,
                dynamo_profile(),
            ),
            (
                Box::new(SimpleDb::default()) as Box<dyn KvStore>,
                simple_profile(),
            ),
        ] {
            store.ensure_table(TABLE_MAIN);
            let list = ids(2000);
            let mut uuids = UuidGen::for_document("doc.xml");
            let items = encode_entry(&entry(Payload::Ids(list.clone())), &profile, &mut uuids);
            for batch in items.chunks(profile.batch_put_limit) {
                store
                    .batch_put(SimTime::ZERO, TABLE_MAIN, batch.to_vec())
                    .unwrap();
            }
            let (fetched, _) = store.get(SimTime::ZERO, TABLE_MAIN, "ename").unwrap();
            let decoded = decode_id_lists(&fetched, &profile);
            assert_eq!(decoded["doc.xml"], list, "backend {}", profile.name);
        }
    }

    #[test]
    fn large_id_lists_split_across_dynamo_items() {
        // >64 KB encoded must produce multiple items, all within limits.
        let list = ids(40_000);
        let mut uuids = UuidGen::for_document("doc.xml");
        let items = encode_entry(
            &entry(Payload::Ids(list.clone())),
            &dynamo_profile(),
            &mut uuids,
        );
        assert!(items.len() > 1);
        for i in &items {
            assert!(i.byte_size() <= dynamo_profile().max_item_bytes);
        }
        let decoded = decode_id_lists(&items, &dynamo_profile());
        assert_eq!(decoded["doc.xml"], list);
    }
}
