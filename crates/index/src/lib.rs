//! # amada-index
//!
//! The paper's four cloud indexing strategies (Section 5) and everything
//! around them:
//!
//! * [`key`] — the `key(n)` encoding (`e‖label`, `a‖name`,
//!   `a‖name value`, `w‖word`) and `inPath(n)` path encoding;
//! * [`strategy`] — the extraction functions of Table 2 (LU, LUP, LUI,
//!   2LUPI), with or without full-text word keys;
//! * [`codec`] — delta-varint compression of structural-ID lists, plus the
//!   base64 / 1 KB-chunk fallback for string-only stores;
//! * [`store`] — mapping entries onto key-value items (UUID range keys,
//!   per-backend encoding, chunk ordering);
//! * [`loadutil`] — batched writing of extracted entries;
//! * [`lookup`] — the per-strategy look-up planners, including the LUP
//!   query-path matcher and the 2LUPI semijoin + ID twig join plan of the
//!   paper's Figure 5;
//! * [`explain`] — textual look-up plans (the Figure 5 outline, for every
//!   strategy);
//! * [`pushdown`] — the wire-serializable scan predicate behind the
//!   LUP-PD strategy (storage-side post-filtering, the S3-Select analog);
//! * [`summary`] — DataGuide-style path summaries, selectivity estimation
//!   and the Section 8.5 per-query strategy hint (the paper's future
//!   work).

pub mod cache;
pub mod codec;
pub mod explain;
pub mod key;
pub mod loadutil;
pub mod lookup;
pub mod parallel;
pub mod partition;
pub mod pushdown;
pub mod shard;
pub mod store;
pub mod strategy;
pub mod summary;

pub use cache::{content_hash, CacheStats, ExtractCache};
pub use explain::explain;
pub use loadutil::{
    entry_item_keys, index_document, index_documents, retract_keys, stale_keys, write_entries,
    DocIndexing, ItemKey,
};
pub use lookup::{
    lookup_pattern, lookup_pattern_in, lookup_query, LookupOutcome, QueryLookup, StrategyTables,
};
pub use parallel::{prewarm, PrewarmReport};
pub use partition::{
    index_documents_mixed, lookup_mixed, partition_lookup_tables, partition_of, partition_table,
    partition_tables, retarget_entries, MixedPlan,
};
pub use pushdown::{decode_tuples, encode_tuples, ScanPredicate};
pub use shard::{hottest_keys, key_frequencies, skew_aware_plan};
pub use store::UuidGen;
pub use strategy::{extract, ExtractOptions, IndexEntry, Payload, Strategy};
pub use strategy::{TABLE_ID, TABLE_MAIN, TABLE_PATH};
pub use summary::{PathSummary, StrategyHint};
