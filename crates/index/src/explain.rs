//! Human-readable look-up plans — the textual analogue of the paper's
//! Figure 5 (the 2LUPI plan outline), for all four strategies.
//!
//! `explain` renders what the look-up *will* do for a query without
//! touching any store: which keys are fetched, how candidates are
//! filtered, and which operators combine them. Useful for understanding
//! strategy behaviour and for the examples/documentation.

use crate::lookup::{pattern_keys, query_paths};
use crate::strategy::{ExtractOptions, Strategy};
use amada_pattern::{Axis, Query, TreePattern};
use std::fmt::Write;

/// Renders the look-up plan of `query` under `strategy`.
pub fn explain(strategy: Strategy, query: &Query, opts: ExtractOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "look-up plan [{}]", strategy.name());
    for (i, p) in query.patterns.iter().enumerate() {
        if query.patterns.len() > 1 {
            let _ = writeln!(out, "pattern {}:", i + 1);
        }
        explain_pattern(&mut out, strategy, p, opts);
    }
    if query.patterns.len() > 1 {
        let _ = writeln!(
            out,
            "then: evaluate each pattern on its candidates; hash-join tuples on the join variables"
        );
    }
    out
}

fn render_query_path(qp: &[(Axis, String)]) -> String {
    let mut s = String::new();
    for (axis, key) in qp {
        s.push_str(if *axis == Axis::Child { "/" } else { "//" });
        s.push_str(key);
    }
    s
}

fn explain_pattern(out: &mut String, strategy: Strategy, p: &TreePattern, opts: ExtractOptions) {
    let keys = pattern_keys(p, opts);
    match strategy {
        Strategy::Lu => {
            let all: Vec<String> = keys
                .iter()
                .flat_map(|nk| {
                    std::iter::once(nk.main_key.clone()).chain(nk.word_keys.iter().cloned())
                })
                .collect();
            let _ = writeln!(out, "  get({})", all.join("), get("));
            let _ = writeln!(out, "  ∩ intersect URI sets");
        }
        Strategy::Lup => {
            for qp in query_paths(p, opts) {
                let _ = writeln!(
                    out,
                    "  get({}) → filter paths matching {}",
                    qp.last().expect("paths are non-empty").1,
                    render_query_path(&qp)
                );
            }
            let _ = writeln!(out, "  ∩ intersect URI sets");
        }
        Strategy::LupPd => {
            for qp in query_paths(p, opts) {
                let _ = writeln!(
                    out,
                    "  get({}) → filter paths matching {}",
                    qp.last().expect("paths are non-empty").1,
                    render_query_path(&qp)
                );
            }
            let _ = writeln!(out, "  ∩ intersect URI sets");
            let _ = writeln!(
                out,
                "  ∀ candidate: s3.scan(doc, compiled pattern) — storage-side \
                 filter, egress only on matching tuples"
            );
        }
        Strategy::Lui => {
            for nk in &keys {
                let _ = writeln!(out, "  get({}) → ID stream", nk.main_key);
                for w in &nk.word_keys {
                    let _ = writeln!(out, "  get({w}) → ID stream (predicate word)");
                }
            }
            let _ = writeln!(out, "  ⋈ holistic twig join per candidate document");
        }
        Strategy::TwoLupi => {
            let _ = writeln!(out, "  phase 1 (path table):");
            for qp in query_paths(p, opts) {
                let _ = writeln!(
                    out,
                    "    get({}) → filter paths matching {}",
                    qp.last().expect("paths are non-empty").1,
                    render_query_path(&qp)
                );
            }
            let _ = writeln!(out, "    ∩ intersect → R1(URI)");
            let _ = writeln!(out, "  phase 2 (ID table):");
            for nk in &keys {
                let _ = writeln!(out, "    get({}) ⋉ R1(URI)", nk.main_key);
                for w in &nk.word_keys {
                    let _ = writeln!(out, "    get({w}) ⋉ R1(URI)");
                }
            }
            let _ = writeln!(out, "    ⋈ holistic twig join per candidate document");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_pattern::parse_query;

    fn q2() -> Query {
        parse_query("//painting[//description{cont}, /year{=1854}]").unwrap()
    }

    #[test]
    fn lu_plan_lists_all_keys() {
        let plan = explain(Strategy::Lu, &q2(), ExtractOptions::default());
        // The paper's Section 5.3 example look-ups for q2.
        for key in ["epainting", "edescription", "eyear", "w1854"] {
            assert!(plan.contains(key), "{plan}");
        }
        assert!(plan.contains("intersect"));
    }

    #[test]
    fn lup_plan_shows_query_paths() {
        let plan = explain(Strategy::Lup, &q2(), ExtractOptions::default());
        assert!(plan.contains("//epainting//edescription"), "{plan}");
        assert!(plan.contains("//epainting/eyear//w1854"), "{plan}");
    }

    #[test]
    fn lup_pd_plan_pushes_the_filter_to_storage() {
        let plan = explain(Strategy::LupPd, &q2(), ExtractOptions::default());
        // Same index-side narrowing as LUP…
        assert!(plan.contains("//epainting//edescription"), "{plan}");
        assert!(plan.contains("intersect"));
        // …plus the storage-side scan step.
        assert!(plan.contains("s3.scan"), "{plan}");
    }

    #[test]
    fn two_lupi_plan_has_both_phases() {
        let plan = explain(Strategy::TwoLupi, &q2(), ExtractOptions::default());
        assert!(plan.contains("phase 1 (path table)"));
        assert!(plan.contains("phase 2 (ID table)"));
        assert!(plan.contains("⋉ R1(URI)"), "{plan}");
        assert!(plan.contains("holistic twig join"));
    }

    #[test]
    fn join_queries_explain_every_pattern() {
        let q = parse_query(
            "//museum[/name{val}, //painting[/@id{val as $p}]]; \
             //painting[/@id{val as $p}]",
        )
        .unwrap();
        let plan = explain(Strategy::Lui, &q, ExtractOptions::default());
        assert!(plan.contains("pattern 1:"));
        assert!(plan.contains("pattern 2:"));
        assert!(plan.contains("hash-join tuples"));
    }
}
