//! Parallel prewarming of the host-side extraction cache.
//!
//! The discrete-event engine is single-threaded by design (virtual time
//! is a global total order), so by the time `LoaderCore`s start stepping,
//! every parse and extraction the corpus needs should already be sitting
//! in the [`ExtractCache`]. This module performs that work up front
//! across all host cores: one task per document, dynamically balanced
//! (document sizes vary), entirely free of virtual-time side effects —
//! the engine still charges each core the full parse + extract cost at
//! its own virtual arrival time.

use crate::cache::ExtractCache;
use crate::strategy::{ExtractOptions, Strategy};

/// What one prewarm pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrewarmReport {
    /// Documents visited.
    pub documents: usize,
    /// Bytes of XML parsed (or re-validated from cache).
    pub bytes: u64,
    /// `(doc, strategy, opts)` extraction combinations visited.
    pub extractions: usize,
    /// Host threads used.
    pub threads: usize,
}

/// Parses every `(uri, bytes)` document and runs extraction for every
/// `(strategy, opts)` combination, filling `cache` across all host
/// cores. Idempotent: combinations already cached are validated and
/// skipped at memo-probe cost.
///
/// Pass an empty `combos` slice to prewarm parses only (useful for the
/// query path, which parses candidate documents but never extracts).
pub fn prewarm<B: AsRef<Vec<u8>> + Sync>(
    cache: &ExtractCache,
    docs: &[(String, B)],
    combos: &[(Strategy, ExtractOptions)],
) -> PrewarmReport {
    let threads = amada_par::num_threads();
    let per_doc = amada_par::par_map_with(threads, docs, |_, (uri, bytes)| {
        let bytes: &[u8] = bytes.as_ref().as_slice();
        if combos.is_empty() {
            cache.parsed(uri, bytes);
        }
        for &(strategy, opts) in combos {
            cache.extracted(uri, bytes, strategy, opts);
        }
        bytes.len() as u64
    });
    PrewarmReport {
        documents: docs.len(),
        bytes: per_doc.iter().sum(),
        extractions: docs.len() * combos.len(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::extract;

    fn docs() -> Vec<(String, Vec<u8>)> {
        (0..40)
            .map(|i| {
                (
                    format!("d{i}.xml"),
                    format!("<a><b k=\"v{i}\">text {i}</b></a>").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn prewarm_fills_the_cache() {
        let cache = ExtractCache::default();
        let docs = docs();
        let combos = [(Strategy::Lu, ExtractOptions::default())];
        let report = prewarm(&cache, &docs, &combos);
        assert_eq!(report.documents, 40);
        assert_eq!(report.extractions, 40);
        assert!(report.bytes > 0);
        assert_eq!(cache.len(), 40);
        // Every subsequent probe is a hit.
        let before = cache.stats();
        for (uri, bytes) in &docs {
            cache.extracted(uri, bytes, Strategy::Lu, ExtractOptions::default());
        }
        let after = cache.stats();
        assert_eq!(after.parse_misses, before.parse_misses);
        assert_eq!(after.extract_misses, before.extract_misses);
        assert_eq!(after.extract_hits, before.extract_hits + 40);
    }

    #[test]
    fn prewarm_is_idempotent() {
        let cache = ExtractCache::default();
        let docs = docs();
        let combos = [(Strategy::TwoLupi, ExtractOptions::default())];
        prewarm(&cache, &docs, &combos);
        let misses_after_first = cache.stats().extract_misses;
        prewarm(&cache, &docs, &combos);
        assert_eq!(cache.stats().extract_misses, misses_after_first);
    }

    #[test]
    fn prewarmed_extraction_matches_direct() {
        let cache = ExtractCache::default();
        let docs = docs();
        let combos: Vec<(Strategy, ExtractOptions)> = Strategy::ALL
            .into_iter()
            .map(|s| (s, ExtractOptions::default()))
            .collect();
        prewarm(&cache, &docs, &combos);
        for (uri, bytes) in &docs {
            for &(strategy, opts) in &combos {
                let (doc, entries) = cache.extracted(uri, bytes, strategy, opts);
                assert_eq!(*entries, extract(&doc, strategy, opts));
            }
        }
    }

    #[test]
    fn empty_combos_prewarms_parses_only() {
        let cache = ExtractCache::default();
        let docs = docs();
        let report = prewarm(&cache, &docs, &[]);
        assert_eq!(report.extractions, 0);
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.stats().extract_misses, 0);
    }
}
