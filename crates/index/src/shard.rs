//! Skew-aware shard planning for the key-value index store.
//!
//! Index hash keys are wildly skewed: a handful of element labels
//! (`e‖item`, `e‖name`, …) account for most postings and therefore most
//! read/write capacity, while the long tail of attribute-value and word
//! keys is individually cold. Hash partitioning alone lands every
//! high-frequency label on *some* shard and saturates it — the classic
//! hot-partition problem of real DynamoDB tables.
//!
//! This module turns observed key frequencies (counted from extracted
//! [`IndexEntry`]s, or from any recorded access log) into a
//! [`ShardPlan`]: the hottest keys are pinned to dedicated shards, the
//! cold tail is FNV-hashed across the rest. Planning is pure data →
//! data — same corpus and shard counts give the same plan on every run
//! and every thread count, which is what the determinism tests pin.

use crate::strategy::IndexEntry;
use amada_cloud::ShardPlan;
use std::collections::BTreeMap;

/// Hash-key frequency census over a set of extracted index entries.
///
/// `BTreeMap` so iteration (and therefore planning) is key-ordered and
/// deterministic regardless of extraction order.
pub fn key_frequencies(entries: &[IndexEntry]) -> BTreeMap<String, u64> {
    let mut freqs: BTreeMap<String, u64> = BTreeMap::new();
    for e in entries {
        *freqs.entry(e.key.clone()).or_default() += 1;
    }
    freqs
}

/// The `hot_shards` hottest hash keys, by descending frequency with key
/// order breaking ties — the pinning order of [`skew_aware_plan`].
pub fn hottest_keys(freqs: &BTreeMap<String, u64>, hot_shards: usize) -> Vec<String> {
    let mut ranked: Vec<(&String, u64)> = freqs.iter().map(|(k, &n)| (k, n)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    ranked
        .into_iter()
        .take(hot_shards)
        .map(|(k, _)| k.clone())
        .collect()
}

/// Builds a skew-aware [`ShardPlan`]: `total_shards` shards, of which up
/// to `hot_shards` are dedicated to the highest-frequency hash keys and
/// the remainder hash-partition the cold tail.
///
/// When there are fewer distinct keys than requested hot shards the
/// spare shards fold back into the cold range, so the plan always has
/// exactly `total_shards` shards.
///
/// # Panics
/// Panics when `hot_shards >= total_shards` (at least one cold shard
/// must remain to receive the tail) or `total_shards` is zero.
pub fn skew_aware_plan(
    freqs: &BTreeMap<String, u64>,
    total_shards: usize,
    hot_shards: usize,
) -> ShardPlan {
    assert!(total_shards >= 1, "a plan needs at least one shard");
    assert!(
        hot_shards < total_shards,
        "the cold tail needs at least one shard"
    );
    let hot = hottest_keys(freqs, hot_shards);
    ShardPlan::with_hot_keys(total_shards - hot.len(), hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{extract, ExtractOptions, Strategy};
    use amada_xml::Document;

    fn corpus_entries() -> Vec<IndexEntry> {
        let doc = Document::parse_str(
            "site.xml",
            "<site><people><person id=\"p0\"><name>Ada</name></person>\
             <person id=\"p1\"><name>Bob</name></person></people></site>",
        )
        .expect("corpus parses");
        extract(&doc, Strategy::Lu, ExtractOptions { index_words: false })
    }

    #[test]
    fn frequencies_count_every_entry_keyed() {
        let entries = corpus_entries();
        let freqs = key_frequencies(&entries);
        let total: u64 = freqs.values().sum();
        assert_eq!(total, entries.len() as u64);
        // LU emits one entry per (key, document): both `person` elements
        // collapse into one `eperson` posting for this single document,
        // while the two distinct attribute-value keys stay separate.
        assert_eq!(freqs.get("eperson"), Some(&1));
        assert_eq!(freqs.get("aid p0"), Some(&1));
        assert_eq!(freqs.get("aid p1"), Some(&1));
    }

    #[test]
    fn hottest_keys_rank_by_count_then_key() {
        let mut freqs = BTreeMap::new();
        freqs.insert("b".to_string(), 5u64);
        freqs.insert("a".to_string(), 5);
        freqs.insert("z".to_string(), 9);
        freqs.insert("cold".to_string(), 1);
        assert_eq!(hottest_keys(&freqs, 3), vec!["z", "a", "b"]);
    }

    #[test]
    fn plan_pins_hot_keys_and_keeps_total_shard_count() {
        let entries = corpus_entries();
        let freqs = key_frequencies(&entries);
        let plan = skew_aware_plan(&freqs, 4, 2);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.cold_shards(), 2);
        let pinned: Vec<&str> = plan.hot_keys().map(|(k, _)| k).collect();
        assert_eq!(pinned.len(), 2);
        for k in &pinned {
            assert!(freqs.contains_key(*k), "{k} must come from the corpus");
            assert!(plan.route(k) >= 2, "hot keys route past the cold range");
        }
    }

    #[test]
    fn fewer_keys_than_hot_shards_folds_back_to_cold() {
        let mut freqs = BTreeMap::new();
        freqs.insert("only".to_string(), 3u64);
        let plan = skew_aware_plan(&freqs, 5, 3);
        assert_eq!(plan.shards(), 5);
        assert_eq!(plan.cold_shards(), 4);
    }

    #[test]
    fn planning_is_deterministic() {
        let entries = corpus_entries();
        let freqs = key_frequencies(&entries);
        let a = skew_aware_plan(&freqs, 6, 3);
        for _ in 0..5 {
            let again = key_frequencies(&corpus_entries());
            assert_eq!(skew_aware_plan(&again, 6, 3), a);
        }
    }

    #[test]
    #[should_panic(expected = "cold tail")]
    fn all_hot_is_rejected() {
        skew_aware_plan(&BTreeMap::new(), 2, 2);
    }
}
