//! The four indexing strategies of the paper's Table 2 and their
//! extraction functions `I(d)`.
//!
//! | strategy | per key `key(n)` the index stores |
//! |---|---|
//! | LU    | `(URI(d), ε)` |
//! | LUP   | `(URI(d), {inPath₁(n) … inPathᵧ(n)})` |
//! | LUI   | `(URI(d), id₁(n)‖id₂(n)‖…‖id_z(n))` (pre-sorted, one value) |
//! | 2LUPI | both of the above, in two separate tables |
//!
//! Extraction walks the document once, grouping nodes by key; word keys
//! come from tokenized text content, attribute nodes contribute both their
//! name key and their value key (Section 5).

use crate::key;
use amada_xml::{for_each_word, Document, NodeKind, StructuralId};
use std::collections::BTreeMap;
use std::fmt;

/// An indexing strategy (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Label–URI.
    Lu,
    /// Label–URI–Path.
    Lup,
    /// Label–URI–ID.
    Lui,
    /// Label–URI–Path + Label–URI–ID (two materialized indexes).
    TwoLupi,
    /// Label–URI–Path with the post-filter *pushed down to storage*:
    /// the LUP index narrows candidates, then each candidate is resolved
    /// with a server-side [`amada_cloud::s3::S3::scan`] instead of a GET —
    /// billed per GB scanned plus egress on the filtered result only
    /// (the S3-Select analog; beyond the paper).
    LupPd,
}

impl Strategy {
    /// The paper's four strategies, in its presentation order. LUP-PD is
    /// deliberately *not* here: every existing experiment, oracle rotation
    /// and report iterates `ALL`, and the pushdown strategy is opt-in.
    pub const ALL: [Strategy; 4] = [
        Strategy::Lu,
        Strategy::Lup,
        Strategy::Lui,
        Strategy::TwoLupi,
    ];

    /// The paper's name for the strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Lu => "LU",
            Strategy::Lup => "LUP",
            Strategy::Lui => "LUI",
            Strategy::TwoLupi => "2LUPI",
            Strategy::LupPd => "LUP-PD",
        }
    }

    /// Parses a strategy name (case-insensitive).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.to_ascii_uppercase().as_str() {
            "LU" => Some(Strategy::Lu),
            "LUP" => Some(Strategy::Lup),
            "LUI" => Some(Strategy::Lui),
            "2LUPI" => Some(Strategy::TwoLupi),
            "LUP-PD" | "LUPPD" => Some(Strategy::LupPd),
            _ => None,
        }
    }

    /// The key-value tables this strategy stores entries in.
    /// Every strategy but 2LUPI uses a single table; 2LUPI materializes
    /// its two sub-indexes in two tables (paper Section 6).
    pub fn tables(self) -> &'static [&'static str] {
        match self {
            Strategy::Lu | Strategy::Lup | Strategy::Lui | Strategy::LupPd => &[TABLE_MAIN],
            Strategy::TwoLupi => &[TABLE_PATH, TABLE_ID],
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Table used by the single-table strategies.
pub const TABLE_MAIN: &str = "amada-index";
/// 2LUPI path sub-index.
pub const TABLE_PATH: &str = "amada-index-path";
/// 2LUPI ID sub-index.
pub const TABLE_ID: &str = "amada-index-id";

/// Extraction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExtractOptions {
    /// Whether word (`w‖…`) keys are produced — the full-text variant of
    /// Figure 8. Queries with `contains` predicates degrade (less precise
    /// look-ups) without it.
    pub index_words: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { index_words: true }
    }
}

/// What the index stores for one `(key, document)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// LU: the null string ε.
    Presence,
    /// LUP: the distinct data paths under which the key occurs.
    Paths(Vec<String>),
    /// LUI: the `pre`-sorted structural IDs of the key's nodes.
    Ids(Vec<StructuralId>),
}

/// One extracted index entry: everything to be stored under `key` for this
/// document (the paper's `(k, (a, v⁺)⁺)` with `a = URI(d)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Destination table.
    pub table: &'static str,
    /// The index key (hash key in the store).
    pub key: String,
    /// The document URI (attribute name in the store).
    pub uri: String,
    /// The values.
    pub payload: Payload,
}

impl IndexEntry {
    /// Approximate raw size of the entry (the paper's `sr(D, I)`
    /// contribution), before store-specific encoding.
    pub fn raw_bytes(&self) -> usize {
        let payload = match &self.payload {
            Payload::Presence => 0,
            Payload::Paths(ps) => ps.iter().map(String::len).sum(),
            Payload::Ids(ids) => crate::codec::encode_ids(ids).len(),
        };
        self.key.len() + self.uri.len() + payload
    }
}

/// Per-key collected node information (one document).
#[derive(Debug, Default)]
struct KeyAcc {
    paths: BTreeMap<String, ()>,
    ids: Vec<StructuralId>,
}

/// Walks the document once and groups, per key, the node IDs and data
/// paths. IDs come out `pre`-sorted because the walk is in document order.
fn collect(doc: &Document, opts: ExtractOptions) -> BTreeMap<String, KeyAcc> {
    let mut acc: BTreeMap<String, KeyAcc> = BTreeMap::new();
    // Paths are built incrementally: a node's encoded path is its parent's
    // plus one component (preorder guarantees parents precede children),
    // instead of re-walking the ancestor chain per node.
    let mut paths: Vec<String> = vec![String::new(); doc.node_count()];
    for n in doc.all_nodes() {
        let parent_path: &str = match doc.parent(n) {
            Some(p) => &paths[p.index()],
            None => "",
        };
        match doc.kind(n) {
            NodeKind::Element => {
                let k = key::element_key(doc.name(n).expect("elements have names"));
                let path = format!("{parent_path}/{k}");
                let e = acc.entry(k).or_default();
                e.paths.insert(path.clone(), ());
                e.ids.push(doc.sid(n));
                paths[n.index()] = path;
            }
            NodeKind::Attribute => {
                let name = doc.name(n).expect("attributes have names");
                let value = doc.value(n).unwrap_or_default();
                let sid = doc.sid(n);
                let name_key = key::attribute_key(name);
                let value_key = key::attribute_value_key(name, value);
                let e = acc.entry(name_key.clone()).or_default();
                e.paths.insert(format!("{parent_path}/{name_key}"), ());
                e.ids.push(sid);
                let ev = acc.entry(value_key.clone()).or_default();
                ev.paths.insert(format!("{parent_path}/{value_key}"), ());
                ev.ids.push(sid);
            }
            NodeKind::Text => {
                if !opts.index_words {
                    continue;
                }
                let sid = doc.sid(n);
                for_each_word(doc.value(n).unwrap_or_default(), |word| {
                    let wk = key::word_key(word);
                    let e = acc.entry(wk.clone()).or_default();
                    e.paths.insert(format!("{parent_path}/{wk}"), ());
                    // The same word may occur twice in one text node; the
                    // ID list stores the node once.
                    if e.ids.last() != Some(&sid) {
                        e.ids.push(sid);
                    }
                });
            }
        }
    }
    acc
}

/// Runs a strategy's extraction function `I(d)` over one document.
pub fn extract(doc: &Document, strategy: Strategy, opts: ExtractOptions) -> Vec<IndexEntry> {
    let acc = collect(doc, opts);
    let uri = doc.uri().to_string();
    let mut out = Vec::with_capacity(acc.len() * strategy.tables().len());
    for (k, v) in acc {
        match strategy {
            Strategy::Lu => out.push(IndexEntry {
                table: TABLE_MAIN,
                key: k,
                uri: uri.clone(),
                payload: Payload::Presence,
            }),
            // LUP-PD stores exactly the LUP index; only query execution
            // differs (candidates resolve via storage-side scans).
            Strategy::Lup | Strategy::LupPd => out.push(IndexEntry {
                table: TABLE_MAIN,
                key: k,
                uri: uri.clone(),
                payload: Payload::Paths(v.paths.into_keys().collect()),
            }),
            Strategy::Lui => out.push(IndexEntry {
                table: TABLE_MAIN,
                key: k,
                uri: uri.clone(),
                payload: Payload::Ids(v.ids),
            }),
            Strategy::TwoLupi => {
                out.push(IndexEntry {
                    table: TABLE_PATH,
                    key: k.clone(),
                    uri: uri.clone(),
                    payload: Payload::Paths(v.paths.into_keys().collect()),
                });
                out.push(IndexEntry {
                    table: TABLE_ID,
                    key: k,
                    uri: uri.clone(),
                    payload: Payload::Ids(v.ids),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_xml::Document;

    const DELACROIX: &str = "<painting id=\"1854-1\"><name>The Lion Hunt</name>\
        <painter><name><first>Eugene</first><last>Delacroix</last></name></painter></painting>";

    fn doc() -> Document {
        Document::parse_str("delacroix.xml", DELACROIX).unwrap()
    }

    fn find<'a>(entries: &'a [IndexEntry], key: &str) -> &'a IndexEntry {
        entries
            .iter()
            .find(|e| e.key == key)
            .unwrap_or_else(|| panic!("no entry {key}"))
    }

    #[test]
    fn lu_produces_presence_entries() {
        let entries = extract(&doc(), Strategy::Lu, ExtractOptions::default());
        let e = find(&entries, "ename");
        assert_eq!(e.payload, Payload::Presence);
        assert_eq!(e.uri, "delacroix.xml");
        // Attribute name and value keys both exist.
        assert!(entries.iter().any(|e| e.key == "aid"));
        assert!(entries.iter().any(|e| e.key == "aid 1854-1"));
        // Word keys.
        assert!(entries.iter().any(|e| e.key == "wlion"));
    }

    #[test]
    fn lup_paths_match_paper_figure4() {
        let entries = extract(&doc(), Strategy::Lup, ExtractOptions::default());
        let e = find(&entries, "ename");
        assert_eq!(
            e.payload,
            Payload::Paths(vec![
                "/epainting/ename".into(),
                "/epainting/epainter/ename".into()
            ])
        );
        let id = find(&entries, "aid");
        assert_eq!(id.payload, Payload::Paths(vec!["/epainting/aid".into()]));
        let w = find(&entries, "wlion");
        assert_eq!(
            w.payload,
            Payload::Paths(vec!["/epainting/ename/wlion".into()])
        );
    }

    #[test]
    fn lui_ids_match_paper_section53() {
        let entries = extract(&doc(), Strategy::Lui, ExtractOptions::default());
        let e = find(&entries, "ename");
        assert_eq!(
            e.payload,
            Payload::Ids(vec![StructuralId::new(3, 3, 2), StructuralId::new(6, 8, 3)])
        );
        let id = find(&entries, "aid 1854-1");
        assert_eq!(id.payload, Payload::Ids(vec![StructuralId::new(2, 1, 2)]));
    }

    #[test]
    fn two_lupi_materializes_both_tables() {
        let entries = extract(&doc(), Strategy::TwoLupi, ExtractOptions::default());
        let path_entries: Vec<_> = entries.iter().filter(|e| e.table == TABLE_PATH).collect();
        let id_entries: Vec<_> = entries.iter().filter(|e| e.table == TABLE_ID).collect();
        assert_eq!(path_entries.len(), id_entries.len());
        assert!(!path_entries.is_empty());
    }

    #[test]
    fn ids_are_pre_sorted_per_key() {
        let entries = extract(&doc(), Strategy::Lui, ExtractOptions::default());
        for e in &entries {
            if let Payload::Ids(ids) = &e.payload {
                assert!(ids.windows(2).all(|w| w[0].pre < w[1].pre), "key {}", e.key);
            }
        }
    }

    #[test]
    fn no_words_without_fulltext() {
        let entries = extract(&doc(), Strategy::Lu, ExtractOptions { index_words: false });
        assert!(!entries.iter().any(|e| e.key.starts_with('w')));
        // Attribute value keys are kept: they are not full-text.
        assert!(entries.iter().any(|e| e.key == "aid 1854-1"));
    }

    #[test]
    fn fulltext_index_is_larger() {
        let with: usize = extract(&doc(), Strategy::Lup, ExtractOptions::default())
            .iter()
            .map(IndexEntry::raw_bytes)
            .sum();
        let without: usize = extract(&doc(), Strategy::Lup, ExtractOptions { index_words: false })
            .iter()
            .map(IndexEntry::raw_bytes)
            .sum();
        assert!(with > without);
    }

    #[test]
    fn strategy_parse_and_display() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Strategy::parse("2lupi"), Some(Strategy::TwoLupi));
        assert_eq!(Strategy::parse("nope"), None);
        // The fifth (pushdown) strategy round-trips but stays outside ALL.
        assert_eq!(Strategy::parse("LUP-PD"), Some(Strategy::LupPd));
        assert_eq!(Strategy::parse("luppd"), Some(Strategy::LupPd));
        assert_eq!(Strategy::LupPd.to_string(), "LUP-PD");
        assert!(!Strategy::ALL.contains(&Strategy::LupPd));
    }

    #[test]
    fn lup_pd_extraction_is_identical_to_lup() {
        let lup = extract(&doc(), Strategy::Lup, ExtractOptions::default());
        let pd = extract(&doc(), Strategy::LupPd, ExtractOptions::default());
        assert_eq!(lup, pd, "LUP-PD stores exactly the LUP index");
    }

    #[test]
    fn repeated_word_in_one_text_node_indexed_once() {
        let d = Document::parse_str("t.xml", "<a>lion lion lion</a>").unwrap();
        let entries = extract(&d, Strategy::Lui, ExtractOptions::default());
        let e = find(&entries, "wlion");
        if let Payload::Ids(ids) = &e.payload {
            assert_eq!(ids.len(), 1);
        } else {
            panic!("expected ids");
        }
    }
}
