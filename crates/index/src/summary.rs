//! Data summaries and selectivity estimation — the paper's future work,
//! implemented.
//!
//! Section 8.5 concludes that the cases where LUI / 2LUPI beat LU / LUP
//! "can be statically detected by using data summaries and some
//! statistical information. We postpone this study to future work."; the
//! conclusion (Section 9) promises an "index advisor tool". This module
//! supplies the machinery:
//!
//! * [`PathSummary`] — a DataGuide-style structural summary (the paper's
//!   citation \[13\], Goldman & Widom): a trie of all label paths in the
//!   corpus with node- and document-frequencies, plus word document
//!   frequencies;
//! * selectivity estimation for tree patterns: per query path, the exact
//!   document frequency from the summary; per pattern, an
//!   independence-assumption combination — an upper bound on what the LUP
//!   look-up can achieve;
//! * [`PathSummary::recommend`] — the per-query strategy hint of
//!   Section 8.5: fine-granularity (ID-based) strategies pay off when the
//!   pattern is multi-branched and the predicted *co-occurrence gap*
//!   (documents matching every path separately but not the twig) is
//!   large.
//!
//! The summary is tiny compared to the corpus (one trie node per distinct
//! path) and can be maintained incrementally at indexing time.

use crate::key;
use crate::lookup::{query_paths, QueryPath};
use crate::strategy::ExtractOptions;
use amada_pattern::{Axis, TreePattern};
use amada_xml::{for_each_word, Document, NodeKind};
use std::collections::{HashMap, HashSet};

/// One node of the path trie.
#[derive(Debug, Clone, Default)]
struct SummaryNode {
    /// Children by encoded label key (`e‖label` / `a‖name`).
    children: HashMap<String, usize>,
    /// Total node instances reaching this path.
    instances: u64,
    /// Bitmap of documents containing this path (bit = document number in
    /// summarization order); unions across trie nodes give exact document
    /// frequencies for `//` query paths matching several data paths.
    doc_bits: Vec<u64>,
}

impl SummaryNode {
    fn mark(&mut self, doc: u64) {
        let (block, bit) = ((doc / 64) as usize, doc % 64);
        if self.doc_bits.len() <= block {
            self.doc_bits.resize(block + 1, 0);
        }
        self.doc_bits[block] |= 1 << bit;
    }
}

/// A DataGuide-style corpus summary with document frequencies.
#[derive(Debug, Clone, Default)]
pub struct PathSummary {
    nodes: Vec<SummaryNode>,
    /// Word → number of documents whose text contains it.
    word_docs: HashMap<String, u64>,
    /// Attribute value key (`a‖name value`) → document frequency.
    attr_value_docs: HashMap<String, u64>,
    /// Documents summarized.
    documents: u64,
}

impl PathSummary {
    /// An empty summary.
    pub fn new() -> PathSummary {
        PathSummary {
            nodes: vec![SummaryNode::default()],
            ..Default::default()
        }
    }

    /// Builds a summary over a document collection.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a Document>) -> PathSummary {
        let mut s = PathSummary::new();
        for d in docs {
            s.add_document(d);
        }
        s
    }

    /// Incorporates one document (incremental, like the index itself).
    pub fn add_document(&mut self, doc: &Document) {
        let doc_id = self.documents;
        self.documents += 1;
        let mut seen_words: HashSet<String> = HashSet::new();
        let mut seen_values: HashSet<String> = HashSet::new();
        // Map each document node to its trie node, walking top-down
        // (document order guarantees parents precede children).
        let mut trie_of: Vec<usize> = vec![0; doc.node_count()];
        for n in doc.all_nodes() {
            let parent_trie = doc.parent(n).map_or(0, |p| trie_of[p.index()]);
            match doc.kind(n) {
                NodeKind::Element | NodeKind::Attribute => {
                    let k = key::node_key(doc, n).expect("named node");
                    let idx = self.child(parent_trie, &k);
                    trie_of[n.index()] = idx;
                    self.nodes[idx].instances += 1;
                    self.nodes[idx].mark(doc_id);
                    if doc.kind(n) == NodeKind::Attribute {
                        let vk = key::attribute_value_key(
                            doc.name(n).expect("named"),
                            doc.value(n).unwrap_or_default(),
                        );
                        if seen_values.insert(vk.clone()) {
                            *self.attr_value_docs.entry(vk).or_default() += 1;
                        }
                    }
                }
                NodeKind::Text => {
                    trie_of[n.index()] = parent_trie;
                    let word_docs = &mut self.word_docs;
                    for_each_word(doc.value(n).unwrap_or_default(), |w| {
                        // Allocate only for first sightings; repeats hit
                        // the `contains` check with a borrowed word.
                        if !seen_words.contains(w) {
                            seen_words.insert(w.to_string());
                            *word_docs.entry(w.to_string()).or_default() += 1;
                        }
                    });
                }
            }
        }
    }

    fn child(&mut self, parent: usize, key: &str) -> usize {
        if let Some(&c) = self.nodes[parent].children.get(key) {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(SummaryNode::default());
        self.nodes[parent].children.insert(key.to_string(), idx);
        idx
    }

    /// Documents summarized.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// Distinct label paths in the corpus (trie size minus the root) —
    /// the DataGuide's size.
    pub fn distinct_paths(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Document frequency of one query path (`/`, `//` steps over
    /// encoded keys; word / attribute-value terminals consult the
    /// dedicated frequency maps, scaled by the structural prefix).
    pub fn path_doc_frequency(&self, qp: &QueryPath) -> u64 {
        // Split a terminal word / attribute-value step off the path.
        let (structural, terminal): (&[(Axis, String)], Option<&String>) = match qp.last() {
            Some((_, k)) if k.starts_with(key::WORD_PREFIX) => (&qp[..qp.len() - 1], Some(k)),
            Some((_, k)) if k.starts_with(key::ATTRIBUTE_PREFIX) && k.contains(' ') => {
                (&qp[..qp.len() - 1], Some(k))
            }
            _ => (qp.as_slice(), None),
        };
        let structural_df = self.structural_df(structural);
        match terminal {
            None => structural_df,
            Some(k) => {
                let value_df = if let Some(word) = k.strip_prefix(key::WORD_PREFIX) {
                    self.word_docs.get(word).copied().unwrap_or(0)
                } else {
                    self.attr_value_docs.get(k).copied().unwrap_or(0)
                };
                // Independence between the structural prefix and the value:
                // df ≈ N × P(prefix) × P(value).
                if self.documents == 0 {
                    0
                } else {
                    ((structural_df as f64 / self.documents as f64) * value_df as f64).ceil() as u64
                }
            }
        }
    }

    /// Document frequency of a structural path, by trie matching.
    fn structural_df(&self, qp: &[(Axis, String)]) -> u64 {
        if qp.is_empty() {
            return self.documents;
        }
        let mut matched: HashSet<usize> = HashSet::new();
        self.match_path(0, qp, 0, &mut matched);
        // Exact union of the matched paths' document sets.
        let mut union: Vec<u64> = Vec::new();
        for &n in &matched {
            let bits = &self.nodes[n].doc_bits;
            if union.len() < bits.len() {
                union.resize(bits.len(), 0);
            }
            for (u, b) in union.iter_mut().zip(bits) {
                *u |= b;
            }
        }
        union.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// Collects trie nodes matching the full query path starting under
    /// `trie` at query step `qi`.
    fn match_path(&self, trie: usize, qp: &[(Axis, String)], qi: usize, out: &mut HashSet<usize>) {
        if qi == qp.len() {
            out.insert(trie);
            return;
        }
        let (axis, ref k) = qp[qi];
        match axis {
            Axis::Child => {
                if let Some(&c) = self.nodes[trie].children.get(k) {
                    self.match_path(c, qp, qi + 1, out);
                }
            }
            Axis::Descendant => {
                // Any depth: DFS over the trie.
                let mut stack = vec![trie];
                while let Some(t) = stack.pop() {
                    for (ck, &c) in &self.nodes[t].children {
                        if ck == k {
                            self.match_path(c, qp, qi + 1, out);
                        }
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Estimated number of documents a LUP look-up returns for `pattern`:
    /// the per-path document frequencies combined under independence.
    /// This is an estimate of the *path-level* candidate count; the true
    /// twig count is smaller when branches rarely co-occur.
    pub fn estimate_lup_docs(&self, pattern: &TreePattern, opts: ExtractOptions) -> f64 {
        if self.documents == 0 {
            return 0.0;
        }
        let n = self.documents as f64;
        let mut p = 1.0f64;
        for qp in query_paths(pattern, opts) {
            p *= self.path_doc_frequency(&qp) as f64 / n;
        }
        n * p
    }

    /// The Section 8.5 hint: should this query use a fine-granularity
    /// (ID-based) strategy?
    ///
    /// "cases for which LUI and 2LUPI strategies behave better are those
    /// in which query tree patterns are multi-branched, highly selective
    /// and evaluated over a document set where most of the documents only
    /// match linear paths of the query."
    pub fn recommend(&self, pattern: &TreePattern, opts: ExtractOptions) -> StrategyHint {
        let paths = query_paths(pattern, opts);
        let branches = paths.len();
        let est = self.estimate_lup_docs(pattern, opts);
        let n = self.documents.max(1) as f64;
        let min_path_df = paths
            .iter()
            .map(|qp| self.path_doc_frequency(qp))
            .min()
            .unwrap_or(0) as f64;
        // Co-occurrence gap: how much smaller the independence estimate is
        // than the most selective single path — a proxy for how much twig
        // filtering (LUI) can remove beyond path filtering (LUP).
        let gap = if min_path_df > 0.0 {
            1.0 - est / min_path_df
        } else {
            0.0
        };
        let fine = branches > 1 && est / n <= 0.3 && gap > 0.3;
        StrategyHint {
            branches,
            estimated_lup_docs: est,
            estimated_selectivity: est / n,
            cooccurrence_gap: gap,
            use_fine_granularity: fine,
        }
    }
}

/// The advisor's per-query structural hint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyHint {
    /// Number of root-to-leaf query paths (branches).
    pub branches: usize,
    /// Estimated documents a path-level (LUP) look-up returns.
    pub estimated_lup_docs: f64,
    /// The estimate as a fraction of the corpus.
    pub estimated_selectivity: f64,
    /// Predicted fraction of path-level candidates that twig filtering
    /// would additionally remove (0 = none, →1 = most).
    pub cooccurrence_gap: f64,
    /// True when the Section 8.5 criteria point at LUI / 2LUPI.
    pub use_fine_granularity: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_pattern::parse_pattern;

    fn docs() -> Vec<Document> {
        vec![
            Document::parse_str(
                "a.xml",
                "<painting id=\"1\"><name>The Lion Hunt</name>\
                 <painter><name><last>Delacroix</last></name></painter></painting>",
            )
            .unwrap(),
            Document::parse_str(
                "b.xml",
                "<painting id=\"2\"><name>Olympia</name>\
                 <painter><name><last>Manet</last></name></painter></painting>",
            )
            .unwrap(),
            Document::parse_str("c.xml", "<museum><name>Louvre</name></museum>").unwrap(),
        ]
    }

    fn qp(text: &str) -> QueryPath {
        let p = parse_pattern(text).unwrap();
        query_paths(&p, ExtractOptions::default()).remove(0)
    }

    #[test]
    fn exact_path_document_frequencies() {
        let parsed = docs();
        let s = PathSummary::build(parsed.iter());
        assert_eq!(s.documents(), 3);
        assert_eq!(s.path_doc_frequency(&qp("//painting[/name]")), 2);
        assert_eq!(s.path_doc_frequency(&qp("//name")), 3);
        assert_eq!(s.path_doc_frequency(&qp("//painting[//last]")), 2);
        assert_eq!(s.path_doc_frequency(&qp("//museum[/name]")), 1);
        assert_eq!(s.path_doc_frequency(&qp("/painting[/name]")), 2);
        // Anchored at the root, museum/last matches nothing.
        assert_eq!(s.path_doc_frequency(&qp("//museum[/last]")), 0);
        assert_eq!(s.path_doc_frequency(&qp("//nonexistent")), 0);
    }

    #[test]
    fn word_and_attribute_value_frequencies() {
        let parsed = docs();
        let s = PathSummary::build(parsed.iter());
        // One document mentions "lion"; word path scales the prefix.
        let lion = s.path_doc_frequency(&qp("//painting[/name{contains(Lion)}]"));
        assert_eq!(lion, 1);
        let id1 = s.path_doc_frequency(&qp("//painting[/@id{=\"1\"}]"));
        assert_eq!(id1, 1);
    }

    #[test]
    fn dataguide_is_compact() {
        let parsed = docs();
        let s = PathSummary::build(parsed.iter());
        // Distinct paths: painting, painting/@id, painting/name,
        // painting/painter, painting/painter/name,
        // painting/painter/name/last, museum, museum/name = 8.
        assert_eq!(s.distinct_paths(), 8);
    }

    #[test]
    fn independence_estimate_upper_bounds_selective_twigs() {
        let parsed = docs();
        let s = PathSummary::build(parsed.iter());
        let p = parse_pattern("//painting[/name, //painter[/name[/last]]]").unwrap();
        let est = s.estimate_lup_docs(&p, ExtractOptions::default());
        // Both paths hold in the same 2 documents: estimate 2 × (2/3) ≈ 1.33.
        assert!(est > 1.0 && est < 2.0, "{est}");
    }

    #[test]
    fn recommend_flags_branched_selective_patterns() {
        // A corpus where name and mailbox exist in most documents but
        // rarely under the same item: the sparse-variant situation.
        let mut xml_docs = Vec::new();
        for i in 0..20 {
            let body = if i % 10 == 0 {
                // both under one item (rare)
                "<item><name>gold ring</name><mailbox><mail/></mailbox></item>".to_string()
            } else if i % 2 == 0 {
                "<item><name>gold ring</name></item><item><mailbox><mail/></mailbox></item>"
                    .to_string()
            } else {
                "<item><name>plain</name></item>".to_string()
            };
            xml_docs.push(
                Document::parse_str(format!("d{i}.xml"), &format!("<site>{body}</site>")).unwrap(),
            );
        }
        let s = PathSummary::build(xml_docs.iter());
        let branched = parse_pattern("//item[/name{contains(gold)}, /mailbox[/mail]]").unwrap();
        let hint = s.recommend(&branched, ExtractOptions::default());
        assert!(hint.branches >= 2);
        assert!(hint.use_fine_granularity, "{hint:?}");
        // A linear pattern never wants ID granularity.
        let linear = parse_pattern("//item[/name]").unwrap();
        let hint = s.recommend(&linear, ExtractOptions::default());
        assert!(!hint.use_fine_granularity, "{hint:?}");
    }

    #[test]
    fn incremental_build_matches_batch_build() {
        let parsed = docs();
        let batch = PathSummary::build(parsed.iter());
        let mut inc = PathSummary::new();
        for d in &parsed {
            inc.add_document(d);
        }
        assert_eq!(batch.documents(), inc.documents());
        assert_eq!(batch.distinct_paths(), inc.distinct_paths());
        assert_eq!(
            batch.path_doc_frequency(&qp("//painting[/name]")),
            inc.path_doc_frequency(&qp("//painting[/name]"))
        );
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = PathSummary::new();
        assert_eq!(s.documents(), 0);
        assert_eq!(s.path_doc_frequency(&qp("//a")), 0);
        let p = parse_pattern("//a[/b]").unwrap();
        assert_eq!(s.estimate_lup_docs(&p, ExtractOptions::default()), 0.0);
    }
}
