//! Binary encoding of structural-ID lists, and the string fallback for
//! backends without binary values.
//!
//! LUI / 2LUPI entries store, per (key, document), the *sorted* list of
//! `(pre, post, depth)` identifiers "compressed (encoded) … in a single
//! DynamoDB value" (paper Section 8.2). The encoding here is
//! delta-varint: `pre` is delta-encoded against the previous ID (the list
//! is sorted by `pre`), `post` and `depth` are plain varints. Sorted order
//! is preserved through encode/decode, so the holistic twig join consumes
//! look-up results without sorting (Section 5.3).
//!
//! SimpleDB cannot hold binary values, so the same bytes are base64-coded
//! and chunked into ≤ 1 KB string values — the storage and request
//! amplification the paper's Tables 7–8 measure.

use amada_xml::StructuralId;

// ---------------------------------------------------------------------------
// varint (LEB128)
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint; advances `pos`.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    // Single-byte fast path: deltas and depths are almost always < 128.
    let byte = *bytes.get(*pos)?;
    *pos += 1;
    if byte & 0x80 == 0 {
        return Some(byte as u32);
    }
    let mut v: u32 = (byte & 0x7f) as u32;
    let mut shift = 7;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        // The fifth byte may only carry the top 4 bits of a u32; anything
        // larger is malformed rather than silently truncated.
        if shift == 28 && byte & 0x70 != 0 {
            return None;
        }
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 35 {
            return None; // malformed
        }
    }
}

/// Skips one LEB128 varint, enforcing exactly the constraints of
/// [`read_varint`] (truncation, overlong and u32-overflow rejection)
/// without computing the value.
#[inline]
fn skip_varint(bytes: &[u8], pos: &mut usize) -> Option<()> {
    let byte = *bytes.get(*pos)?;
    *pos += 1;
    if byte & 0x80 == 0 {
        return Some(());
    }
    let mut shift = 7;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 28 && byte & 0x70 != 0 {
            return None;
        }
        if byte & 0x80 == 0 {
            return Some(());
        }
        shift += 7;
        if shift >= 35 {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// ID-list codec
// ---------------------------------------------------------------------------

/// Appends one ID as a (delta-pre, post, depth) varint triple.
fn write_id(prev_pre: u32, id: &StructuralId, out: &mut Vec<u8>) {
    write_varint(id.pre - prev_pre, out);
    write_varint(id.post, out);
    write_varint(id.depth, out);
}

/// Encodes a `pre`-sorted ID list. Panics in debug builds if unsorted.
pub fn encode_ids(ids: &[StructuralId]) -> Vec<u8> {
    debug_assert!(
        ids.windows(2).all(|w| w[0].pre <= w[1].pre),
        "ID list must be pre-sorted"
    );
    let mut out = Vec::with_capacity(ids.len() * 4);
    let mut prev_pre = 0u32;
    for id in ids {
        write_id(prev_pre, id, &mut out);
        prev_pre = id.pre;
    }
    out
}

/// Decodes an ID list; `None` on malformed input.
pub fn decode_ids(bytes: &[u8]) -> Option<Vec<StructuralId>> {
    let mut ids = Vec::new();
    let mut pos = 0;
    let mut prev_pre = 0u32;
    while pos < bytes.len() {
        let dpre = read_varint(bytes, &mut pos)?;
        let post = read_varint(bytes, &mut pos)?;
        let depth = read_varint(bytes, &mut pos)?;
        prev_pre += dpre;
        ids.push(StructuralId::new(prev_pre, post, depth));
    }
    Some(ids)
}

/// Splits a `pre`-sorted ID list into chunks whose *encoded* size does not
/// exceed `max_bytes`, preserving order. Each chunk re-anchors its delta
/// encoding, so chunks decode independently.
pub fn encode_ids_chunked(ids: &[StructuralId], max_bytes: usize) -> Vec<Vec<u8>> {
    assert!(max_bytes >= 15, "chunk limit must fit at least one ID");
    let mut chunks = Vec::new();
    let mut current: Vec<u8> = Vec::new();
    let mut prev_pre = 0u32;
    for id in ids {
        let mut enc = Vec::with_capacity(15);
        write_id(prev_pre, id, &mut enc);
        if current.len() + enc.len() > max_bytes && !current.is_empty() {
            chunks.push(std::mem::take(&mut current));
            // Re-anchor the delta for a self-contained chunk.
            enc.clear();
            write_id(0, id, &mut enc);
        }
        current.extend_from_slice(&enc);
        prev_pre = id.pre;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

// ---------------------------------------------------------------------------
// Block format
// ---------------------------------------------------------------------------
//
// Long ID lists decoded end-to-end dominate LUI / 2LUPI lookup time, yet a
// twig join only ever inspects the sub-ranges of each list that can
// structurally intersect the other streams. The block layer splits a list
// into fixed-size runs of [`BLOCK_IDS`] identifiers and keeps, per block, a
// `max_pre` skip pointer plus the byte range of its varint body. A lazy
// cursor then *gallops* across block headers and decodes only the blocks a
// join actually lands in.
//
// Two representations share this metadata:
//
// * [`BlockList`] — in-memory: built by skip-scanning the flat wire bytes
//   fetched from a store (no stored-format change; stored bytes still drive
//   per-item billing and must stay byte-identical).
// * `encode_ids_blocked` / `decode_ids_blocked` — an *explicit* serialized
//   format (`[version][count][headers…][flat body]`) whose body is
//   byte-identical to [`encode_ids`] output, for stores or caches that want
//   the skip pointers persisted.

/// Number of IDs per block. 128 keeps a block's decoded form (1.5 KiB)
/// well inside L1 while making header overhead (~2–6 bytes per block)
/// negligible next to the ~3-byte-per-ID body.
pub const BLOCK_IDS: usize = 128;

/// Version byte prefixed to the serialized blocked format.
pub const BLOCKED_FORMAT_VERSION: u8 = 0x01;

/// Per-block metadata: delta anchor, skip pointer, and body byte range.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// `pre` of the last ID before this block; the first ID's delta is
    /// relative to it. 0 at every chunk boundary (chunks re-anchor).
    anchor_pre: u32,
    /// Largest `pre` in the block (the list is pre-sorted, so this is the
    /// last ID's `pre`). The skip pointer: a probe for `pre >= p` can
    /// bypass every block with `max_pre < p` without decoding it.
    max_pre: u32,
    /// Byte range of the block body within `BlockList::body`.
    start: u32,
    end: u32,
    /// Number of IDs in the block (≤ `BLOCK_IDS`).
    count: u32,
}

/// A block-structured view of one `pre`-sorted ID list.
///
/// Holds the raw varint body plus per-block skip metadata; decoding is
/// deferred to [`BlockCursor`], which touches only the blocks a lookup
/// intersects.
#[derive(Debug, Clone, Default)]
pub struct BlockList {
    body: Vec<u8>,
    blocks: Vec<BlockMeta>,
    len: usize,
}

impl BlockList {
    /// Builds a block list from one flat [`encode_ids`] buffer.
    /// `None` on malformed input (same rejection rules as [`decode_ids`]).
    pub fn from_flat(bytes: &[u8]) -> Option<BlockList> {
        let mut list = BlockList::default();
        list.append_chunk(bytes)?;
        Some(list)
    }

    /// Builds a block list from the self-anchored chunks produced by
    /// [`encode_ids_chunked`] (each chunk restarts its delta from 0, so a
    /// block boundary is forced at every chunk boundary). Malformed chunks
    /// are skipped, mirroring the per-chunk tolerance of the flat decode
    /// path in the store layer.
    pub fn from_chunks<'a>(chunks: impl IntoIterator<Item = &'a [u8]>) -> BlockList {
        let mut list = BlockList::default();
        for chunk in chunks {
            let (body_len, blocks_len, ids_len) = (list.body.len(), list.blocks.len(), list.len);
            if list.append_chunk(chunk).is_none() {
                list.body.truncate(body_len);
                list.blocks.truncate(blocks_len);
                list.len = ids_len;
            }
        }
        list
    }

    /// Builds a block list from the serialized blocked format, using the
    /// persisted headers for block boundaries (no delta re-scan; the body
    /// is still validated varint-by-varint so cursors can decode
    /// infallibly). `None` on malformed input.
    pub fn from_blocked(bytes: &[u8]) -> Option<BlockList> {
        let (count, headers, body_start) = parse_blocked_headers(bytes)?;
        let body = &bytes[body_start..];
        let mut list = BlockList {
            body: body.to_vec(),
            blocks: Vec::with_capacity(headers.len()),
            len: count as usize,
        };
        let mut remaining = count;
        let mut anchor = 0u32;
        let mut start = 0usize;
        for (max_pre, body_len) in headers {
            let end = start.checked_add(body_len as usize)?;
            if end > body.len() {
                return None;
            }
            let block_ids = remaining.min(BLOCK_IDS as u32);
            // Validate the body bytes and the header's skip pointer.
            let mut pos = start;
            let mut prev_pre = anchor;
            for _ in 0..block_ids {
                let dpre = read_varint(body, &mut pos)?;
                skip_varint(body, &mut pos)?;
                skip_varint(body, &mut pos)?;
                prev_pre = prev_pre.checked_add(dpre)?;
            }
            if pos != end || prev_pre != max_pre {
                return None;
            }
            list.blocks.push(BlockMeta {
                anchor_pre: anchor,
                max_pre,
                start: start as u32,
                end: end as u32,
                count: block_ids,
            });
            remaining -= block_ids;
            anchor = max_pre;
            start = end;
        }
        if remaining != 0 || start != body.len() {
            return None;
        }
        Some(list)
    }

    /// Total number of IDs across all blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the list holds no IDs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fully decodes the list (block order = `pre` order).
    pub fn decode_all(&self) -> Vec<StructuralId> {
        let mut ids = Vec::with_capacity(self.len);
        for meta in &self.blocks {
            decode_block(&self.body, meta, &mut ids);
        }
        ids
    }

    /// A lazy cursor positioned at the first ID.
    pub fn cursor(&self) -> BlockCursor<'_> {
        let mut cur = BlockCursor {
            list: self,
            block: 0,
            buf: Vec::new(),
            pos: 0,
        };
        cur.load_block();
        cur
    }

    /// Scans one self-anchored chunk, appending its bytes and block
    /// metadata. `None` (with partial state; caller rolls back) on
    /// malformed input.
    fn append_chunk(&mut self, bytes: &[u8]) -> Option<()> {
        let base = self.body.len();
        self.body.extend_from_slice(bytes);
        let mut pos = 0usize;
        let mut prev_pre = 0u32;
        while pos < bytes.len() {
            let start = pos;
            let anchor = prev_pre;
            let mut count = 0u32;
            while pos < bytes.len() && (count as usize) < BLOCK_IDS {
                let dpre = read_varint(bytes, &mut pos)?;
                skip_varint(bytes, &mut pos)?;
                skip_varint(bytes, &mut pos)?;
                prev_pre = prev_pre.checked_add(dpre)?;
                count += 1;
            }
            self.blocks.push(BlockMeta {
                anchor_pre: anchor,
                max_pre: prev_pre,
                start: (base + start) as u32,
                end: (base + pos) as u32,
                count,
            });
            self.len += count as usize;
        }
        Some(())
    }
}

/// Decodes one block body into `out`. The body was validated at
/// construction time, so decoding cannot fail.
fn decode_block(body: &[u8], meta: &BlockMeta, out: &mut Vec<StructuralId>) {
    let bytes = &body[meta.start as usize..meta.end as usize];
    let mut pos = 0usize;
    let mut prev_pre = meta.anchor_pre;
    for _ in 0..meta.count {
        let dpre = read_varint(bytes, &mut pos).expect("block body validated at construction");
        let post = read_varint(bytes, &mut pos).expect("block body validated at construction");
        let depth = read_varint(bytes, &mut pos).expect("block body validated at construction");
        prev_pre += dpre;
        out.push(StructuralId::new(prev_pre, post, depth));
    }
}

/// A lazy, forward-only cursor over a [`BlockList`].
///
/// Only the block under the cursor is ever decoded (into a reusable
/// buffer); `skip_to_pre` gallops over block headers via `max_pre`, so a
/// selective probe touches `O(log n)` headers and decodes a single block.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Current block index; `list.blocks.len()` once exhausted.
    block: usize,
    /// Decoded IDs of the current block.
    buf: Vec<StructuralId>,
    /// Position within `buf`.
    pos: usize,
}

impl BlockCursor<'_> {
    /// The ID under the cursor, or `None` when exhausted.
    #[inline]
    pub fn peek(&self) -> Option<StructuralId> {
        self.buf.get(self.pos).copied()
    }

    /// Moves past the current ID.
    pub fn advance(&mut self) {
        self.pos += 1;
        if self.pos >= self.buf.len() {
            self.block += 1;
            self.load_block();
        }
    }

    /// Positions the cursor at the first remaining ID with `pre >=
    /// min_pre`, galloping over whole blocks via their `max_pre` skip
    /// pointers. Never moves backwards.
    pub fn skip_to_pre(&mut self, min_pre: u32) {
        let Some(cur) = self.buf.get(self.pos) else {
            return; // exhausted
        };
        if cur.pre >= min_pre {
            return;
        }
        if self.list.blocks[self.block].max_pre >= min_pre {
            // Target is inside the already-decoded block: binary search.
            self.pos += self.buf[self.pos..].partition_point(|id| id.pre < min_pre);
            return;
        }
        // Gallop over the block headers after the current block.
        let rest = &self.list.blocks[self.block + 1..];
        let mut probe = 1usize;
        while probe < rest.len() && rest[probe].max_pre < min_pre {
            probe *= 2;
        }
        let lo = probe / 2;
        let hi = probe.min(rest.len());
        let off = lo + rest[lo..hi].partition_point(|m| m.max_pre < min_pre);
        self.block += 1 + off;
        self.load_block();
        if !self.buf.is_empty() {
            self.pos = self.buf.partition_point(|id| id.pre < min_pre);
        }
    }

    /// Exhausts the cursor.
    pub fn skip_to_end(&mut self) {
        self.block = self.list.blocks.len();
        self.buf.clear();
        self.pos = 0;
    }

    /// Rewinds to the first ID.
    pub fn reset(&mut self) {
        self.block = 0;
        self.load_block();
    }

    /// Decodes the block at `self.block` into `buf` (empty if exhausted).
    fn load_block(&mut self) {
        self.buf.clear();
        self.pos = 0;
        if let Some(meta) = self.list.blocks.get(self.block) {
            decode_block(&self.list.body, meta, &mut self.buf);
        }
    }
}

impl amada_pattern::TwigStream<()> for BlockCursor<'_> {
    #[inline]
    fn peek(&self) -> Option<(StructuralId, ())> {
        BlockCursor::peek(self).map(|id| (id, ()))
    }

    fn advance(&mut self) {
        BlockCursor::advance(self);
    }

    fn skip_to_pre(&mut self, min_pre: u32) {
        BlockCursor::skip_to_pre(self, min_pre);
    }

    fn skip_to_end(&mut self) {
        BlockCursor::skip_to_end(self);
    }

    fn reset(&mut self) {
        BlockCursor::reset(self);
    }
}

// ---------------------------------------------------------------------------
// Serialized blocked format
// ---------------------------------------------------------------------------

/// Encodes a `pre`-sorted ID list in the blocked format:
///
/// ```text
/// [0x01][count varint][(Δmax_pre varint, body_len varint) × ⌈count/128⌉][flat body]
/// ```
///
/// The body is byte-identical to [`encode_ids`] output; the headers add
/// `max_pre` skip pointers (delta-coded across blocks) and per-block byte
/// offsets, so a reader can seek without scanning.
pub fn encode_ids_blocked(ids: &[StructuralId]) -> Vec<u8> {
    let body = encode_ids(ids);
    let mut out = Vec::with_capacity(body.len() + ids.len().div_ceil(BLOCK_IDS) * 6 + 8);
    out.push(BLOCKED_FORMAT_VERSION);
    write_varint(ids.len() as u32, &mut out);
    // Per-block headers: walk the body to find each block's byte length.
    let mut pos = 0usize;
    let mut prev_max = 0u32;
    for chunk in ids.chunks(BLOCK_IDS) {
        let start = pos;
        for _ in 0..chunk.len() * 3 {
            skip_varint(&body, &mut pos).expect("encode_ids output is well-formed");
        }
        let max_pre = chunk.last().expect("chunks are non-empty").pre;
        write_varint(max_pre - prev_max, &mut out);
        write_varint((pos - start) as u32, &mut out);
        prev_max = max_pre;
    }
    out.extend_from_slice(&body);
    out
}

/// Decodes the blocked format, validating the version byte, every block
/// header against the body, and overall length; `None` on any mismatch.
/// Yields the same ID list as [`decode_ids`] on the flat body.
pub fn decode_ids_blocked(bytes: &[u8]) -> Option<Vec<StructuralId>> {
    BlockList::from_blocked(bytes).map(|list| list.decode_all())
}

/// Parsed blocked-format prefix: (ID count, per-block `(max_pre,
/// body_len)` pairs, body start offset).
type BlockedHeaders = (u32, Vec<(u32, u32)>, usize);

/// Parses the blocked-format prefix.
fn parse_blocked_headers(bytes: &[u8]) -> Option<BlockedHeaders> {
    if bytes.first() != Some(&BLOCKED_FORMAT_VERSION) {
        return None;
    }
    let mut pos = 1usize;
    let count = read_varint(bytes, &mut pos)?;
    let num_blocks = (count as usize).div_ceil(BLOCK_IDS);
    let mut headers = Vec::with_capacity(num_blocks);
    let mut max_pre = 0u32;
    for _ in 0..num_blocks {
        let d_max = read_varint(bytes, &mut pos)?;
        let body_len = read_varint(bytes, &mut pos)?;
        max_pre = max_pre.checked_add(d_max)?;
        headers.push((max_pre, body_len));
    }
    Some((count, headers, pos))
}

// ---------------------------------------------------------------------------
// base64 (for string-only backends)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 without padding-stripping (RFC 4648).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes base64; `None` on malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' && i >= 4 - pad {
                0
            } else {
                val(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[(u32, u32, u32)]) -> Vec<StructuralId> {
        raw.iter()
            .map(|&(p, q, d)| StructuralId::new(p, q, d))
            .collect()
    }

    #[test]
    fn ids_round_trip() {
        let list = ids(&[(1, 10, 1), (3, 3, 2), (6, 8, 3), (1000, 999, 17)]);
        let enc = encode_ids(&list);
        assert_eq!(decode_ids(&enc).unwrap(), list);
    }

    #[test]
    fn empty_list() {
        assert!(encode_ids(&[]).is_empty());
        assert_eq!(decode_ids(&[]).unwrap(), vec![]);
    }

    #[test]
    fn encoding_is_compact() {
        // Sequential IDs with small deltas: ≈3 bytes each vs 12 raw.
        let list: Vec<StructuralId> = (1..=1000).map(|i| StructuralId::new(i, i, 3)).collect();
        let enc = encode_ids(&list);
        assert!(enc.len() < 4500, "encoded {} bytes", enc.len());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decode_ids(&[0x80]).is_none()); // truncated varint
        assert!(decode_ids(&[0x01]).is_none()); // missing post/depth
        assert!(decode_ids(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff]).is_none()); // overlong
                                                                              // A 5-byte varint whose top bits exceed u32 must be rejected, not
                                                                              // silently truncated.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x1f], &mut pos), None);
        pos = 0;
        assert_eq!(
            read_varint(&[0xff, 0xff, 0xff, 0xff, 0x0f], &mut pos),
            Some(u32::MAX)
        );
    }

    #[test]
    fn chunked_encoding_decodes_to_same_list() {
        let list: Vec<StructuralId> = (1..=500)
            .map(|i| StructuralId::new(i * 3, i * 2, (i % 9) + 1))
            .collect();
        let chunks = encode_ids_chunked(&list, 64);
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= 64));
        let decoded: Vec<StructuralId> =
            chunks.iter().flat_map(|c| decode_ids(c).unwrap()).collect();
        assert_eq!(decoded, list);
    }

    #[test]
    fn chunks_preserve_global_sort_order() {
        let list: Vec<StructuralId> = (1..=300).map(|i| StructuralId::new(i * 7, i, 2)).collect();
        let chunks = encode_ids_chunked(&list, 32);
        let decoded: Vec<StructuralId> =
            chunks.iter().flat_map(|c| decode_ids(c).unwrap()).collect();
        assert!(decoded.windows(2).all(|w| w[0].pre < w[1].pre));
    }

    #[test]
    fn base64_round_trip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            let enc = base64_encode(data);
            assert_eq!(base64_decode(&enc).unwrap(), data);
        }
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("a").is_none());
        assert!(base64_decode("!!!!").is_none());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn skip_varint_matches_read_varint() {
        // skip must accept/reject and advance exactly like read.
        let cases: &[&[u8]] = &[
            &[0x00],
            &[0x7f],
            &[0xff, 0x01],
            &[0xff, 0xff, 0xff, 0xff, 0x0f],
            &[0xff, 0xff, 0xff, 0xff, 0x1f],       // overflow: reject
            &[0xff, 0xff, 0xff, 0xff, 0xff, 0x01], // overlong: reject
            &[0x80],                               // truncated: reject
        ];
        for bytes in cases {
            let (mut p1, mut p2) = (0usize, 0usize);
            let read = read_varint(bytes, &mut p1);
            let skip = skip_varint(bytes, &mut p2);
            assert_eq!(read.is_some(), skip.is_some(), "{bytes:?}");
            if read.is_some() {
                assert_eq!(p1, p2, "{bytes:?}");
            }
        }
    }

    #[test]
    fn blocked_round_trip_matches_flat() {
        for n in [0usize, 1, 2, 127, 128, 129, 500, 1000] {
            let list: Vec<StructuralId> = (0..n as u32)
                .map(|i| StructuralId::new(i * 3 + 1, i * 2 + 1, (i % 9) + 1))
                .collect();
            let blocked = encode_ids_blocked(&list);
            assert_eq!(decode_ids_blocked(&blocked).unwrap(), list, "n={n}");
            // The body after the headers is byte-identical to the flat
            // encoding, preserving the sorted-order contract.
            let flat = encode_ids(&list);
            assert!(blocked.ends_with(&flat), "n={n}");
        }
    }

    #[test]
    fn blocked_rejects_malformed() {
        let list: Vec<StructuralId> = (1..=300).map(|i| StructuralId::new(i, i, 2)).collect();
        let good = encode_ids_blocked(&list);
        assert!(decode_ids_blocked(&good).is_some());
        assert!(decode_ids_blocked(&[]).is_none());
        assert!(decode_ids_blocked(&[0x02]).is_none()); // wrong version
        assert!(decode_ids_blocked(&good[..good.len() - 1]).is_none()); // truncated
        let mut extra = good.clone();
        extra.push(0x00); // trailing junk
        assert!(decode_ids_blocked(&extra).is_none());
        // Corrupt a skip pointer: header no longer matches the body.
        let mut bad = good.clone();
        bad[2] ^= 0x01;
        assert!(decode_ids_blocked(&bad).is_none());
    }

    #[test]
    fn block_list_from_flat_matches_decode_ids() {
        let list: Vec<StructuralId> = (0..777u32)
            .map(|i| StructuralId::new(i * 5 + 1, i + 1, (i % 6) + 1))
            .collect();
        let flat = encode_ids(&list);
        let bl = BlockList::from_flat(&flat).unwrap();
        assert_eq!(bl.len(), list.len());
        assert_eq!(bl.decode_all(), decode_ids(&flat).unwrap());
        assert!(BlockList::from_flat(&[0x80]).is_none());
    }

    #[test]
    fn block_list_from_chunks_skips_malformed_chunks() {
        let list: Vec<StructuralId> = (1..=400).map(|i| StructuralId::new(i * 2, i, 3)).collect();
        let chunks = encode_ids_chunked(&list, 64);
        let bl = BlockList::from_chunks(chunks.iter().map(Vec::as_slice));
        assert_eq!(bl.decode_all(), list);
        // A malformed chunk is dropped; the rest survive (chunks are
        // self-anchored), mirroring the flat per-chunk decode path.
        let mut mixed: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let junk: &[u8] = &[0x80];
        mixed.insert(1, junk);
        let bl = BlockList::from_chunks(mixed);
        assert_eq!(bl.decode_all(), list);
    }

    #[test]
    fn cursor_walk_and_skip() {
        let list: Vec<StructuralId> = (0..1000u32)
            .map(|i| StructuralId::new(i * 7 + 3, i + 1, 4))
            .collect();
        let bl = BlockList::from_flat(&encode_ids(&list)).unwrap();
        // Full walk equals the list.
        let mut cur = bl.cursor();
        let mut walked = Vec::new();
        while let Some(id) = cur.peek() {
            walked.push(id);
            cur.advance();
        }
        assert_eq!(walked, list);
        // Skips land on the first ID with pre >= target, monotonically.
        let mut cur = bl.cursor();
        for target in [0u32, 3, 4, 700, 701, 3500, 6996, 6997, 10_000] {
            cur.skip_to_pre(target);
            let expect = list.iter().find(|id| id.pre >= target).copied();
            assert_eq!(cur.peek(), expect, "target {target}");
        }
        cur.reset();
        assert_eq!(cur.peek(), Some(list[0]));
        cur.skip_to_end();
        assert_eq!(cur.peek(), None);
    }

    /// Seeded property test: adversarial lists round-trip identically
    /// through the flat codec, the blocked codec, and every [`BlockList`]
    /// construction path, and cursors agree with a reference scan.
    #[test]
    fn block_codec_property_equivalence() {
        use amada_rng::StdRng;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(0xB10C + seed);
            let list = random_adversarial_list(&mut rng);
            let flat = encode_ids(&list);
            assert_eq!(decode_ids(&flat).unwrap(), list, "seed {seed}");
            let blocked = encode_ids_blocked(&list);
            assert_eq!(decode_ids_blocked(&blocked).unwrap(), list, "seed {seed}");
            let from_flat = BlockList::from_flat(&flat).unwrap();
            assert_eq!(from_flat.decode_all(), list, "seed {seed}");
            assert_eq!(from_flat.len(), list.len(), "seed {seed}");
            let from_blocked = BlockList::from_blocked(&blocked).unwrap();
            assert_eq!(from_blocked.decode_all(), list, "seed {seed}");
            let chunks = encode_ids_chunked(&list, rng.gen_range(15..200usize));
            let from_chunks = BlockList::from_chunks(chunks.iter().map(Vec::as_slice));
            assert_eq!(from_chunks.decode_all(), list, "seed {seed}");
            // Random monotone skip/advance sequence vs a reference scan
            // over the plain list, on each construction path.
            for bl in [&from_flat, &from_blocked, &from_chunks] {
                let mut cur = bl.cursor();
                let mut ref_pos = 0usize;
                let mut target = 0u32;
                for _ in 0..60 {
                    if rng.gen_bool(0.5) {
                        target = target.saturating_add(rng.gen_range(0..1200u32));
                        cur.skip_to_pre(target);
                        while ref_pos < list.len() && list[ref_pos].pre < target {
                            ref_pos += 1;
                        }
                    } else if ref_pos < list.len() {
                        cur.advance();
                        ref_pos += 1;
                    }
                    assert_eq!(cur.peek(), list.get(ref_pos).copied(), "seed {seed}");
                }
            }
        }
    }

    fn random_adversarial_list(rng: &mut amada_rng::StdRng) -> Vec<StructuralId> {
        let shape = rng.gen_range(0..6u32);
        let n: usize = match shape {
            0 => 0,
            1 => 1,
            _ => rng.gen_range(2..900usize),
        };
        let mut pre = 0u32;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            // dense (delta 1), clustered, or sparse jumps — plus repeated
            // pre (the same node feeding several query levels is legal).
            let delta = match shape {
                2 => 1,
                3 => rng.gen_range(0..3u32),
                _ => rng.gen_range(1..50_000u32),
            };
            pre = pre.saturating_add(delta.max(if pre == 0 { 1 } else { 0 }));
            list.push(StructuralId::new(
                pre,
                rng.gen_range(0..u32::MAX),
                rng.gen_range(1..64u32),
            ));
        }
        if shape == 5 && !list.is_empty() {
            // Pin the tail at the extreme: max-u32 pre.
            list.last_mut().unwrap().pre = u32::MAX;
        }
        list
    }
}
