//! Binary encoding of structural-ID lists, and the string fallback for
//! backends without binary values.
//!
//! LUI / 2LUPI entries store, per (key, document), the *sorted* list of
//! `(pre, post, depth)` identifiers "compressed (encoded) … in a single
//! DynamoDB value" (paper Section 8.2). The encoding here is
//! delta-varint: `pre` is delta-encoded against the previous ID (the list
//! is sorted by `pre`), `post` and `depth` are plain varints. Sorted order
//! is preserved through encode/decode, so the holistic twig join consumes
//! look-up results without sorting (Section 5.3).
//!
//! SimpleDB cannot hold binary values, so the same bytes are base64-coded
//! and chunked into ≤ 1 KB string values — the storage and request
//! amplification the paper's Tables 7–8 measure.

use amada_xml::StructuralId;

// ---------------------------------------------------------------------------
// varint (LEB128)
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint; advances `pos`.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        // The fifth byte may only carry the top 4 bits of a u32; anything
        // larger is malformed rather than silently truncated.
        if shift == 28 && byte & 0x70 != 0 {
            return None;
        }
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 35 {
            return None; // malformed
        }
    }
}

// ---------------------------------------------------------------------------
// ID-list codec
// ---------------------------------------------------------------------------

/// Appends one ID as a (delta-pre, post, depth) varint triple.
fn write_id(prev_pre: u32, id: &StructuralId, out: &mut Vec<u8>) {
    write_varint(id.pre - prev_pre, out);
    write_varint(id.post, out);
    write_varint(id.depth, out);
}

/// Encodes a `pre`-sorted ID list. Panics in debug builds if unsorted.
pub fn encode_ids(ids: &[StructuralId]) -> Vec<u8> {
    debug_assert!(
        ids.windows(2).all(|w| w[0].pre <= w[1].pre),
        "ID list must be pre-sorted"
    );
    let mut out = Vec::with_capacity(ids.len() * 4);
    let mut prev_pre = 0u32;
    for id in ids {
        write_id(prev_pre, id, &mut out);
        prev_pre = id.pre;
    }
    out
}

/// Decodes an ID list; `None` on malformed input.
pub fn decode_ids(bytes: &[u8]) -> Option<Vec<StructuralId>> {
    let mut ids = Vec::new();
    let mut pos = 0;
    let mut prev_pre = 0u32;
    while pos < bytes.len() {
        let dpre = read_varint(bytes, &mut pos)?;
        let post = read_varint(bytes, &mut pos)?;
        let depth = read_varint(bytes, &mut pos)?;
        prev_pre += dpre;
        ids.push(StructuralId::new(prev_pre, post, depth));
    }
    Some(ids)
}

/// Splits a `pre`-sorted ID list into chunks whose *encoded* size does not
/// exceed `max_bytes`, preserving order. Each chunk re-anchors its delta
/// encoding, so chunks decode independently.
pub fn encode_ids_chunked(ids: &[StructuralId], max_bytes: usize) -> Vec<Vec<u8>> {
    assert!(max_bytes >= 15, "chunk limit must fit at least one ID");
    let mut chunks = Vec::new();
    let mut current: Vec<u8> = Vec::new();
    let mut prev_pre = 0u32;
    for id in ids {
        let mut enc = Vec::with_capacity(15);
        write_id(prev_pre, id, &mut enc);
        if current.len() + enc.len() > max_bytes && !current.is_empty() {
            chunks.push(std::mem::take(&mut current));
            // Re-anchor the delta for a self-contained chunk.
            enc.clear();
            write_id(0, id, &mut enc);
        }
        current.extend_from_slice(&enc);
        prev_pre = id.pre;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

// ---------------------------------------------------------------------------
// base64 (for string-only backends)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 without padding-stripping (RFC 4648).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes base64; `None` on malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' && i >= 4 - pad {
                0
            } else {
                val(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[(u32, u32, u32)]) -> Vec<StructuralId> {
        raw.iter()
            .map(|&(p, q, d)| StructuralId::new(p, q, d))
            .collect()
    }

    #[test]
    fn ids_round_trip() {
        let list = ids(&[(1, 10, 1), (3, 3, 2), (6, 8, 3), (1000, 999, 17)]);
        let enc = encode_ids(&list);
        assert_eq!(decode_ids(&enc).unwrap(), list);
    }

    #[test]
    fn empty_list() {
        assert!(encode_ids(&[]).is_empty());
        assert_eq!(decode_ids(&[]).unwrap(), vec![]);
    }

    #[test]
    fn encoding_is_compact() {
        // Sequential IDs with small deltas: ≈3 bytes each vs 12 raw.
        let list: Vec<StructuralId> = (1..=1000).map(|i| StructuralId::new(i, i, 3)).collect();
        let enc = encode_ids(&list);
        assert!(enc.len() < 4500, "encoded {} bytes", enc.len());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decode_ids(&[0x80]).is_none()); // truncated varint
        assert!(decode_ids(&[0x01]).is_none()); // missing post/depth
        assert!(decode_ids(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff]).is_none()); // overlong
                                                                              // A 5-byte varint whose top bits exceed u32 must be rejected, not
                                                                              // silently truncated.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x1f], &mut pos), None);
        pos = 0;
        assert_eq!(
            read_varint(&[0xff, 0xff, 0xff, 0xff, 0x0f], &mut pos),
            Some(u32::MAX)
        );
    }

    #[test]
    fn chunked_encoding_decodes_to_same_list() {
        let list: Vec<StructuralId> = (1..=500)
            .map(|i| StructuralId::new(i * 3, i * 2, (i % 9) + 1))
            .collect();
        let chunks = encode_ids_chunked(&list, 64);
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= 64));
        let decoded: Vec<StructuralId> =
            chunks.iter().flat_map(|c| decode_ids(c).unwrap()).collect();
        assert_eq!(decoded, list);
    }

    #[test]
    fn chunks_preserve_global_sort_order() {
        let list: Vec<StructuralId> = (1..=300).map(|i| StructuralId::new(i * 7, i, 2)).collect();
        let chunks = encode_ids_chunked(&list, 32);
        let decoded: Vec<StructuralId> =
            chunks.iter().flat_map(|c| decode_ids(c).unwrap()).collect();
        assert!(decoded.windows(2).all(|w| w[0].pre < w[1].pre));
    }

    #[test]
    fn base64_round_trip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            let enc = base64_encode(data);
            assert_eq!(base64_decode(&enc).unwrap(), data);
        }
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("a").is_none());
        assert!(base64_decode("!!!!").is_none());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }
}
