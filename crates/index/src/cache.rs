//! Thread-safe host-side cache of parsed documents and extraction
//! results.
//!
//! The discrete-event simulation charges *virtual* time for every parse
//! and extraction a cloud instance performs — instances are stateless
//! across tasks, exactly as in the paper. The *host* running the
//! simulation, however, sees the same document parsed and extracted once
//! per strategy, per experiment, per repetition; this cache spares that
//! redundant wall-clock work without touching a single virtual-time
//! charge.
//!
//! Design:
//!
//! * **Sharded.** `SHARDS` independent `Mutex<HashMap>` shards keyed by a
//!   hash of the URI, so the parallel prewarm stage
//!   ([`crate::parallel::prewarm`]) and any future concurrent consumers
//!   do not serialize on one lock.
//! * **Two-level memoization.** Each document entry holds the parsed
//!   [`Document`] *and* the extraction output per `(Strategy,
//!   ExtractOptions)` — a loader core's entire CPU-heavy step becomes two
//!   map probes.
//! * **Hash once per upload.** Validating a cached parse against the
//!   stored bytes used to re-FNV the full document on every loader step.
//!   [`ExtractCache::note_upload`] computes the content hash once, when
//!   the warehouse stores the object; later probes compare the cached
//!   entry's hash against that *expected* hash without touching the
//!   bytes. Callers that bypass the upload path still get the hashing
//!   fallback.

use crate::strategy::{extract, ExtractOptions, IndexEntry, Strategy};
use amada_xml::Document;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count. A small power of two: the prewarm stage runs one task per
/// document across `num_cpus` threads, so a few dozen shards keep
/// contention negligible.
const SHARDS: usize = 32;

/// FNV-1a over the document bytes — cheap, deterministic cache
/// validation.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over the URI, used only to pick a shard.
fn shard_of(uri: &str) -> usize {
    (content_hash(uri.as_bytes()) as usize) % SHARDS
}

/// One cached document: the content hash it was parsed from, the parsed
/// tree, and the memoized extraction per strategy/options.
struct DocEntry {
    hash: u64,
    doc: Arc<Document>,
    extracts: HashMap<(Strategy, ExtractOptions), Arc<Vec<IndexEntry>>>,
}

#[derive(Default)]
struct Shard {
    /// URI → cached parse + extractions.
    docs: HashMap<String, DocEntry>,
    /// URI → content hash of the *currently stored* object, recorded at
    /// upload time so probes need not rehash the bytes.
    expected: HashMap<String, u64>,
}

/// Cumulative cache statistics (monotonic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache without parsing.
    pub parse_hits: u64,
    /// Probes that had to parse.
    pub parse_misses: u64,
    /// Extraction probes answered from the memo.
    pub extract_hits: u64,
    /// Extraction probes that had to run the extractor.
    pub extract_misses: u64,
}

impl CacheStats {
    /// Hit fraction over all probes, `None` before the first probe.
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.parse_hits + self.extract_hits;
        let total = hits + self.parse_misses + self.extract_misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

/// Process-wide counters aggregated across every cache instance, so a
/// harness (e.g. the `repro` binary) can report an overall hit rate
/// without threading handles through each experiment.
static GLOBAL: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Snapshot of the process-wide counters (all caches since start-up).
pub fn global_stats() -> CacheStats {
    CacheStats {
        parse_hits: GLOBAL[0].load(Ordering::Relaxed),
        parse_misses: GLOBAL[1].load(Ordering::Relaxed),
        extract_hits: GLOBAL[2].load(Ordering::Relaxed),
        extract_misses: GLOBAL[3].load(Ordering::Relaxed),
    }
}

/// A sharded, `Send + Sync` cache of parsed documents and their
/// extraction results. Cheap to clone the handle via [`Arc`].
pub struct ExtractCache {
    shards: Box<[Mutex<Shard>; SHARDS]>,
    stats: [AtomicU64; 4],
}

impl Default for ExtractCache {
    fn default() -> Self {
        ExtractCache {
            shards: Box::new(std::array::from_fn(|_| Mutex::new(Shard::default()))),
            stats: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for ExtractCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl ExtractCache {
    /// The process-wide cache every [`shared`](Self::shared) caller gets a
    /// handle to.
    fn process_cache() -> &'static Arc<ExtractCache> {
        static PROCESS: std::sync::OnceLock<Arc<ExtractCache>> = std::sync::OnceLock::new();
        PROCESS.get_or_init(|| Arc::new(ExtractCache::default()))
    }

    /// A handle to the **process-wide** cache. Every warehouse in the
    /// process shares it, so a harness that builds many warehouses over
    /// the same corpus (e.g. `repro table4`, one warehouse per strategy)
    /// parses each document once and extracts once per `(strategy, opts)`
    /// — not once per warehouse. Safe because entries are validated by
    /// content hash on every probe: a URI re-uploaded with different
    /// bytes simply misses and replaces the stale entry. Tests that need
    /// isolated statistics use [`ExtractCache::default`] directly.
    pub fn shared() -> Arc<ExtractCache> {
        Arc::clone(Self::process_cache())
    }

    fn bump(&self, i: usize) {
        self.stats[i].fetch_add(1, Ordering::Relaxed);
        GLOBAL[i].fetch_add(1, Ordering::Relaxed);
    }

    /// This cache's statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            parse_hits: self.stats[0].load(Ordering::Relaxed),
            parse_misses: self.stats[1].load(Ordering::Relaxed),
            extract_hits: self.stats[2].load(Ordering::Relaxed),
            extract_misses: self.stats[3].load(Ordering::Relaxed),
        }
    }

    /// Records that `bytes` are now the stored content of `uri`, hashing
    /// them exactly once. A stale cached parse (from a replaced object
    /// under the same URI) is dropped here rather than lingering until the
    /// next probe. Returns the content hash.
    pub fn note_upload(&self, uri: &str, bytes: &[u8]) -> u64 {
        let hash = content_hash(bytes);
        let mut shard = self.shards[shard_of(uri)].lock().unwrap();
        if shard.docs.get(uri).is_some_and(|e| e.hash != hash) {
            shard.docs.remove(uri);
        }
        shard.expected.insert(uri.to_string(), hash);
        hash
    }

    /// The expected content hash of `uri`: the one recorded by
    /// [`ExtractCache::note_upload`], or a fresh hash of `bytes` for
    /// callers that bypass the upload path.
    fn expected_hash(shard: &Shard, uri: &str, bytes: &[u8]) -> u64 {
        shard
            .expected
            .get(uri)
            .copied()
            .unwrap_or_else(|| content_hash(bytes))
    }

    /// The parsed form of `uri`/`bytes`, from cache when the content
    /// still matches.
    ///
    /// # Panics
    /// Panics if `bytes` are not well-formed XML (stored documents always
    /// are; the warehouse validated them on the way in).
    pub fn parsed(&self, uri: &str, bytes: &[u8]) -> Arc<Document> {
        let idx = shard_of(uri);
        {
            let shard = self.shards[idx].lock().unwrap();
            let expected = Self::expected_hash(&shard, uri, bytes);
            if let Some(e) = shard.docs.get(uri) {
                if e.hash == expected {
                    let doc = e.doc.clone();
                    drop(shard);
                    self.bump(0);
                    return doc;
                }
            }
        }
        self.bump(1);
        // Parse outside the lock: this is the expensive part, and the
        // prewarm stage runs it concurrently across shard-colliding URIs.
        let doc = Arc::new(Document::parse(uri, bytes).expect("stored documents are well-formed"));
        let mut shard = self.shards[idx].lock().unwrap();
        let hash = Self::expected_hash(&shard, uri, bytes);
        shard.docs.insert(
            uri.to_string(),
            DocEntry {
                hash,
                doc: doc.clone(),
                extracts: HashMap::new(),
            },
        );
        doc
    }

    /// The parsed form *and* the extraction output of `uri`/`bytes` under
    /// `(strategy, opts)`, both memoized.
    pub fn extracted(
        &self,
        uri: &str,
        bytes: &[u8],
        strategy: Strategy,
        opts: ExtractOptions,
    ) -> (Arc<Document>, Arc<Vec<IndexEntry>>) {
        let doc = self.parsed(uri, bytes);
        let idx = shard_of(uri);
        {
            let shard = self.shards[idx].lock().unwrap();
            if let Some(e) = shard.docs.get(uri) {
                if let Some(entries) = e.extracts.get(&(strategy, opts)) {
                    let entries = entries.clone();
                    drop(shard);
                    self.bump(2);
                    return (doc, entries);
                }
            }
        }
        self.bump(3);
        // Extract outside the lock, then publish. Two threads may race to
        // extract the same key; both produce identical output (extraction
        // is deterministic), so last-write-wins is correct.
        let entries = Arc::new(extract(&doc, strategy, opts));
        let mut shard = self.shards[idx].lock().unwrap();
        if let Some(e) = shard.docs.get_mut(uri) {
            e.extracts.insert((strategy, opts), entries.clone());
        }
        (doc, entries)
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().docs.len())
            .sum()
    }

    /// True when no document is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached parse and extraction (upload hashes are kept:
    /// they describe the stored objects, not the cache contents).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().unwrap().docs.clear();
        }
    }
}

// The whole point: the cache is shareable across host threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExtractCache>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const XML_A: &[u8] = b"<a><b>x</b></a>";
    const XML_B: &[u8] = b"<a><c>y</c></a>";

    #[test]
    fn parse_probe_hits_after_miss() {
        let cache = ExtractCache::default();
        cache.note_upload("d.xml", XML_A);
        let d1 = cache.parsed("d.xml", XML_A);
        let d2 = cache.parsed("d.xml", XML_A);
        assert!(Arc::ptr_eq(&d1, &d2));
        let s = cache.stats();
        assert_eq!((s.parse_hits, s.parse_misses), (1, 1));
    }

    #[test]
    fn reupload_invalidates_cached_parse() {
        let cache = ExtractCache::default();
        cache.note_upload("d.xml", XML_A);
        let d1 = cache.parsed("d.xml", XML_A);
        cache.note_upload("d.xml", XML_B);
        let d2 = cache.parsed("d.xml", XML_B);
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(d2.elements_named("c").len(), 1);
    }

    #[test]
    fn extraction_is_memoized_per_strategy_and_opts() {
        let cache = ExtractCache::default();
        cache.note_upload("d.xml", XML_A);
        let (_, e1) = cache.extracted("d.xml", XML_A, Strategy::Lu, ExtractOptions::default());
        let (_, e2) = cache.extracted("d.xml", XML_A, Strategy::Lu, ExtractOptions::default());
        assert!(Arc::ptr_eq(&e1, &e2));
        let (_, e3) = cache.extracted("d.xml", XML_A, Strategy::Lup, ExtractOptions::default());
        assert!(!Arc::ptr_eq(&e1, &e3));
        let no_words = ExtractOptions { index_words: false };
        let (_, e4) = cache.extracted("d.xml", XML_A, Strategy::Lu, no_words);
        assert!(!Arc::ptr_eq(&e1, &e4));
        let s = cache.stats();
        assert_eq!((s.extract_hits, s.extract_misses), (1, 3));
    }

    #[test]
    fn memoized_extraction_equals_direct_extraction() {
        let cache = ExtractCache::default();
        for strategy in Strategy::ALL {
            let (doc, entries) =
                cache.extracted("d.xml", XML_A, strategy, ExtractOptions::default());
            let direct = extract(&doc, strategy, ExtractOptions::default());
            assert_eq!(*entries, direct, "{strategy}");
        }
    }

    #[test]
    fn uncached_probe_falls_back_to_hashing() {
        // No note_upload: the probe hashes the bytes itself and still
        // works, including invalidation on changed content.
        let cache = ExtractCache::default();
        let d1 = cache.parsed("d.xml", XML_A);
        let d2 = cache.parsed("d.xml", XML_B);
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_probes_agree() {
        let cache = ExtractCache::shared();
        let uris: Vec<String> = (0..64).map(|i| format!("doc{i}.xml")).collect();
        let xml: Vec<Vec<u8>> = (0..64)
            .map(|i| format!("<a><b>{i}</b></a>").into_bytes())
            .collect();
        let results = amada_par::par_map_with(8, &uris, |i, uri| {
            let (_, e) = cache.extracted(uri, &xml[i], Strategy::Lui, ExtractOptions::default());
            e.len()
        });
        // Re-probe sequentially: identical answers, all from cache.
        for (i, uri) in uris.iter().enumerate() {
            let (_, e) = cache.extracted(uri, &xml[i], Strategy::Lui, ExtractOptions::default());
            assert_eq!(e.len(), results[i]);
        }
    }
}
