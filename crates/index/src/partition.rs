//! Per-partition strategy routing — the physical layer under the
//! adaptive advisor (ROADMAP item 1).
//!
//! The paper picks *one* of LU/LUP/LUI/2LUPI for the whole corpus.
//! Production workloads are heterogeneous: a hot, selectively-queried
//! partition wants the ID-granularity index, a cold scan-heavy partition
//! wants the cheapest path index — or no index at all. A [`MixedPlan`]
//! assigns every *partition* (the URI's directory prefix) its own
//! strategy, or `None` for "index nothing, scan".
//!
//! Physically, each indexed partition owns its own tables —
//! `amada-index@hot`, `amada-index-path@hot`, … — derived from the global
//! table constants by [`partition_table`]. Separate tables are not an
//! implementation convenience: LU, LUP and LUI all write the *same* main
//! table with incompatible payload encodings, so two partitions on
//! different single-table strategies must not share it; and per-table
//! stats give per-partition storage accounting for free. Table names stay
//! `&'static str` (the type every store API and [`crate::ItemKey`] use)
//! via a process-wide interner.
//!
//! Look-ups under a mixed plan union per-partition look-ups: each indexed
//! partition answers with its own strategy against its own tables, and
//! every document of an unindexed partition is a candidate (the no-index
//! scan, scoped to that partition). [`lookup_mixed`] returns the same
//! [`QueryLookup`] shape as the single-strategy path, so everything
//! downstream (fetch, evaluate, join, bill) is unchanged.
//!
//! LUP-PD is deliberately not routable: its *fetch* side (storage-side
//! scans instead of GETs) is a per-query-core decision, not a
//! per-partition one, so a mixed plan rejects it.

use crate::loadutil::{write_entries, DocIndexing};
use crate::lookup::{lookup_pattern_in, LookupOutcome, QueryLookup, StrategyTables};
use crate::strategy::{
    extract, ExtractOptions, IndexEntry, Strategy, TABLE_ID, TABLE_MAIN, TABLE_PATH,
};
use amada_cloud::{KvError, KvStore, SimTime};
use amada_pattern::Query;
use amada_xml::Document;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

/// The partition a document belongs to: its URI's directory prefix
/// (`hot/doc3.xml` → `hot`), or the root partition `""` for a bare name.
/// Deterministic and derivable from the URI alone, so the loader, the
/// query processor and host-side retraction replay all agree without
/// consulting any shared state.
pub fn partition_of(uri: &str) -> &str {
    uri.split_once('/').map_or("", |(p, _)| p)
}

/// Interns a table name, returning the `&'static str` every store API
/// expects. Idempotent: the same name always returns the same pointer.
fn interned(name: String) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("table interner poisoned");
    if let Some(&s) = pool.get(name.as_str()) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// The partition-local variant of a global table: `amada-index@hot` for
/// (`amada-index`, `hot`). The root partition keeps the global name, so a
/// plan that assigns only the root partition is physically identical to
/// the paper's single-strategy layout.
pub fn partition_table(base: &'static str, partition: &str) -> &'static str {
    if partition.is_empty() {
        base
    } else {
        interned(format!("{base}@{partition}"))
    }
}

/// The look-up tables of one `(strategy, partition)` pair.
pub fn partition_lookup_tables(partition: &str) -> StrategyTables {
    StrategyTables {
        main: partition_table(TABLE_MAIN, partition),
        path: partition_table(TABLE_PATH, partition),
        id: partition_table(TABLE_ID, partition),
    }
}

/// The physical tables `strategy` stores a partition's entries in.
pub fn partition_tables(strategy: Strategy, partition: &str) -> Vec<&'static str> {
    strategy
        .tables()
        .iter()
        .map(|t| partition_table(t, partition))
        .collect()
}

/// Redirects freshly-extracted entries into their partition's tables.
pub fn retarget_entries(entries: &mut [IndexEntry], partition: &str) {
    if partition.is_empty() {
        return;
    }
    for e in entries {
        e.table = partition_table(e.table, partition);
    }
}

/// A per-partition strategy assignment: named partitions map to a
/// strategy or to `None` ("index nothing, scan"); unnamed partitions fall
/// back to the plan's default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedPlan {
    assignments: BTreeMap<String, Option<Strategy>>,
    default: Option<Strategy>,
}

impl MixedPlan {
    /// A plan whose every partition uses `default`.
    pub fn uniform(default: Option<Strategy>) -> MixedPlan {
        assert_ne!(
            default,
            Some(Strategy::LupPd),
            "LUP-PD is a per-query-core fetch strategy, not routable per partition"
        );
        MixedPlan {
            assignments: BTreeMap::new(),
            default,
        }
    }

    /// Assigns a partition its strategy (builder form).
    pub fn with(mut self, partition: &str, strategy: Option<Strategy>) -> MixedPlan {
        self.assign(partition, strategy);
        self
    }

    /// Assigns a partition its strategy.
    pub fn assign(&mut self, partition: &str, strategy: Option<Strategy>) {
        assert_ne!(
            strategy,
            Some(Strategy::LupPd),
            "LUP-PD is a per-query-core fetch strategy, not routable per partition"
        );
        self.assignments.insert(partition.to_string(), strategy);
    }

    /// The strategy of a partition.
    pub fn strategy_of(&self, partition: &str) -> Option<Strategy> {
        self.assignments
            .get(partition)
            .copied()
            .unwrap_or(self.default)
    }

    /// The strategy routing a document.
    pub fn strategy_for_uri(&self, uri: &str) -> Option<Strategy> {
        self.strategy_of(partition_of(uri))
    }

    /// The default strategy of unnamed partitions.
    pub fn default_strategy(&self) -> Option<Strategy> {
        self.default
    }

    /// The named partition assignments, in partition order.
    pub fn assignments(&self) -> &BTreeMap<String, Option<Strategy>> {
        &self.assignments
    }

    /// Whether every route — named partitions and the default — carries
    /// an index. A fully indexed plan can never send a query to the scan
    /// path, so look-ups need no corpus listing to scope scan partitions.
    pub fn fully_indexed(&self) -> bool {
        self.default.is_some() && self.assignments.values().all(Option::is_some)
    }

    /// The distinct strategies any partition indexes with (for cache
    /// prewarming).
    pub fn indexed_strategies(&self) -> Vec<Strategy> {
        let set: BTreeSet<&'static str> = self
            .assignments
            .values()
            .copied()
            .chain([self.default])
            .flatten()
            .map(Strategy::name)
            .collect();
        let mut out: Vec<Strategy> = set.into_iter().filter_map(Strategy::parse).collect();
        out.sort_by_key(|s| s.name());
        out
    }

    /// Every table a *named* partition's strategy stores entries in
    /// (unnamed partitions are discovered at write time and their tables
    /// ensured on demand).
    pub fn known_tables(&self) -> Vec<&'static str> {
        let mut out: BTreeSet<&'static str> = BTreeSet::new();
        for (partition, strategy) in &self.assignments {
            if let Some(s) = strategy {
                out.extend(partition_tables(*s, partition));
            }
        }
        if let Some(s) = self.default {
            out.extend(s.tables().iter().copied());
        }
        out.into_iter().collect()
    }
}

/// Indexes a document set under a mixed plan, sequentially (host-side
/// convenience for the estimator, oracles and tests; the warehouse's
/// loader pool routes per document the same way). Documents in unindexed
/// partitions contribute nothing to the store.
pub fn index_documents_mixed(
    store: &mut dyn KvStore,
    docs: &[Document],
    plan: &MixedPlan,
    opts: ExtractOptions,
) -> DocIndexing {
    let mut total = DocIndexing::default();
    let mut t = SimTime::ZERO;
    for d in docs {
        let partition = partition_of(d.uri());
        let Some(strategy) = plan.strategy_of(partition) else {
            continue;
        };
        let mut entries = extract(d, strategy, opts);
        retarget_entries(&mut entries, partition);
        let (m, ready) =
            write_entries(store, t, &entries, d.uri()).expect("mixed indexing must succeed");
        t = ready;
        total.entries += m.entries;
        total.items += m.items;
        total.entry_bytes += m.entry_bytes;
        total.batches += m.batches;
    }
    total
}

/// Looks up a full query under a mixed plan: each indexed partition
/// answers with its own strategy against its own tables. Partitions are
/// independent tables, so their look-ups for one pattern are issued
/// *concurrently* in virtual time — each starts at the pattern's start
/// time and the pattern completes when the slowest partition responds
/// (round-trip latencies overlap; only the per-request service overheads
/// serialise through the shared front door). Patterns still chain on one
/// another like the per-pattern chain of [`crate::lookup_query`]. Every
/// document of an unindexed partition is a candidate for every pattern —
/// the no-index scan scoped to that partition. `corpus_uris` is the
/// document listing; it determines which documents the scan partitions
/// contribute. `catalog` names the partitions the front end knows exist
/// without consulting the listing — the warehouse's own upload records,
/// free host-side metadata like the plan itself. A fully indexed plan
/// routes every partition to an index look-up and never needs the
/// per-document listing, so its caller can pass an empty `corpus_uris`
/// (skipping the billed LIST) as long as the catalog covers every
/// partition that holds documents; a plan with scan partitions still
/// needs the listing to enumerate their documents.
pub fn lookup_mixed(
    store: &mut dyn KvStore,
    now: SimTime,
    plan: &MixedPlan,
    opts: ExtractOptions,
    query: &Query,
    corpus_uris: &[String],
    catalog: &BTreeSet<String>,
) -> Result<QueryLookup, KvError> {
    // Partition the corpus listing once; catalog partitions exist even
    // when the listing (or their slice of it) is empty.
    let mut by_partition: BTreeMap<&str, Vec<&String>> = BTreeMap::new();
    for partition in catalog {
        by_partition.entry(partition.as_str()).or_default();
    }
    for uri in corpus_uris {
        by_partition.entry(partition_of(uri)).or_default().push(uri);
    }
    let mut indexed: Vec<(&str, Strategy)> = Vec::new();
    let mut scanned: BTreeSet<String> = BTreeSet::new();
    for (&partition, uris) in &by_partition {
        match plan.strategy_of(partition) {
            Some(s) => {
                // The partition's tables may be empty (nothing indexed
                // yet) but must exist for the look-up to run.
                for t in partition_tables(s, partition) {
                    store.ensure_table(t);
                }
                indexed.push((partition, s));
            }
            None => scanned.extend(uris.iter().map(|u| (*u).clone())),
        }
    }

    let mut per_pattern = Vec::with_capacity(query.patterns.len());
    let mut t = now;
    for p in &query.patterns {
        let mut uris: BTreeSet<String> = scanned.clone();
        let mut merged = LookupOutcome::default();
        // Fan out: every partition's look-up is issued at the pattern's
        // start time; the pattern is ready when the slowest responds.
        let mut ready = t;
        for &(partition, strategy) in &indexed {
            let tables = partition_lookup_tables(partition);
            let outcome = lookup_pattern_in(store, t, strategy, opts, p, tables)?;
            ready = ready.max(outcome.ready_at);
            merged.entries_processed += outcome.entries_processed;
            merged.get_ops += outcome.get_ops;
            uris.extend(outcome.uris);
        }
        t = ready;
        merged.ready_at = t;
        merged.uris = uris.into_iter().collect();
        per_pattern.push(merged);
    }
    let mut uris: Vec<String> = per_pattern
        .iter()
        .flat_map(|o| o.uris.iter().cloned())
        .collect();
    uris.sort();
    uris.dedup();
    let total = per_pattern.iter().map(|o| o.uris.len()).sum();
    Ok(QueryLookup {
        per_pattern,
        uris,
        total_doc_ids: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::DynamoDb;
    use amada_pattern::parse_query;

    fn docs() -> Vec<Document> {
        [
            ("hot/a.xml", "<painting><name>Lion Hunt</name></painting>"),
            ("hot/b.xml", "<painting><name>Tiger Hunt</name></painting>"),
            ("cold/c.xml", "<sculpture><name>Lion</name></sculpture>"),
            ("d.xml", "<painting><name>Raft</name></painting>"),
        ]
        .into_iter()
        .map(|(u, x)| Document::parse_str(u, x).unwrap())
        .collect()
    }

    #[test]
    fn partition_is_the_directory_prefix() {
        assert_eq!(partition_of("hot/a.xml"), "hot");
        assert_eq!(partition_of("hot/sub/a.xml"), "hot");
        assert_eq!(partition_of("a.xml"), "");
    }

    #[test]
    fn partition_tables_intern_to_stable_statics() {
        let a = partition_table(TABLE_MAIN, "hot");
        let b = partition_table(TABLE_MAIN, "hot");
        assert_eq!(a, "amada-index@hot");
        assert!(std::ptr::eq(a, b), "same partition, same static");
        // The root partition keeps the paper's global layout.
        assert!(std::ptr::eq(partition_table(TABLE_MAIN, ""), TABLE_MAIN));
    }

    #[test]
    fn plans_route_by_partition_with_a_default() {
        let plan = MixedPlan::uniform(Some(Strategy::Lup))
            .with("hot", Some(Strategy::TwoLupi))
            .with("cold", None);
        assert_eq!(plan.strategy_for_uri("hot/a.xml"), Some(Strategy::TwoLupi));
        assert_eq!(plan.strategy_for_uri("cold/c.xml"), None);
        assert_eq!(plan.strategy_for_uri("d.xml"), Some(Strategy::Lup));
        assert_eq!(plan.strategy_for_uri("other/e.xml"), Some(Strategy::Lup));
        // Distinct indexed strategies, in name order ("2LUPI" < "LUP").
        assert_eq!(
            plan.indexed_strategies(),
            vec![Strategy::TwoLupi, Strategy::Lup]
        );
    }

    #[test]
    #[should_panic(expected = "LUP-PD")]
    fn pushdown_is_not_routable() {
        let _ = MixedPlan::uniform(None).with("hot", Some(Strategy::LupPd));
    }

    #[test]
    fn mixed_lookup_unions_indexed_partitions_and_scan_partitions() {
        let docs = docs();
        let plan = MixedPlan::uniform(Some(Strategy::Lu))
            .with("hot", Some(Strategy::TwoLupi))
            .with("cold", None);
        let mut store = DynamoDb::default();
        let m = index_documents_mixed(&mut store, &docs, &plan, ExtractOptions::default());
        assert!(m.items > 0);
        // Entries landed in partition tables, not the global ones for
        // the named partitions.
        let tables: BTreeSet<String> = store.peek_all().into_iter().map(|(t, _)| t).collect();
        assert!(tables.contains("amada-index-path@hot"), "{tables:?}");
        assert!(tables.contains("amada-index"), "root partition: {tables:?}");
        assert!(!tables.iter().any(|t| t.contains("@cold")), "{tables:?}");

        let corpus: Vec<String> = docs.iter().map(|d| d.uri().to_string()).collect();
        let q = parse_query("//painting[/name{contains(Hunt)}]").unwrap();
        let lookup = lookup_mixed(
            &mut store,
            SimTime::ZERO,
            &plan,
            ExtractOptions::default(),
            &q,
            &corpus,
            &BTreeSet::new(),
        )
        .unwrap();
        // The hot partition answers precisely; the cold partition's doc
        // is a scan candidate regardless of content; the root partition's
        // LU index contributes nothing for a non-matching doc... but LU
        // keys only prune per-key, so d.xml (painting+name, no "hunt"
        // word match) is pruned by the word key.
        assert_eq!(
            lookup.uris,
            vec!["cold/c.xml", "hot/a.xml", "hot/b.xml"],
            "per-partition union"
        );
        assert!(lookup.get_ops() > 0);
    }

    #[test]
    fn mixed_lookup_fans_partitions_out_concurrently() {
        // Three indexed partitions answer one pattern. Their round-trip
        // latencies overlap, so the three-partition plan's ready time must
        // be far below three chained single-partition look-ups — only the
        // per-request service overheads serialise.
        let docs: Vec<Document> = [
            ("a/x.xml", "<painting><name>Lion Hunt</name></painting>"),
            ("b/y.xml", "<painting><name>Tiger Hunt</name></painting>"),
            ("c/z.xml", "<painting><name>Raft</name></painting>"),
        ]
        .into_iter()
        .map(|(u, x)| Document::parse_str(u, x).unwrap())
        .collect();
        let opts = ExtractOptions::default();
        let q = parse_query("//painting[/name]").unwrap();
        let corpus: Vec<String> = docs.iter().map(|d| d.uri().to_string()).collect();

        let plan = MixedPlan::uniform(Some(Strategy::Lu));
        let mut store = DynamoDb::default();
        index_documents_mixed(&mut store, &docs, &plan, opts);
        let fanned = lookup_mixed(
            &mut store,
            SimTime::ZERO,
            &plan,
            opts,
            &q,
            &corpus,
            &BTreeSet::new(),
        )
        .unwrap();

        let solo_docs = vec![docs[0].clone()];
        let solo_corpus = vec![corpus[0].clone()];
        let mut solo_store = DynamoDb::default();
        index_documents_mixed(&mut solo_store, &solo_docs, &plan, opts);
        let solo = lookup_mixed(
            &mut solo_store,
            SimTime::ZERO,
            &plan,
            opts,
            &q,
            &solo_corpus,
            &BTreeSet::new(),
        )
        .unwrap();

        let fanned_at = fanned.per_pattern[0].ready_at;
        let solo_at = solo.per_pattern[0].ready_at;
        assert!(fanned_at >= solo_at, "three partitions cannot beat one");
        // Well under 2x a single partition (chaining would be ~3x).
        assert!(
            fanned_at.micros() < 2 * solo_at.micros(),
            "fan-out must overlap latencies: {} vs solo {}",
            fanned_at.micros(),
            solo_at.micros()
        );
    }

    #[test]
    fn mixed_lookup_on_a_uniform_root_plan_matches_the_single_strategy_path() {
        let docs: Vec<Document> = [
            ("a.xml", "<painting><name>Lion Hunt</name></painting>"),
            ("b.xml", "<sculpture><name>Lion</name></sculpture>"),
        ]
        .into_iter()
        .map(|(u, x)| Document::parse_str(u, x).unwrap())
        .collect();
        let opts = ExtractOptions::default();
        for strategy in Strategy::ALL {
            let plan = MixedPlan::uniform(Some(strategy));
            let mut mixed = DynamoDb::default();
            index_documents_mixed(&mut mixed, &docs, &plan, opts);
            let mut plain = DynamoDb::default();
            crate::loadutil::index_documents(&mut plain, &docs, strategy, opts);
            assert_eq!(mixed.peek_all(), plain.peek_all(), "{strategy:?}");

            let corpus: Vec<String> = docs.iter().map(|d| d.uri().to_string()).collect();
            let q = parse_query("//painting[/name]").unwrap();
            let a = lookup_mixed(
                &mut mixed,
                SimTime::ZERO,
                &plan,
                opts,
                &q,
                &corpus,
                &BTreeSet::new(),
            )
            .unwrap();
            let b = crate::lookup_query(&mut plain, SimTime::ZERO, strategy, opts, &q).unwrap();
            assert_eq!(a.uris, b.uris, "{strategy:?}");
            assert_eq!(a.get_ops(), b.get_ops(), "{strategy:?}");
        }
    }
}
