//! Computation pushdown to storage (the S3-Select analog; beyond the
//! paper).
//!
//! LUP narrows a pattern's candidates through the index and then GETs
//! every candidate document to EC2, paying transfer and parse/eval
//! compute for bytes the post-filter mostly discards. [`ScanPredicate`]
//! moves that post-filter *into the storage tier*: it is a tree pattern
//! compiled into a self-contained, wire-serializable predicate that the
//! simulated store evaluates server-side
//! ([`amada_cloud::ObjectPredicate`]), shipping back only the matching
//! tuples. The storage bill trades a per-GB *scanned* charge for egress
//! on the *filtered* bytes only — cheap when the predicate is selective,
//! expensive when almost everything matches (PushdownDB's crossover).
//!
//! ## Wire format
//!
//! The predicate travels as the pattern's textual form (the same grammar
//! `parse_pattern` reads — every generated and workload query is already
//! Display/parse round-trippable, pinned by `repro check`). The scan
//! *result* is a length-prefixed tuple encoding ([`encode_tuples`] /
//! [`decode_tuples`]); an empty result is zero bytes, so fully filtered
//! documents cost no egress at all.
//!
//! ## Semantics
//!
//! The storage tier evaluates the *whole* pattern — structure and value
//! predicates, including the range predicates the index cannot resolve
//! (Section 5.5's two-step evaluation). The candidate list from the LUP
//! lookup is thus only an optimization; scanning a non-matching document
//! returns zero tuples, never a wrong one.

use amada_cloud::ObjectPredicate;
use amada_pattern::{evaluate_pattern_twig, parse_pattern_component, TreePattern, Tuple};
use amada_xml::Document;
use std::sync::Arc;

/// A tree pattern compiled for server-side evaluation by the store.
#[derive(Debug, Clone)]
pub struct ScanPredicate {
    pattern: TreePattern,
    wire: String,
}

impl ScanPredicate {
    /// Compiles a pattern into a pushdown predicate. The wire form is the
    /// pattern's textual rendering; compiling asserts it round-trips, so a
    /// predicate that reaches the store always re-parses. Patterns are
    /// parsed as query *components*: a join variable bound once here may
    /// have its partner sites in sibling patterns of the enclosing query.
    pub fn compile(pattern: &TreePattern) -> ScanPredicate {
        let wire = pattern.to_string();
        let reparsed = parse_pattern_component(&wire)
            .unwrap_or_else(|e| panic!("pattern does not round-trip ({e}): {wire}"));
        ScanPredicate {
            pattern: reparsed,
            wire,
        }
    }

    /// Reconstructs a predicate from its wire form (what the storage tier
    /// would do with a received scan request).
    pub fn from_wire(wire: &str) -> Result<ScanPredicate, String> {
        let pattern = parse_pattern_component(wire).map_err(|e| e.to_string())?;
        Ok(ScanPredicate {
            pattern,
            wire: wire.to_string(),
        })
    }

    /// The serialized predicate as it travels to the store.
    pub fn wire(&self) -> &str {
        &self.wire
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &TreePattern {
        &self.pattern
    }
}

impl ObjectPredicate for ScanPredicate {
    /// Parses the object as XML, evaluates the pattern with the holistic
    /// twig join, and returns the encoded matching tuples — empty (zero
    /// bytes) when nothing matches or the object is not well-formed XML.
    fn filter(&self, bytes: &[u8]) -> Vec<u8> {
        let Ok(text) = std::str::from_utf8(bytes) else {
            return Vec::new();
        };
        // The store does not know the client-side URI; tuples travel
        // URI-less and the caller reattaches it in `decode_tuples`.
        let Ok(doc) = Document::parse_str("", text) else {
            return Vec::new();
        };
        let (tuples, _) = evaluate_pattern_twig(&doc, &self.pattern);
        encode_tuples(&tuples)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes tuples as scan result bytes: a `u32` tuple count, then per
/// tuple the length-prefixed columns and `(var, value)` join bindings.
/// No tuples encode to *zero* bytes (so an unmatched document pays no
/// egress).
pub fn encode_tuples(tuples: &[Tuple]) -> Vec<u8> {
    if tuples.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        out.extend_from_slice(&(t.columns.len() as u32).to_le_bytes());
        for c in &t.columns {
            put_str(&mut out, c);
        }
        out.extend_from_slice(&(t.joins.len() as u32).to_le_bytes());
        for (var, val) in &t.joins {
            put_str(&mut out, var);
            put_str(&mut out, val);
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(std::str::from_utf8(raw).ok()?.to_string())
    }
}

/// Decodes scan result bytes back into tuples, stamping each with `uri`
/// (the object the caller scanned). `None` on malformed input — a store
/// bug, never a query answer.
pub fn decode_tuples(bytes: &[u8], uri: &str) -> Option<Vec<Tuple>> {
    if bytes.is_empty() {
        return Some(Vec::new());
    }
    let uri: Arc<str> = uri.into();
    let mut c = Cursor { bytes, pos: 0 };
    let count = c.u32()?;
    let mut tuples = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let n_cols = c.u32()?;
        let mut columns = Vec::with_capacity(n_cols as usize);
        for _ in 0..n_cols {
            columns.push(c.str()?);
        }
        let n_joins = c.u32()?;
        let mut joins = Vec::with_capacity(n_joins as usize);
        for _ in 0..n_joins {
            let var = c.str()?;
            let val = c.str()?;
            joins.push((var, val));
        }
        tuples.push(Tuple {
            uri: uri.clone(),
            columns,
            joins,
        });
    }
    (c.pos == bytes.len()).then_some(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_pattern::parse_pattern;

    const DOC: &str = "<museum><painting id=\"1854-1\"><name>The Lion Hunt</name>\
        <year>1854</year></painting><painting id=\"1888-2\"><name>Sunflowers</name>\
        <year>1888</year></painting></museum>";

    fn tuples_via_scan(pattern_text: &str, xml: &str, uri: &str) -> Vec<Tuple> {
        let pattern = parse_pattern(pattern_text).unwrap();
        let pred = ScanPredicate::compile(&pattern);
        decode_tuples(&pred.filter(xml.as_bytes()), uri).expect("well-formed result")
    }

    #[test]
    fn scan_result_equals_local_twig_evaluation() {
        let pattern = parse_pattern("//painting[/name{val}, /year{=\"1854\"}]").unwrap();
        let doc = Document::parse_str("m.xml", DOC).unwrap();
        let (expected, _) = evaluate_pattern_twig(&doc, &pattern);
        assert!(!expected.is_empty());
        let got = tuples_via_scan("//painting[/name{val}, /year{=\"1854\"}]", DOC, "m.xml");
        assert_eq!(got, expected);
    }

    #[test]
    fn wire_round_trip_preserves_semantics() {
        let pattern =
            parse_pattern_component("//painting[/@id{val as $p}, /year{\"1854\"<=val<\"1889\"}]")
                .unwrap();
        let compiled = ScanPredicate::compile(&pattern);
        let rebuilt = ScanPredicate::from_wire(compiled.wire()).unwrap();
        let a = compiled.filter(DOC.as_bytes());
        let b = rebuilt.filter(DOC.as_bytes());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Join bindings survive the result encoding.
        let tuples = decode_tuples(&a, "m.xml").unwrap();
        assert!(tuples.iter().all(
            |t| t.joins.iter().any(|(v, _)| v == "p") || t.joins.iter().any(|(v, _)| v == "$p")
        ));
    }

    #[test]
    fn unmatched_documents_return_zero_bytes() {
        let pattern = parse_pattern("//sculpture{val}").unwrap();
        let pred = ScanPredicate::compile(&pattern);
        assert!(pred.filter(DOC.as_bytes()).is_empty());
        assert_eq!(decode_tuples(&[], "m.xml"), Some(Vec::new()));
    }

    #[test]
    fn malformed_objects_match_nothing() {
        let pred = ScanPredicate::compile(&parse_pattern("//painting{val}").unwrap());
        assert!(pred.filter(b"<unclosed>").is_empty());
        assert!(pred.filter(&[0xFF, 0xFE, 0x00]).is_empty());
    }

    #[test]
    fn truncated_results_are_rejected_not_misread() {
        let full = tuples_via_scan("//painting[/name{val}]", DOC, "m.xml");
        assert_eq!(full.len(), 2);
        let encoded = encode_tuples(&full);
        for cut in 1..encoded.len() {
            assert_eq!(decode_tuples(&encoded[..cut], "m.xml"), None, "cut {cut}");
        }
        // And trailing garbage is rejected too.
        let mut padded = encoded.clone();
        padded.push(0);
        assert_eq!(decode_tuples(&padded, "m.xml"), None);
    }

    #[test]
    fn selective_predicates_shrink_the_returned_bytes() {
        let all = ScanPredicate::compile(&parse_pattern("//painting[/name{cont}]").unwrap());
        let one = ScanPredicate::compile(
            &parse_pattern("//painting[/name{cont}, /year{=\"1854\"}]").unwrap(),
        );
        let broad = all.filter(DOC.as_bytes());
        let narrow = one.filter(DOC.as_bytes());
        assert!(!narrow.is_empty());
        assert!(narrow.len() < broad.len());
        assert!(broad.len() < DOC.len() * 2, "results stay result-sized");
    }
}
