//! Index key encoding — the paper's `key(n)` function (Section 5):
//!
//! ```text
//! key(n) = e‖n.label            if n is an XML element
//!          a‖n.name             if n is an XML attribute      (name key)
//!          a‖n.name n.val       if n is an XML attribute      (value key)
//!          w‖n.val              if n is a word
//! ```
//!
//! Attribute nodes produce *two* keys — one reflecting the name, one also
//! reflecting the value — "these help speed up specific kinds of queries".
//! Word keys are extracted from text content via the standard tokenizer.
//!
//! Data paths (`inPath(n)`) are encoded as `/`-separated sequences of node
//! keys, e.g. `/epainting/ename/wOlympia`, exactly as in the paper's LUP
//! examples.

use amada_xml::{Document, NodeId, NodeKind};

/// Prefix for element keys.
pub const ELEMENT_PREFIX: char = 'e';
/// Prefix for attribute keys.
pub const ATTRIBUTE_PREFIX: char = 'a';
/// Prefix for word keys.
pub const WORD_PREFIX: char = 'w';

/// `e‖label`.
pub fn element_key(label: &str) -> String {
    format!("{ELEMENT_PREFIX}{label}")
}

/// `a‖name`.
pub fn attribute_key(name: &str) -> String {
    format!("{ATTRIBUTE_PREFIX}{name}")
}

/// Longest value / word fragment embedded in a key. Index keys become
/// store hash keys, which DynamoDB caps at 2 KB; truncating here (applied
/// identically at extraction and look-up, so matching is unaffected)
/// keeps any document indexable. Values this long cannot be told apart by
/// the index alone — evaluation on the fetched documents stays exact.
pub const MAX_KEY_VALUE_BYTES: usize = 512;

fn truncated(value: &str) -> &str {
    if value.len() <= MAX_KEY_VALUE_BYTES {
        return value;
    }
    let mut end = MAX_KEY_VALUE_BYTES;
    while !value.is_char_boundary(end) {
        end -= 1;
    }
    &value[..end]
}

/// `a‖name value` — the attribute *value* key (name and value separated by
/// one space, as in the paper's `aid 1863-1`). Values are truncated to
/// [`MAX_KEY_VALUE_BYTES`] and `/` is escaped (`%2F`, with `%` as `%25`):
/// value keys are embedded as components of `/`-separated data paths, and
/// an unescaped slash would corrupt LUP path matching. The escaping is
/// applied identically at extraction and look-up, so equality matching is
/// unaffected.
pub fn attribute_value_key(name: &str, value: &str) -> String {
    // '\n' is escaped too: LUP path lists are newline-joined when they
    // must fall back to the string-blob encoding.
    let escaped = value
        .replace('%', "%25")
        .replace('/', "%2F")
        .replace('\n', "%0A");
    format!("{ATTRIBUTE_PREFIX}{name} {}", truncated(&escaped))
}

/// `w‖word` (the word must already be tokenized/lowercased; truncated to
/// [`MAX_KEY_VALUE_BYTES`]).
pub fn word_key(word: &str) -> String {
    format!("{WORD_PREFIX}{}", truncated(word))
}

/// The key of a non-word node (element or attribute name key).
pub fn node_key(doc: &Document, n: NodeId) -> Option<String> {
    match doc.kind(n) {
        NodeKind::Element => Some(element_key(doc.name(n)?)),
        NodeKind::Attribute => Some(attribute_key(doc.name(n)?)),
        NodeKind::Text => None,
    }
}

/// Encodes `inPath(n)` for an element/attribute node: `/ek1/ek2/...`.
pub fn encode_path(doc: &Document, n: NodeId) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut cur = Some(n);
    while let Some(x) = cur {
        if let Some(k) = node_key(doc, x) {
            parts.push(k);
        }
        cur = doc.parent(x);
    }
    parts.reverse();
    let mut s = String::new();
    for p in &parts {
        s.push('/');
        s.push_str(p);
    }
    s
}

/// Encodes the path of a *word* occurring in the text node `text_node`:
/// the element path extended by the word key, e.g.
/// `/epainting/ename/wOlympia`.
pub fn encode_word_path(doc: &Document, text_node: NodeId, word: &str) -> String {
    let parent = doc.parent(text_node).expect("text nodes have parents");
    format!("{}/{}", encode_path(doc, parent), word_key(word))
}

/// Encodes the path of an attribute under its *value* key, e.g.
/// `/epainting/aid 1863-1` (paper Figure 4, row `aid 1863-1`).
pub fn encode_attr_value_path(doc: &Document, attr: NodeId) -> String {
    let parent = doc.parent(attr).expect("attributes have parents");
    let name = doc.name(attr).expect("attributes have names");
    let value = doc.value(attr).unwrap_or_default();
    format!(
        "{}/{}",
        encode_path(doc, parent),
        attribute_value_key(name, value)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_xml::Document;

    const MANET: &str = "<painting id=\"1863-1\"><name>Olympia</name>\
        <painter><name><first>Edouard</first><last>Manet</last></name></painter></painting>";

    #[test]
    fn key_constructors_match_paper_examples() {
        assert_eq!(element_key("name"), "ename");
        assert_eq!(attribute_key("id"), "aid");
        assert_eq!(attribute_value_key("id", "1863-1"), "aid 1863-1");
        assert_eq!(word_key("olympia"), "wolympia");
    }

    #[test]
    fn paths_match_paper_figure4() {
        let d = Document::parse_str("manet.xml", MANET).unwrap();
        let names = d.elements_named("name");
        assert_eq!(encode_path(&d, names[0]), "/epainting/ename");
        assert_eq!(encode_path(&d, names[1]), "/epainting/epainter/ename");
        let id = d.attributes_named("id")[0];
        assert_eq!(encode_path(&d, id), "/epainting/aid");
        assert_eq!(encode_attr_value_path(&d, id), "/epainting/aid 1863-1");
    }

    #[test]
    fn word_paths_extend_element_paths() {
        let d = Document::parse_str("manet.xml", MANET).unwrap();
        let text = d
            .all_nodes()
            .find(|&n| d.value(n) == Some("Olympia"))
            .unwrap();
        assert_eq!(
            encode_word_path(&d, text, "olympia"),
            "/epainting/ename/wolympia"
        );
    }

    #[test]
    fn slashes_in_attribute_values_are_escaped() {
        // A raw '/' would masquerade as a path separator in LUP data paths.
        let k = attribute_value_key("href", "a/b%c");
        assert_eq!(k, "ahref a%2Fb%25c");
        assert_eq!(attribute_value_key("t", "x\ny"), "at x%0Ay");
        assert!(!k["ahref ".len()..].contains('/'));
        // Extraction and look-up agree.
        assert_eq!(k, attribute_value_key("href", "a/b%c"));
    }

    #[test]
    fn oversized_values_truncate_consistently() {
        let long = "x".repeat(5000);
        let k = attribute_value_key("id", &long);
        assert!(k.len() < 600);
        // Extraction and look-up produce the same key for the same value.
        assert_eq!(k, attribute_value_key("id", &long));
        let w = word_key(&long);
        assert!(w.len() <= MAX_KEY_VALUE_BYTES + 1);
        // Truncation respects UTF-8 boundaries.
        let uni = "é".repeat(5000);
        let k = word_key(&uni);
        assert!(std::str::from_utf8(k.as_bytes()).is_ok());
    }

    #[test]
    fn text_nodes_have_no_node_key() {
        let d = Document::parse_str("t.xml", "<a>x</a>").unwrap();
        let text = d.all_nodes().find(|&n| d.value(n) == Some("x")).unwrap();
        assert_eq!(node_key(&d, text), None);
    }
}
