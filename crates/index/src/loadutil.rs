//! Writing extracted index entries into a key-value store — the storage
//! half of the indexing module. The documents are "batched … in order to
//! minimize the number of calls needed to load the index into DynamoDB"
//! (paper Section 8.1): items are grouped into maximal `batch_put` calls.

use crate::store::{encode_entry, UuidGen};
use crate::strategy::{extract, ExtractOptions, IndexEntry, Strategy};
use amada_cloud::{KvError, KvItem, KvStore, SimTime};
use amada_xml::Document;
use std::collections::BTreeMap;

/// Metrics of indexing one document (feed the work and cost models).
#[derive(Debug, Clone, Copy, Default)]
pub struct DocIndexing {
    /// Index entries extracted (`(key, document)` pairs).
    pub entries: u64,
    /// Store items written.
    pub items: u64,
    /// Raw entry bytes (the paper's `sr` contribution).
    pub entry_bytes: u64,
    /// API batches issued.
    pub batches: u64,
}

/// Extracts and stores the index entries of one document; returns the
/// metrics and the virtual completion time of the last write.
pub fn index_document(
    store: &mut dyn KvStore,
    now: SimTime,
    doc: &Document,
    strategy: Strategy,
    opts: ExtractOptions,
) -> Result<(DocIndexing, SimTime), KvError> {
    let entries = extract(doc, strategy, opts);
    write_entries(store, now, &entries, doc.uri())
}

/// Encodes and batch-writes pre-extracted entries.
pub fn write_entries(
    store: &mut dyn KvStore,
    now: SimTime,
    entries: &[IndexEntry],
    uri: &str,
) -> Result<(DocIndexing, SimTime), KvError> {
    let profile = store.profile();
    let mut uuids = UuidGen::for_document(uri);
    let mut metrics = DocIndexing {
        entries: entries.len() as u64,
        ..Default::default()
    };
    // Group items per destination table, preserving order.
    let mut per_table: BTreeMap<&'static str, Vec<KvItem>> = BTreeMap::new();
    for e in entries {
        metrics.entry_bytes += e.raw_bytes() as u64;
        for item in encode_entry(e, &profile, &mut uuids) {
            per_table.entry(e.table).or_default().push(item);
        }
    }
    let mut t = now;
    for (table, items) in per_table {
        store.ensure_table(table);
        metrics.items += items.len() as u64;
        for batch in items.chunks(profile.batch_put_limit) {
            metrics.batches += 1;
            t = store.batch_put(t, table, batch.to_vec())?;
        }
    }
    Ok((metrics, t))
}

/// Indexes a whole document set sequentially (test / example convenience;
/// the warehouse's loader module parallelizes this across instances).
pub fn index_documents(
    store: &mut dyn KvStore,
    docs: &[Document],
    strategy: Strategy,
    opts: ExtractOptions,
) -> DocIndexing {
    let mut total = DocIndexing::default();
    let mut t = SimTime::ZERO;
    for d in docs {
        let (m, ready) =
            index_document(store, t, d, strategy, opts).expect("indexing must succeed");
        t = ready;
        total.entries += m.entries;
        total.items += m.items;
        total.entry_bytes += m.entry_bytes;
        total.batches += m.batches;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{DynamoDb, SimpleDb};

    fn doc() -> Document {
        Document::parse_str(
            "d.xml",
            "<painting id=\"1854-1\"><name>The Lion Hunt</name><year>1854</year></painting>",
        )
        .unwrap()
    }

    #[test]
    fn indexing_writes_retrievable_items() {
        let mut store = DynamoDb::default();
        let (m, t) = index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::Lu,
            ExtractOptions::default(),
        )
        .unwrap();
        assert!(m.entries > 0);
        assert!(m.items >= m.entries);
        assert!(t > SimTime::ZERO);
        let (items, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_MAIN, "ename")
            .unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn two_lupi_writes_both_tables() {
        let mut store = DynamoDb::default();
        index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::TwoLupi,
            ExtractOptions::default(),
        )
        .unwrap();
        let (p, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_PATH, "ename")
            .unwrap();
        let (i, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_ID, "ename")
            .unwrap();
        assert!(!p.is_empty());
        assert!(!i.is_empty());
    }

    #[test]
    fn batching_reduces_api_requests() {
        let mut store = DynamoDb::default();
        let (m, _) = index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::Lup,
            ExtractOptions::default(),
        )
        .unwrap();
        assert!(m.batches < m.items || m.items <= 1);
        assert_eq!(store.stats().api_requests, m.batches);
        assert!(store.stats().put_ops > 0);
    }

    #[test]
    fn simpledb_needs_more_items_for_lui() {
        // A frequent label and a frequent word, so per-key ID lists exceed
        // the 1 KB SimpleDB value cap and must chunk; DynamoDB stores each
        // list as one binary value.
        let big = {
            let mut x = String::from("<r>");
            for _ in 0..2000 {
                x.push_str("<a>gold</a>");
            }
            x.push_str("</r>");
            Document::parse_str("big.xml", &x).unwrap()
        };
        let mut ddb = DynamoDb::default();
        let mut sdb = SimpleDb::default();
        let (md, _) = index_document(
            &mut ddb,
            SimTime::ZERO,
            &big,
            Strategy::Lui,
            ExtractOptions::default(),
        )
        .unwrap();
        let (ms, t_s) = index_document(
            &mut sdb,
            SimTime::ZERO,
            &big,
            Strategy::Lui,
            ExtractOptions::default(),
        )
        .unwrap();
        // SimpleDB chunks the ID lists into many 1 KB string values…
        assert!(ms.items >= md.items, "items {} vs {}", ms.items, md.items);
        assert!(sdb.stats().put_ops > ddb.stats().put_ops);
        // …and, decisively for the paper's Table 7, is far slower to load:
        // the cost gap follows from the instance time this burns.
        let (_, t_d) = (md, {
            let mut ddb2 = DynamoDb::default();
            index_document(
                &mut ddb2,
                SimTime::ZERO,
                &big,
                Strategy::Lui,
                ExtractOptions::default(),
            )
            .unwrap()
            .1
        });
        assert!(
            t_s.micros() > 10 * t_d.micros(),
            "SimpleDB {} vs DynamoDB {}",
            t_s.as_secs_f64(),
            t_d.as_secs_f64()
        );
    }
}
