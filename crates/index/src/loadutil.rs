//! Writing extracted index entries into a key-value store — the storage
//! half of the indexing module. The documents are "batched … in order to
//! minimize the number of calls needed to load the index into DynamoDB"
//! (paper Section 8.1): items are grouped into maximal `batch_put` calls.

use crate::store::{encode_entry, UuidGen};
use crate::strategy::{extract, ExtractOptions, IndexEntry, Strategy};
use amada_cloud::{KvError, KvItem, KvProfile, KvStore, SimTime};
use amada_xml::Document;
use std::collections::{BTreeMap, BTreeSet};

/// A full item primary key: `(table, hash_key, range_key)`.
pub type ItemKey = (&'static str, String, String);

/// Metrics of indexing one document (feed the work and cost models).
#[derive(Debug, Clone, Copy, Default)]
pub struct DocIndexing {
    /// Index entries extracted (`(key, document)` pairs).
    pub entries: u64,
    /// Store items written.
    pub items: u64,
    /// Raw entry bytes (the paper's `sr` contribution).
    pub entry_bytes: u64,
    /// API batches issued.
    pub batches: u64,
}

/// Extracts and stores the index entries of one document; returns the
/// metrics and the virtual completion time of the last write.
pub fn index_document(
    store: &mut dyn KvStore,
    now: SimTime,
    doc: &Document,
    strategy: Strategy,
    opts: ExtractOptions,
) -> Result<(DocIndexing, SimTime), KvError> {
    let entries = extract(doc, strategy, opts);
    write_entries(store, now, &entries, doc.uri())
}

/// Encodes and batch-writes pre-extracted entries.
pub fn write_entries(
    store: &mut dyn KvStore,
    now: SimTime,
    entries: &[IndexEntry],
    uri: &str,
) -> Result<(DocIndexing, SimTime), KvError> {
    let profile = store.profile();
    let mut uuids = UuidGen::for_document(uri);
    let mut metrics = DocIndexing {
        entries: entries.len() as u64,
        ..Default::default()
    };
    // Group items per destination table, preserving order.
    let mut per_table: BTreeMap<&'static str, Vec<KvItem>> = BTreeMap::new();
    for e in entries {
        metrics.entry_bytes += e.raw_bytes() as u64;
        for item in encode_entry(e, &profile, &mut uuids) {
            per_table.entry(e.table).or_default().push(item);
        }
    }
    let mut t = now;
    for (table, items) in per_table {
        store.ensure_table(table);
        metrics.items += items.len() as u64;
        for batch in items.chunks(profile.batch_put_limit) {
            metrics.batches += 1;
            t = store.batch_put(t, table, batch.to_vec())?;
        }
    }
    Ok((metrics, t))
}

/// The `(table, hash_key, range_key)` item keys that [`write_entries`]
/// produces for these entries — derived *without* touching the store, by
/// replaying the same per-document UUID sequence over the same encoding.
/// Because range keys are deterministic per document (seeded from its
/// URI), the keys of any version of a document can be reconstructed from
/// its bytes alone; stale-entry retraction is the set difference between
/// an old and a new version's keys.
pub fn entry_item_keys(entries: &[IndexEntry], profile: &KvProfile, uri: &str) -> Vec<ItemKey> {
    let mut uuids = UuidGen::for_document(uri);
    let mut keys = Vec::new();
    for e in entries {
        for item in encode_entry(e, profile, &mut uuids) {
            keys.push((e.table, item.hash_key, item.range_key));
        }
    }
    keys
}

/// Keys present in `old` but not in `new` — the items a replaced
/// document's previous version left behind, which retraction must delete.
pub fn stale_keys(old: &[ItemKey], new: &[ItemKey]) -> Vec<ItemKey> {
    let fresh: BTreeSet<&ItemKey> = new.iter().collect();
    let mut out: Vec<ItemKey> = old.iter().filter(|k| !fresh.contains(k)).cloned().collect();
    out.sort();
    out.dedup();
    out
}

/// Deletes the given item keys, grouped per table and chunked by the
/// backend's batch limit. Deletes of absent keys are idempotent successes
/// (billed at the backend's minimum), so calling this twice — or racing a
/// redelivered loader message — converges without tombstones. Returns the
/// number of batches issued and the virtual completion time.
pub fn retract_keys(
    store: &mut dyn KvStore,
    now: SimTime,
    keys: &[ItemKey],
) -> Result<(u64, SimTime), KvError> {
    let limit = store.profile().batch_put_limit;
    let mut per_table: BTreeMap<&'static str, Vec<(String, String)>> = BTreeMap::new();
    for (table, hash, range) in keys {
        per_table
            .entry(table)
            .or_default()
            .push((hash.clone(), range.clone()));
    }
    let mut batches = 0;
    let mut t = now;
    for (table, keys) in per_table {
        store.ensure_table(table);
        for chunk in keys.chunks(limit) {
            batches += 1;
            t = store.batch_delete(t, table, chunk)?;
        }
    }
    Ok((batches, t))
}

/// Indexes a whole document set sequentially (test / example convenience;
/// the warehouse's loader module parallelizes this across instances).
pub fn index_documents(
    store: &mut dyn KvStore,
    docs: &[Document],
    strategy: Strategy,
    opts: ExtractOptions,
) -> DocIndexing {
    let mut total = DocIndexing::default();
    let mut t = SimTime::ZERO;
    for d in docs {
        let (m, ready) =
            index_document(store, t, d, strategy, opts).expect("indexing must succeed");
        t = ready;
        total.entries += m.entries;
        total.items += m.items;
        total.entry_bytes += m.entry_bytes;
        total.batches += m.batches;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{DynamoDb, SimpleDb};

    fn doc() -> Document {
        Document::parse_str(
            "d.xml",
            "<painting id=\"1854-1\"><name>The Lion Hunt</name><year>1854</year></painting>",
        )
        .unwrap()
    }

    #[test]
    fn indexing_writes_retrievable_items() {
        let mut store = DynamoDb::default();
        let (m, t) = index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::Lu,
            ExtractOptions::default(),
        )
        .unwrap();
        assert!(m.entries > 0);
        assert!(m.items >= m.entries);
        assert!(t > SimTime::ZERO);
        let (items, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_MAIN, "ename")
            .unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn two_lupi_writes_both_tables() {
        let mut store = DynamoDb::default();
        index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::TwoLupi,
            ExtractOptions::default(),
        )
        .unwrap();
        let (p, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_PATH, "ename")
            .unwrap();
        let (i, _) = store
            .get(SimTime::ZERO, crate::strategy::TABLE_ID, "ename")
            .unwrap();
        assert!(!p.is_empty());
        assert!(!i.is_empty());
    }

    #[test]
    fn batching_reduces_api_requests() {
        let mut store = DynamoDb::default();
        let (m, _) = index_document(
            &mut store,
            SimTime::ZERO,
            &doc(),
            Strategy::Lup,
            ExtractOptions::default(),
        )
        .unwrap();
        assert!(m.batches < m.items || m.items <= 1);
        assert_eq!(store.stats().api_requests, m.batches);
        assert!(store.stats().put_ops > 0);
    }

    #[test]
    fn entry_item_keys_match_what_write_entries_stored() {
        let mut store = DynamoDb::default();
        let d = doc();
        let entries = extract(&d, Strategy::TwoLupi, ExtractOptions::default());
        write_entries(&mut store, SimTime::ZERO, &entries, d.uri()).unwrap();
        let keys = entry_item_keys(&entries, &store.profile(), d.uri());
        let mut stored: Vec<(String, String, String)> = store
            .peek_all()
            .into_iter()
            .map(|(t, i)| (t, i.hash_key, i.range_key))
            .collect();
        let mut derived: Vec<(String, String, String)> = keys
            .into_iter()
            .map(|(t, h, r)| (t.to_string(), h, r))
            .collect();
        stored.sort();
        derived.sort();
        assert_eq!(stored, derived);
    }

    #[test]
    fn identical_versions_have_no_stale_keys() {
        let d = doc();
        let entries = extract(&d, Strategy::Lup, ExtractOptions::default());
        let p = DynamoDb::default().profile();
        let keys = entry_item_keys(&entries, &p, d.uri());
        assert!(stale_keys(&keys, &keys).is_empty());
    }

    #[test]
    fn retracting_stale_keys_matches_a_fresh_build_of_the_new_version() {
        let v1 = Document::parse_str(
            "d.xml",
            "<painting id=\"1854-1\"><name>The Lion Hunt</name><year>1854</year></painting>",
        )
        .unwrap();
        // The new version drops <year> and renames the painting.
        let v2 = Document::parse_str(
            "d.xml",
            "<painting id=\"1854-1\"><name>The Tiger Hunt</name></painting>",
        )
        .unwrap();
        let opts = ExtractOptions::default();
        for strategy in [
            Strategy::Lu,
            Strategy::Lup,
            Strategy::Lui,
            Strategy::TwoLupi,
        ] {
            // Churned store: index v1, overwrite with v2, retract stale keys.
            let mut churned = DynamoDb::default();
            let old = extract(&v1, strategy, opts);
            let new = extract(&v2, strategy, opts);
            write_entries(&mut churned, SimTime::ZERO, &old, v1.uri()).unwrap();
            write_entries(&mut churned, SimTime::ZERO, &new, v2.uri()).unwrap();
            let p = churned.profile();
            let stale = stale_keys(
                &entry_item_keys(&old, &p, v1.uri()),
                &entry_item_keys(&new, &p, v2.uri()),
            );
            assert!(
                !stale.is_empty(),
                "{strategy:?} shrink must leave stale keys"
            );
            retract_keys(&mut churned, SimTime::ZERO, &stale).unwrap();
            // Fresh store: index only v2.
            let mut fresh = DynamoDb::default();
            write_entries(&mut fresh, SimTime::ZERO, &new, v2.uri()).unwrap();
            for t in strategy.tables() {
                fresh.ensure_table(t);
            }
            assert_eq!(
                churned.peek_all(),
                fresh.peek_all(),
                "{strategy:?} retraction must be byte-identical to a fresh build"
            );
        }
    }

    #[test]
    fn retraction_is_idempotent() {
        let mut store = DynamoDb::default();
        let d = doc();
        let entries = extract(&d, Strategy::Lu, ExtractOptions::default());
        write_entries(&mut store, SimTime::ZERO, &entries, d.uri()).unwrap();
        let keys = entry_item_keys(&entries, &store.profile(), d.uri());
        retract_keys(&mut store, SimTime::ZERO, &keys).unwrap();
        assert!(store.peek_all().is_empty());
        // Second pass deletes nothing but still succeeds (and still bills).
        let before = store.stats().put_ops;
        retract_keys(&mut store, SimTime::ZERO, &keys).unwrap();
        assert!(store.peek_all().is_empty());
        assert!(store.stats().put_ops > before);
    }

    #[test]
    fn simpledb_needs_more_items_for_lui() {
        // A frequent label and a frequent word, so per-key ID lists exceed
        // the 1 KB SimpleDB value cap and must chunk; DynamoDB stores each
        // list as one binary value.
        let big = {
            let mut x = String::from("<r>");
            for _ in 0..2000 {
                x.push_str("<a>gold</a>");
            }
            x.push_str("</r>");
            Document::parse_str("big.xml", &x).unwrap()
        };
        let mut ddb = DynamoDb::default();
        let mut sdb = SimpleDb::default();
        let (md, _) = index_document(
            &mut ddb,
            SimTime::ZERO,
            &big,
            Strategy::Lui,
            ExtractOptions::default(),
        )
        .unwrap();
        let (ms, t_s) = index_document(
            &mut sdb,
            SimTime::ZERO,
            &big,
            Strategy::Lui,
            ExtractOptions::default(),
        )
        .unwrap();
        // SimpleDB chunks the ID lists into many 1 KB string values…
        assert!(ms.items >= md.items, "items {} vs {}", ms.items, md.items);
        assert!(sdb.stats().put_ops > ddb.stats().put_ops);
        // …and, decisively for the paper's Table 7, is far slower to load:
        // the cost gap follows from the instance time this burns.
        let (_, t_d) = (md, {
            let mut ddb2 = DynamoDb::default();
            index_document(
                &mut ddb2,
                SimTime::ZERO,
                &big,
                Strategy::Lui,
                ExtractOptions::default(),
            )
            .unwrap()
            .1
        });
        assert!(
            t_s.micros() > 10 * t_d.micros(),
            "SimpleDB {} vs DynamoDB {}",
            t_s.as_secs_f64(),
            t_d.as_secs_f64()
        );
    }
}
