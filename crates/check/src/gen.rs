//! Seeded case generation: randomized corpora (xmark fragments plus
//! adversarial shapes) and randomized queries over the corpus vocabulary.
//!
//! Everything derives deterministically from `(seed, case index)`, so a
//! reproducer's seed pair regenerates the identical case.

use amada_pattern::{
    parse_query, Axis, Bound, NodeTest, Output, PatternNode, Predicate, Query, TreePattern,
};
use amada_rng::StdRng;
use amada_xmark::{generate_document, CorpusConfig};
use amada_xml::{tokenize, Document, NodeKind};

/// One churn operation, applied to the warehouse after the initial
/// corpus is uploaded and indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// (Re-)upload `uri` with `xml`: a grown, shrunk or byte-identical
    /// replacement — or a fresh document under a previously deleted URI.
    Upload { uri: String, xml: String },
    /// Delete `uri` from the warehouse.
    Delete { uri: String },
    /// Drain the loader queue (an index build) mid-sequence.
    Build,
}

/// One generated check case: a corpus, a query text (both of which
/// re-parse deterministically) and an optional churn script.
#[derive(Debug, Clone)]
pub struct Case {
    /// Master seed the case derives from.
    pub seed: u64,
    /// Case index under the seed.
    pub index: usize,
    /// `(uri, xml)` corpus documents.
    pub docs: Vec<(String, String)>,
    /// Churn script applied after the initial corpus is indexed.
    pub churn: Vec<ChurnOp>,
    /// Canonical query text (round-trips through the parser).
    pub query: String,
    /// Whether full-text word keys are extracted and used.
    pub index_words: bool,
}

/// Generates the case for `(seed, index)`.
pub fn generate_case(seed: u64, index: usize) -> Case {
    let mut rng = StdRng::seed_from_u64(
        seed ^ (index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xA3ADA),
    );
    let docs = gen_docs(&mut rng, index);
    let churn = gen_churn(&mut rng, &docs);
    // Queries draw from both the initial and the post-churn corpus, so
    // look-ups target retracted content as often as surviving content.
    let mut union = docs.clone();
    union.extend(final_docs(&docs, &churn));
    let vocab = Vocab::collect(&union);
    let query = gen_query(&mut rng, &vocab);
    Case {
        seed,
        index,
        docs,
        churn,
        query,
        index_words: rng.gen_bool(0.8),
    }
}

/// The corpus that survives a case's churn script: replacements applied
/// in place, deletions removed, re-adds appended.
pub fn final_docs(docs: &[(String, String)], churn: &[ChurnOp]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = docs.to_vec();
    for op in churn {
        match op {
            ChurnOp::Upload { uri, xml } => match out.iter_mut().find(|(u, _)| u == uri) {
                Some(slot) => slot.1 = xml.clone(),
                None => out.push((uri.clone(), xml.clone())),
            },
            ChurnOp::Delete { uri } => out.retain(|(u, _)| u != uri),
            ChurnOp::Build => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Corpus generation
// ---------------------------------------------------------------------------

const ELEMENT_POOL: &[&str] = &["a", "b", "c", "item", "name", "entry", "note"];
const ATTR_POOL: &[&str] = &["id", "ref", "lang"];
const TEXT_POOL: &[&str] = &[
    "",
    "alpha",
    "beta gamma",
    "Olympia 1863",
    "Žluťoučký kůň",
    "naïve café",
    "東京 大阪",
    "price 42",
    "x",
];

fn gen_docs(rng: &mut StdRng, case_index: usize) -> Vec<(String, String)> {
    let n = rng.gen_range(1..=5usize);
    (0..n)
        .map(|i| {
            let uri = format!("case{case_index}-doc{i}.xml");
            let xml = if rng.gen_bool(0.4) {
                // A real xmark fragment, at a small target size.
                let cfg = CorpusConfig {
                    seed: rng.next_u64(),
                    num_documents: 64,
                    target_doc_bytes: rng.gen_range(300..1500usize),
                    ..Default::default()
                };
                generate_document(&cfg, rng.gen_range(0..64usize)).xml
            } else {
                gen_adversarial(rng)
            };
            (uri, xml)
        })
        .collect()
}

/// A churn script over the generated corpus: the mutation kinds that
/// have historically hidden stale-index bugs — grown, shrunk and
/// byte-identical re-uploads, deletes, and delete-then-re-add under the
/// same URI — interleaved with mid-sequence index builds.
fn gen_churn(rng: &mut StdRng, docs: &[(String, String)]) -> Vec<ChurnOp> {
    if rng.gen_bool(0.5) {
        return Vec::new();
    }
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        let (uri, xml) = rng.choose(docs).clone();
        match rng.gen_range(0..5u32) {
            // Grown: the old content survives under a new root, plus new
            // keys — retraction must remove nothing that still exists.
            0 => ops.push(ChurnOp::Upload {
                uri,
                xml: format!("<r>{xml}<grown><name>beta gamma</name></grown></r>"),
            }),
            // Shrunk: almost every old key goes stale at once.
            1 => ops.push(ChurnOp::Upload {
                uri,
                xml: "<item><name>alpha</name></item>".to_string(),
            }),
            // Byte-identical: a replace that must retract nothing.
            2 => ops.push(ChurnOp::Upload { uri, xml }),
            3 => ops.push(ChurnOp::Delete { uri }),
            // Delete, then re-add different content under the same URI —
            // sometimes with a build (and its retraction) in between.
            _ => {
                ops.push(ChurnOp::Delete { uri: uri.clone() });
                if rng.gen_bool(0.5) {
                    ops.push(ChurnOp::Build);
                }
                let xml = gen_adversarial(rng);
                ops.push(ChurnOp::Upload { uri, xml });
            }
        }
        if rng.gen_bool(0.3) {
            ops.push(ChurnOp::Build);
        }
    }
    ops
}

/// An adversarial document: deep recursion, repeated labels, empty / huge
/// text, unicode words — the shapes the xmark workload never exercises.
fn gen_adversarial(rng: &mut StdRng) -> String {
    let mut xml = String::new();
    match rng.gen_range(0..3u32) {
        // A deep chain of (often repeated) labels.
        0 => {
            let depth = rng.gen_range(8..=28usize);
            let labels: Vec<&str> = (0..depth)
                .map(|_| {
                    if rng.gen_bool(0.6) {
                        ELEMENT_POOL[0]
                    } else {
                        *rng.choose(ELEMENT_POOL)
                    }
                })
                .collect();
            for l in &labels {
                xml.push('<');
                xml.push_str(l);
                xml.push('>');
            }
            xml.push_str(gen_text(rng).as_str());
            for l in labels.iter().rev() {
                xml.push_str("</");
                xml.push_str(l);
                xml.push('>');
            }
        }
        // A bushy tree with repeated sibling labels and attributes.
        1 => {
            let max_depth = rng.gen_range(2..=4usize);
            gen_elem(rng, max_depth, &mut xml);
        }
        // Text-focused: shallow, with empty / huge / unicode values.
        _ => {
            xml.push_str("<entry>");
            for _ in 0..rng.gen_range(1..=6usize) {
                let label = *rng.choose(ELEMENT_POOL);
                xml.push('<');
                xml.push_str(label);
                if rng.gen_bool(0.3) {
                    xml.push_str(&format!(" {}=\"{}\"", rng.choose(ATTR_POOL), gen_attr(rng)));
                }
                xml.push('>');
                xml.push_str(gen_text(rng).as_str());
                xml.push_str("</");
                xml.push_str(label);
                xml.push('>');
            }
            xml.push_str("</entry>");
        }
    }
    xml
}

fn gen_elem(rng: &mut StdRng, depth: usize, out: &mut String) {
    let label = *rng.choose(ELEMENT_POOL);
    out.push('<');
    out.push_str(label);
    for a in ATTR_POOL {
        if rng.gen_bool(0.25) {
            out.push_str(&format!(" {a}=\"{}\"", gen_attr(rng)));
        }
    }
    out.push('>');
    if depth == 0 {
        out.push_str(gen_text(rng).as_str());
    } else {
        for _ in 0..rng.gen_range(1..=4usize) {
            if rng.gen_bool(0.2) {
                out.push_str(gen_text(rng).as_str());
            } else {
                gen_elem(rng, depth - 1, out);
            }
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

fn gen_text(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.08) {
        // Huge text: overflows the SimpleDB value cap and the 512-byte
        // key-value truncation when used as an equality constant.
        let unit = *rng.choose(&["lorem ipsum dolor ", "kůň 東京 "]);
        unit.repeat(rng.gen_range(40..160usize))
    } else {
        (*rng.choose(TEXT_POOL)).to_string()
    }
}

fn gen_attr(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.1) {
        format!("v{}", "x".repeat(rng.gen_range(500..700usize)))
    } else {
        (*rng.choose(&["1863-1", "r7", "en", "naïve", "42", "y-2"])).to_string()
    }
}

// ---------------------------------------------------------------------------
// Vocabulary: what the corpus actually contains
// ---------------------------------------------------------------------------

/// Labels and values harvested from the generated corpus, from which
/// queries draw so look-ups actually hit.
struct Vocab {
    elements: Vec<String>,
    attributes: Vec<String>,
    attr_values: Vec<String>,
    texts: Vec<String>,
    words: Vec<String>,
}

/// Characters that would need escaping inside the query grammar's quoted
/// strings; constants containing them are simply not drawn.
fn safe_const(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 48
        && !s
            .chars()
            .any(|c| c.is_control() || matches!(c, '"' | '{' | '}' | '[' | ']' | '$' | ';' | ','))
}

fn safe_label(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-'))
}

impl Vocab {
    fn collect(docs: &[(String, String)]) -> Vocab {
        let mut v = Vocab {
            elements: Vec::new(),
            attributes: Vec::new(),
            attr_values: Vec::new(),
            texts: Vec::new(),
            words: Vec::new(),
        };
        for (uri, xml) in docs {
            let doc = Document::parse_str(uri.clone(), xml).expect("generated XML must parse");
            for id in doc.all_nodes() {
                match doc.kind(id) {
                    NodeKind::Element => {
                        if let Some(n) = doc.name(id) {
                            if safe_label(n) {
                                push_capped(&mut v.elements, n.to_string(), 64);
                            }
                        }
                    }
                    NodeKind::Attribute => {
                        if let Some(n) = doc.name(id) {
                            if safe_label(n) {
                                push_capped(&mut v.attributes, n.to_string(), 16);
                            }
                        }
                        if let Some(val) = doc.value(id) {
                            if safe_const(val) {
                                push_capped(&mut v.attr_values, val.to_string(), 32);
                            }
                        }
                    }
                    NodeKind::Text => {
                        if let Some(val) = doc.value(id) {
                            if safe_const(val) {
                                push_capped(&mut v.texts, val.to_string(), 32);
                            }
                            for w in tokenize(val).into_iter().take(4) {
                                if safe_const(&w) {
                                    push_capped(&mut v.words, w, 48);
                                }
                            }
                        }
                    }
                }
            }
        }
        if v.elements.is_empty() {
            v.elements.push("a".to_string());
        }
        v
    }
}

fn push_capped(v: &mut Vec<String>, s: String, cap: usize) {
    if v.len() < cap && !v.contains(&s) {
        v.push(s);
    }
}

// ---------------------------------------------------------------------------
// Query generation
// ---------------------------------------------------------------------------

/// Labels deliberately absent from the corpus: empty look-ups must also
/// agree across strategies.
const PHANTOM_LABELS: &[&str] = &["zzz", "phantom", "nosuch"];

fn gen_query(rng: &mut StdRng, vocab: &Vocab) -> String {
    let npatterns = if rng.gen_bool(0.2) { 2 } else { 1 };
    let mut patterns: Vec<TreePattern> = (0..npatterns).map(|_| gen_pattern(rng, vocab)).collect();
    if npatterns == 2 {
        // Tie the patterns with a value join (the paper's dashed lines).
        for p in patterns.iter_mut() {
            let site = rng.gen_range(0..p.nodes.len());
            p.nodes[site].outputs.push(Output::Val {
                join_var: Some("j".to_string()),
            });
        }
    } else if rng.gen_bool(0.1) {
        // A within-pattern repeated variable is an equality constraint.
        let p = &mut patterns[0];
        if p.nodes.len() >= 2 {
            for site in [0, p.nodes.len() - 1] {
                p.nodes[site].outputs.push(Output::Val {
                    join_var: Some("s".to_string()),
                });
            }
        }
    }
    let query = Query {
        patterns,
        name: None,
    };
    let text = query.to_string();
    // The canonical text must re-parse; a failure here is a generator (or
    // parser round-trip) bug and aborts the run loudly.
    match parse_query(&text) {
        Ok(_) => text,
        Err(e) => panic!("generated query does not re-parse: {text}\n  {e:?}"),
    }
}

fn pick_element(rng: &mut StdRng, vocab: &Vocab) -> String {
    if rng.gen_bool(0.88) {
        rng.choose(&vocab.elements).clone()
    } else {
        (*rng.choose(PHANTOM_LABELS)).to_string()
    }
}

fn gen_pattern(rng: &mut StdRng, vocab: &Vocab) -> TreePattern {
    let n = rng.gen_range(1..=5usize);
    let root_axis = if rng.gen_bool(0.75) {
        Axis::Descendant
    } else {
        Axis::Child
    };
    let mut nodes = vec![PatternNode {
        test: NodeTest::Element(pick_element(rng, vocab)),
        axis: root_axis,
        parent: None,
        children: Vec::new(),
        outputs: Vec::new(),
        predicate: None,
    }];
    for _ in 1..n {
        let parents: Vec<usize> = (0..nodes.len())
            .filter(|&i| !nodes[i].test.is_attribute())
            .collect();
        let parent = *rng.choose(&parents);
        let as_attribute = rng.gen_bool(0.2) && !vocab.attributes.is_empty();
        let (test, axis) = if as_attribute {
            (
                NodeTest::Attribute(rng.choose(&vocab.attributes).clone()),
                Axis::Child,
            )
        } else {
            (
                NodeTest::Element(pick_element(rng, vocab)),
                if rng.gen_bool(0.5) {
                    Axis::Child
                } else {
                    Axis::Descendant
                },
            )
        };
        let idx = nodes.len();
        nodes[parent].children.push(idx);
        nodes.push(PatternNode {
            test,
            axis,
            parent: Some(parent),
            children: Vec::new(),
            outputs: Vec::new(),
            predicate: None,
        });
    }
    for node in nodes.iter_mut() {
        let is_attr = node.test.is_attribute();
        if rng.gen_bool(0.35) {
            node.predicate = Some(gen_predicate(rng, vocab, is_attr));
        }
        if rng.gen_bool(0.3) {
            node.outputs.push(Output::Val { join_var: None });
        }
        if rng.gen_bool(0.08) && !is_attr {
            node.outputs.push(Output::Cont);
        }
    }
    TreePattern { nodes }
}

fn gen_predicate(rng: &mut StdRng, vocab: &Vocab, is_attribute: bool) -> Predicate {
    let pick = |rng: &mut StdRng, pool: &[String], fallback: &str| -> String {
        if pool.is_empty() {
            fallback.to_string()
        } else {
            rng.choose(pool).clone()
        }
    };
    if is_attribute {
        if rng.gen_bool(0.7) {
            Predicate::Eq(pick(rng, &vocab.attr_values, "1863-1"))
        } else {
            gen_range(rng, &vocab.attr_values)
        }
    } else {
        match rng.gen_range(0..3u32) {
            0 => Predicate::Eq(pick(rng, &vocab.texts, "alpha")),
            1 => Predicate::Contains(pick(rng, &vocab.words, "alpha")),
            _ => gen_range(rng, &vocab.texts),
        }
    }
}

fn gen_range(rng: &mut StdRng, pool: &[String]) -> Predicate {
    let bound = |rng: &mut StdRng, pool: &[String]| -> Bound {
        let value = if !pool.is_empty() && rng.gen_bool(0.7) {
            rng.choose(pool).clone()
        } else {
            format!("{}", rng.gen_range(0..2000u32))
        };
        Bound {
            value,
            inclusive: rng.gen_bool(0.5),
        }
    };
    // At least one bound, or the annotation would render as a bare `val`.
    match rng.gen_range(0..3u32) {
        0 => Predicate::Range {
            lo: Some(bound(rng, pool)),
            hi: None,
        },
        1 => Predicate::Range {
            lo: None,
            hi: Some(bound(rng, pool)),
        },
        _ => Predicate::Range {
            lo: Some(bound(rng, pool)),
            hi: Some(bound(rng, pool)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for index in [0, 7, 31] {
            let a = generate_case(42, index);
            let b = generate_case(42, index);
            assert_eq!(a.docs, b.docs);
            assert_eq!(a.churn, b.churn);
            assert_eq!(a.query, b.query);
            assert_eq!(a.index_words, b.index_words);
        }
    }

    #[test]
    fn cases_vary_across_indices_and_seeds() {
        let a = generate_case(42, 0);
        let b = generate_case(42, 1);
        let c = generate_case(43, 0);
        assert!(a.query != b.query || a.docs != b.docs);
        assert!(a.query != c.query || a.docs != c.docs);
    }

    #[test]
    fn generated_documents_parse_and_queries_round_trip() {
        for index in 0..40 {
            let case = generate_case(7, index);
            for (uri, xml) in &case.docs {
                Document::parse_str(uri.clone(), xml).expect("doc must parse");
            }
            let q = parse_query(&case.query).expect("query must parse");
            assert_eq!(q.to_string(), case.query, "display must round-trip");
        }
    }

    #[test]
    fn churn_scripts_cover_every_mutation_kind_and_stay_parseable() {
        let (mut uploads, mut deletes, mut builds, mut identical) = (0, 0, 0, 0);
        for index in 0..60 {
            let case = generate_case(11, index);
            for op in &case.churn {
                match op {
                    ChurnOp::Upload { uri, xml } => {
                        uploads += 1;
                        if case.docs.iter().any(|(u, x)| u == uri && x == xml) {
                            identical += 1;
                        }
                        Document::parse_str(uri.clone(), xml).expect("churn XML must parse");
                    }
                    ChurnOp::Delete { .. } => deletes += 1,
                    ChurnOp::Build => builds += 1,
                }
            }
            for (uri, xml) in final_docs(&case.docs, &case.churn) {
                Document::parse_str(uri, &xml).expect("final corpus must parse");
            }
        }
        assert!(uploads > 0 && deletes > 0 && builds > 0 && identical > 0);
    }

    #[test]
    fn final_docs_replays_replace_delete_and_readd() {
        let docs = vec![
            ("a.xml".to_string(), "<a/>".to_string()),
            ("b.xml".to_string(), "<b/>".to_string()),
        ];
        let churn = vec![
            ChurnOp::Upload {
                uri: "a.xml".into(),
                xml: "<a2/>".into(),
            },
            ChurnOp::Delete {
                uri: "b.xml".into(),
            },
            ChurnOp::Build,
            ChurnOp::Upload {
                uri: "b.xml".into(),
                xml: "<b2/>".into(),
            },
        ];
        assert_eq!(
            final_docs(&docs, &churn),
            vec![
                ("a.xml".to_string(), "<a2/>".to_string()),
                ("b.xml".to_string(), "<b2/>".to_string()),
            ]
        );
    }
}
