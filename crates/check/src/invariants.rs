//! The reusable billing-invariant registry (oracle E).
//!
//! Two kinds of invariants live here:
//!
//! * [`ledger_matches_spans`] — the recorder's spans are an independent
//!   view of the same requests the billing counters meter; summing span
//!   charges per service must reproduce the ledger exactly (to within
//!   per-span rounding for the one volume-priced service). Lifted out of
//!   `tests/observability.rs` so the harness and the test suite share one
//!   implementation.
//! * [`billing_oracle`] — metamorphic invariances checked by running the
//!   same tiny warehouse pipeline under configuration changes that must
//!   not change the bill (recorder on/off, prewarm on/off, explicit
//!   zero fault rates) or must not change billed index operations and
//!   answers (batching off).

use crate::gen::Case;
use amada_cloud::{FaultConfig, Money, ServiceKind, Span, World};
use amada_core::{Warehouse, WarehouseConfig};
use amada_index::ExtractOptions;
use amada_pattern::Query;

/// Checks that per-service span charges reproduce the ledger.
///
/// Exact for the index store, S3 and SQS (per-request pricing); egress is
/// volume-priced, so each span rounds its own bytes to a picodollar while
/// the ledger rounds the total once — they may differ by at most one
/// picodollar per span.
pub fn ledger_matches_spans(spans: &[Span], world: &World) -> Result<(), String> {
    let p = &world.prices;
    let billed_for = |svc: ServiceKind| -> Money {
        spans
            .iter()
            .filter(|s| s.service == svc)
            .map(|s| s.billed)
            .sum()
    };

    let kv = world.kv.stats();
    let expected = p.idx_put * kv.put_ops + p.idx_get * kv.get_ops;
    if billed_for(ServiceKind::Kv) != expected {
        return Err(format!(
            "kv spans ({:?}) do not reconcile with the ledger ({expected:?})",
            billed_for(ServiceKind::Kv)
        ));
    }

    // Scans are billed a GET-priced request plus a volume-priced per-GB
    // charge; like egress, each scan span rounds its own bytes while the
    // ledger rounds the total once, so the reconciliation is exact only
    // when no scans ran.
    let s3 = world.s3.stats();
    let expected = p.st_put * s3.put_requests
        + p.st_get * (s3.get_requests + s3.scan_requests)
        + p.st_scan_gb.per_gb(s3.bytes_scanned);
    let scan_spans = spans
        .iter()
        .filter(|s| s.service == ServiceKind::S3 && s.op == "scan")
        .count() as i128;
    let diff = billed_for(ServiceKind::S3).signed_diff(expected).abs();
    if diff > scan_spans {
        return Err(format!(
            "s3 spans ({:?}) off the ledger ({expected:?}) by {diff} picodollars \
             over {scan_spans} scan spans",
            billed_for(ServiceKind::S3)
        ));
    }

    let sqs = world.sqs.stats();
    let sqs_spans = spans
        .iter()
        .filter(|s| s.service == ServiceKind::Sqs)
        .count() as u64;
    if sqs_spans != sqs.requests {
        return Err(format!(
            "{sqs_spans} SQS spans for {} billed SQS requests",
            sqs.requests
        ));
    }
    let expected = p.qs_request * sqs.requests;
    if billed_for(ServiceKind::Sqs) != expected {
        return Err(format!(
            "sqs spans ({:?}) do not reconcile with the ledger ({expected:?})",
            billed_for(ServiceKind::Sqs)
        ));
    }

    let egress_spans = spans
        .iter()
        .filter(|s| s.service == ServiceKind::Egress)
        .count() as i128;
    // The ledger charges egress on downloaded results *and* on the bytes
    // scans returned (cost_since mirrors this split).
    let ledger_egress =
        p.egress_gb.per_gb(world.egress_bytes) + p.egress_gb.per_gb(s3.scan_returned_bytes);
    let diff = billed_for(ServiceKind::Egress)
        .signed_diff(ledger_egress)
        .abs();
    if diff > egress_spans.max(1) {
        return Err(format!(
            "egress spans off the ledger by {diff} picodollars over {egress_spans} spans"
        ));
    }

    if billed_for(ServiceKind::Actor) != Money::ZERO {
        return Err("actor spans are phases and must carry no charges".to_string());
    }
    Ok(())
}

/// One pipeline run's observable output: the Debug renderings of every
/// report, which cover virtual times, bills, result tuples and counters.
fn run_pipeline(
    case: &Case,
    query: &Query,
    tweak: impl FnOnce(&mut WarehouseConfig),
) -> (Vec<String>, Vec<String>, Warehouse) {
    // Rotate the strategy with the case index so all five (the four paper
    // strategies plus pushdown) are exercised across a seed's cases.
    let strategy = crate::case_strategy(case.index);
    let mut cfg = WarehouseConfig::with_strategy(strategy);
    cfg.extract = ExtractOptions {
        index_words: case.index_words,
    };
    tweak(&mut cfg);
    let mut w = Warehouse::new(cfg);
    w.upload_documents(case.docs.clone());
    let build = format!("{:?}", w.build_index());
    let costed = w.run_query(query);
    let answers = crate::oracles::canon_joined(&costed.exec.results);
    let renders = vec![
        build,
        format!("{costed:?}"),
        format!("{:?}", w.world().cost_report()),
    ];
    (renders, answers, w)
}

/// Runs the metamorphic billing invariances on one case.
pub fn billing_oracle(case: &Case, query: &Query) -> Result<(), String> {
    let (base, base_answers, base_w) = run_pipeline(case, query, |_| {});

    // Recording is observation-only — and while it is on, the spans must
    // reconcile with the ledger.
    let (recorded, _, recorded_w) = run_pipeline(case, query, |cfg| cfg.host.record = true);
    if recorded != base {
        return Err(diverged("recorder on vs off", &base, &recorded));
    }
    let spans = recorded_w.spans();
    if spans.is_empty() {
        return Err("recorder collected no spans".to_string());
    }
    ledger_matches_spans(&spans, recorded_w.world())?;

    // Host-side prewarm parallelism shapes only the wall clock.
    let (cold, _, _) = run_pipeline(case, query, |cfg| cfg.host.prewarm = false);
    if cold != base {
        return Err(diverged("prewarm off", &base, &cold));
    }

    // An explicit zero-rate fault config is identical to the default.
    let (faultless, _, _) = run_pipeline(case, query, |cfg| {
        cfg.faults = FaultConfig {
            seed: case.seed ^ case.index as u64,
            s3_rate: 0.0,
            kv_rate: 0.0,
            sqs_rate: 0.0,
        }
    });
    if faultless != base {
        return Err(diverged("explicit zero fault rates", &base, &faultless));
    }

    // Batching off multiplies API round trips (timings legitimately shift)
    // but must not change billed capacity units — both backends bill per
    // item / attribute, not per request — nor, of course, the answers.
    let (_, unbatched_answers, unbatched_w) =
        run_pipeline(case, query, |cfg| cfg.kv_tuning.disable_batching = true);
    let (b, u) = (base_w.world().kv.stats(), unbatched_w.world().kv.stats());
    if (b.put_ops, b.get_ops) != (u.put_ops, u.get_ops) {
        return Err(format!(
            "batching off changed billed index ops: {}/{} puts, {}/{} gets",
            b.put_ops, u.put_ops, b.get_ops, u.get_ops
        ));
    }
    if base_answers != unbatched_answers {
        return Err(format!(
            "batching off changed answers: {base_answers:?} vs {unbatched_answers:?}"
        ));
    }
    Ok(())
}

fn diverged(what: &str, base: &[String], variant: &[String]) -> String {
    let mismatch = base
        .iter()
        .zip(variant)
        .find(|(a, b)| a != b)
        .map(|(a, b)| format!("\n  base:    {a}\n  variant: {b}"))
        .unwrap_or_default();
    format!("{what} changed the observable run{mismatch}")
}
