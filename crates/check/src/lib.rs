//! # amada-check
//!
//! A seeded, shrinking differential / metamorphic correctness harness for
//! the warehouse (run as `repro check --seed N --cases M`).
//!
//! The paper's whole argument rests on an equivalence claim: all four
//! indexing strategies and the no-index scan return *identical* query
//! answers, differing only in time and dollars (Sections 5–8). This crate
//! turns that claim — and the store and billing contracts underneath it —
//! into machine-checked oracles over randomized corpora and queries:
//!
//! * **A — answers**: per strategy and backend profile, evaluating the
//!   query on the index's candidate documents returns exactly the
//!   no-index scan's answers.
//! * **B — containment**: candidate sets obey LU ⊇ LUP ⊇ LUI = 2LUPI
//!   (the paper's Table 5 invariant).
//! * **C — twig vs. naive**: the holistic twig join agrees with the
//!   naive backtracking evaluator on every document.
//! * **D — round-trip**: `encode_entry` → backend items → `decode_*` is
//!   lossless for every extracted entry under both backend profiles.
//! * **E — billing** (sampled): the recorder's span charges reconcile
//!   with the ledger exactly, and the metamorphic invariances hold
//!   (recorder on/off, explicit zero fault rates, batching on/off).
//! * **F — churn**: when the case carries a churn script (re-uploads,
//!   deletes, delete-then-re-add), replaying it against a warehouse must
//!   converge — index bytes, file store, accounting and answers — to a
//!   fresh build of the surviving corpus.
//!
//! On a violation the failing case is *shrunk* — fewer documents, fewer
//! churn operations, smaller documents, smaller query — and printed as a
//! self-contained reproducer.

pub mod gen;
pub mod invariants;
pub mod oracles;
pub mod shrink;

use amada_index::Strategy;

pub use gen::{final_docs, generate_case, Case, ChurnOp};
pub use oracles::{check_case, Violation};
pub use shrink::{shrink_case, Reproducer};

/// The strategy a case exercises in warehouse-level oracles (billing,
/// churn): rotates through all five — the four paper strategies plus
/// pushdown — with the case index.
pub fn case_strategy(index: usize) -> Strategy {
    const ROTATION: [Strategy; 5] = [
        Strategy::Lu,
        Strategy::Lup,
        Strategy::Lui,
        Strategy::TwoLupi,
        Strategy::LupPd,
    ];
    ROTATION[index % ROTATION.len()]
}

/// A deliberate bug injected into the look-up path, used to validate that
/// the harness actually catches (and shrinks) strategy-equivalence bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// No injected bug: check the real implementation.
    #[default]
    None,
    /// LUP without the data-path filter: candidates are every URI owning
    /// the terminal key of each query path, skipping `data_path_matches`.
    /// Breaks the containment oracle (LUP ⊄ LU) whenever a document has a
    /// path's terminal label but lacks an inner label.
    SkipLupPathFilter,
    /// The front end forgets every pending retraction before each index
    /// build: stale entries from replaced documents are never deleted.
    /// Breaks the churn oracle (churned index ≠ fresh build) on any
    /// key-changing re-upload.
    DropRetractions,
}

/// Harness configuration for one seed.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Master seed; every case derives from `(seed, case index)`.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Run the (heavier) billing oracle on every Nth case; 0 disables it.
    pub billing_every: usize,
    /// Injected bug, for harness self-validation.
    pub mutation: Mutation,
}

impl CheckConfig {
    /// The default configuration for a seed.
    pub fn new(seed: u64, cases: usize) -> CheckConfig {
        CheckConfig {
            seed,
            cases,
            billing_every: 10,
            mutation: Mutation::None,
        }
    }
}

/// Outcome of a seed's run: how many cases passed, and the shrunk
/// reproducer of the first violation (if any).
#[derive(Debug)]
pub struct CheckOutcome {
    /// Cases that passed before the run stopped.
    pub cases_passed: usize,
    /// The first violation, shrunk; `None` when every case passed.
    pub failure: Option<Reproducer>,
}

impl CheckOutcome {
    /// True when every case passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs `cfg.cases` seeded cases, stopping at (and shrinking) the first
/// violation.
pub fn run_check(cfg: &CheckConfig) -> CheckOutcome {
    for index in 0..cfg.cases {
        let case = generate_case(cfg.seed, index);
        let billing = cfg.billing_every > 0 && index % cfg.billing_every == 0;
        if check_case(&case, cfg.mutation, billing).is_err() {
            let reproducer = shrink_case(&case, cfg.mutation, billing);
            return CheckOutcome {
                cases_passed: index,
                failure: Some(reproducer),
            };
        }
    }
    CheckOutcome {
        cases_passed: cfg.cases,
        failure: None,
    }
}
