//! Greedy shrinking of a failing case, and the printable reproducer.
//!
//! The shrinker minimizes along three axes, in order of payoff: drop
//! whole documents, remove subtrees within the surviving documents, then
//! simplify the query (drop a pattern, a leaf node, a predicate, an
//! output annotation). Every candidate reduction is kept only if the
//! reduced case *still fails* the same harness configuration; the whole
//! process is bounded by a re-check budget so a slow oracle cannot stall
//! the run.

use crate::gen::{Case, ChurnOp};
use crate::oracles::{check_case, Violation};
use crate::Mutation;
use amada_pattern::{parse_query, Query};
use amada_xml::serialize::{escape_attr, escape_text};
use amada_xml::{Document, NodeId, NodeKind};
use std::fmt;

/// Maximum number of re-checks a shrink run may spend.
const SHRINK_BUDGET: usize = 300;

/// A self-contained reproducer for one violation: the (shrunk) corpus and
/// query inline, plus the seed coordinates of the original case.
#[derive(Debug)]
pub struct Reproducer {
    /// The shrunk failing case (seed/index still identify the original).
    pub case: Case,
    /// The violation the shrunk case triggers.
    pub violation: Violation,
    /// The injected mutation the harness ran with, if any.
    pub mutation: Mutation,
    /// Re-checks spent shrinking.
    pub rechecks: usize,
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "================ amada-check reproducer ================"
        )?;
        writeln!(
            f,
            "seed {} case {} (regenerate the unshrunk case with: repro check --seed {} --cases {})",
            self.case.seed,
            self.case.index,
            self.case.seed,
            self.case.index + 1
        )?;
        if self.mutation != Mutation::None {
            writeln!(f, "injected mutation: {:?}", self.mutation)?;
        }
        writeln!(f, "index_words: {}", self.case.index_words)?;
        writeln!(f, "query: {}", self.case.query)?;
        writeln!(f, "documents ({}):", self.case.docs.len())?;
        for (uri, xml) in &self.case.docs {
            writeln!(f, "--- {uri} ---")?;
            writeln!(f, "{xml}")?;
        }
        if !self.case.churn.is_empty() {
            writeln!(f, "churn ({} ops):", self.case.churn.len())?;
            for op in &self.case.churn {
                match op {
                    ChurnOp::Upload { uri, xml } => writeln!(f, "  upload {uri}: {xml}")?,
                    ChurnOp::Delete { uri } => writeln!(f, "  delete {uri}")?,
                    ChurnOp::Build => writeln!(f, "  build")?,
                }
            }
        }
        writeln!(f, "violation ({} rechecks spent shrinking):", self.rechecks)?;
        writeln!(f, "{}", self.violation)?;
        write!(
            f,
            "========================================================"
        )
    }
}

/// Shrinks a failing case greedily and packages the reproducer.
///
/// `mutation` and `billing` must be the configuration under which the
/// case failed, so every re-check asks the same question.
pub fn shrink_case(case: &Case, mutation: Mutation, billing: bool) -> Reproducer {
    let mut best = case.clone();
    let rechecks = std::cell::Cell::new(0usize);
    // Accepts a candidate if it still fails within budget.
    let mut still_fails = |c: &Case| -> bool {
        if rechecks.get() >= SHRINK_BUDGET {
            return false;
        }
        rechecks.set(rechecks.get() + 1);
        check_case(c, mutation, billing).is_err()
    };

    loop {
        let before = fingerprint(&best);
        shrink_churn_away(&mut best, &mut still_fails);
        shrink_docs_away(&mut best, &mut still_fails);
        shrink_doc_contents(&mut best, &mut still_fails);
        shrink_query(&mut best, &mut still_fails);
        if fingerprint(&best) == before || rechecks.get() >= SHRINK_BUDGET {
            break;
        }
    }

    let violation = check_case(&best, mutation, billing)
        .expect_err("shrinking only ever accepts still-failing cases");
    Reproducer {
        case: best,
        violation,
        mutation,
        rechecks: rechecks.get(),
    }
}

fn fingerprint(case: &Case) -> (usize, usize, usize, String) {
    (
        case.docs.len(),
        case.docs.iter().map(|(_, x)| x.len()).sum(),
        case.churn.len(),
        case.query.clone(),
    )
}

// ---------------------------------------------------------------------------
// Axis 0: fewer churn operations
// ---------------------------------------------------------------------------

/// Drops churn operations one at a time. Any remainder stays replayable:
/// a delete of an absent URI is a no-op and an upload of an absent URI
/// just creates the document, so order-sensitive pairs (delete then
/// re-add) shrink safely.
fn shrink_churn_away(case: &mut Case, still_fails: &mut impl FnMut(&Case) -> bool) {
    let mut i = 0;
    while i < case.churn.len() {
        let mut candidate = case.clone();
        candidate.churn.remove(i);
        if still_fails(&candidate) {
            *case = candidate;
        } else {
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Axis 1: fewer documents
// ---------------------------------------------------------------------------

fn shrink_docs_away(case: &mut Case, still_fails: &mut impl FnMut(&Case) -> bool) {
    let mut i = 0;
    while case.docs.len() > 1 && i < case.docs.len() {
        let mut candidate = case.clone();
        candidate.docs.remove(i);
        if still_fails(&candidate) {
            *case = candidate;
        } else {
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Axis 2: smaller documents (remove one subtree at a time)
// ---------------------------------------------------------------------------

fn shrink_doc_contents(case: &mut Case, still_fails: &mut impl FnMut(&Case) -> bool) {
    for di in 0..case.docs.len() {
        loop {
            let doc = Document::parse_str(case.docs[di].0.clone(), &case.docs[di].1)
                .expect("case XML parses");
            // Removable: everything but the document element. Larger
            // subtrees first, so one accepted removal deletes the most.
            let mut nodes: Vec<NodeId> = doc.all_nodes().filter(|&n| n != doc.root()).collect();
            nodes.sort_by_key(|&n| std::cmp::Reverse(doc.descendants(n).count()));
            let mut reduced = false;
            for n in nodes {
                let xml = serialize_without(&doc, n);
                if Document::parse_str("shrunk.xml", &xml).is_err() {
                    continue;
                }
                let mut candidate = case.clone();
                candidate.docs[di].1 = xml;
                if still_fails(&candidate) {
                    *case = candidate;
                    reduced = true;
                    break;
                }
            }
            if !reduced {
                break;
            }
        }
    }
}

/// Serializes the document, mirroring `Document::to_xml`, with one
/// subtree left out.
fn serialize_without(doc: &Document, skip: NodeId) -> String {
    let mut out = String::new();
    write_skipping(doc, doc.root(), skip, &mut out);
    out
}

fn write_skipping(doc: &Document, id: NodeId, skip: NodeId, out: &mut String) {
    if id == skip {
        return;
    }
    match doc.kind(id) {
        NodeKind::Text => escape_text(doc.value(id).unwrap_or_default(), out),
        NodeKind::Attribute => {
            out.push_str(doc.name(id).unwrap_or_default());
            out.push_str("=\"");
            escape_attr(doc.value(id).unwrap_or_default(), out);
            out.push('"');
        }
        NodeKind::Element => {
            let name = doc.name(id).unwrap_or_default();
            out.push('<');
            out.push_str(name);
            let mut content = Vec::new();
            for c in doc.children(id) {
                if c == skip {
                    continue;
                }
                if doc.kind(c) == NodeKind::Attribute {
                    out.push(' ');
                    out.push_str(doc.name(c).unwrap_or_default());
                    out.push_str("=\"");
                    escape_attr(doc.value(c).unwrap_or_default(), out);
                    out.push('"');
                } else {
                    content.push(c);
                }
            }
            if content.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in content {
                    write_skipping(doc, c, skip, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Axis 3: smaller query
// ---------------------------------------------------------------------------

fn shrink_query(case: &mut Case, still_fails: &mut impl FnMut(&Case) -> bool) {
    loop {
        let query = parse_query(&case.query).expect("case query parses");
        let mut reduced = false;
        for candidate in query_reductions(&query) {
            let text = candidate.to_string();
            // Defensive: only propose candidates the parser accepts back.
            if parse_query(&text).is_err() {
                continue;
            }
            let mut c = case.clone();
            c.query = text;
            if still_fails(&c) {
                *case = c;
                reduced = true;
                break;
            }
        }
        if !reduced {
            break;
        }
    }
}

/// One-step reductions of a query, most aggressive first.
fn query_reductions(query: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    // Drop a whole pattern (a join variable left with one site is simply
    // unconstrained, so the remainder stays well-formed).
    if query.patterns.len() > 1 {
        for pi in 0..query.patterns.len() {
            let mut q = query.clone();
            q.patterns.remove(pi);
            out.push(q);
        }
    }
    for (pi, p) in query.patterns.iter().enumerate() {
        // Drop a leaf node (never the root).
        for leaf in p.leaves().filter(|&l| l != 0) {
            let mut q = query.clone();
            let pat = &mut q.patterns[pi];
            pat.nodes.remove(leaf);
            for node in pat.nodes.iter_mut() {
                node.children.retain(|&c| c != leaf);
                for c in node.children.iter_mut() {
                    if *c > leaf {
                        *c -= 1;
                    }
                }
                if let Some(par) = node.parent {
                    if par > leaf {
                        node.parent = Some(par - 1);
                    }
                }
            }
            out.push(q);
        }
        // Drop a predicate.
        for (ni, n) in p.nodes.iter().enumerate() {
            if n.predicate.is_some() {
                let mut q = query.clone();
                q.patterns[pi].nodes[ni].predicate = None;
                out.push(q);
            }
        }
        // Drop output annotations.
        for (ni, n) in p.nodes.iter().enumerate() {
            if !n.outputs.is_empty() {
                let mut q = query.clone();
                q.patterns[pi].nodes[ni].outputs.clear();
                out.push(q);
            }
        }
    }
    out
}
