//! The differential oracles, applied to one generated [`Case`].
//!
//! Every oracle compares two independent computations of the same fact:
//! index-assisted answers vs. the no-index scan, the twig join vs. the
//! naive evaluator, a decoded payload vs. the encoded one. A mismatch is
//! a [`Violation`] carrying enough detail to read the failure without
//! re-running anything.

use crate::gen::{final_docs, Case, ChurnOp};
use crate::invariants;
use crate::Mutation;
use amada_cloud::ObjectPredicate;
use amada_cloud::{DynamoDb, KvError, KvProfile, KvStore, SimTime, SimpleDb};
use amada_core::{Warehouse, WarehouseConfig, DOC_BUCKET};
use amada_index::lookup::query_paths;
use amada_index::store::{
    decode_id_lists, decode_id_postings, decode_path_lists, decode_presence_uris, encode_entry,
};
use amada_index::{
    decode_tuples, extract, index_documents, index_documents_mixed, key_frequencies, lookup_mixed,
    lookup_query, skew_aware_plan, ExtractOptions, MixedPlan, Payload, ScanPredicate, Strategy,
    UuidGen, TABLE_MAIN,
};
use amada_pattern::twig::evaluate_pattern_twig;
use amada_pattern::{join_pattern_results, naive_matches, parse_query, Query, TreePattern, Tuple};
use amada_xml::Document;
use std::collections::BTreeSet;
use std::fmt;

/// One oracle violation: which oracle, and a self-contained account.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Oracle name (`answers`, `containment`, `twig-vs-naive`,
    /// `round-trip`, `sharding`, `billing`).
    pub oracle: &'static str,
    /// What disagreed, with the per-strategy outputs involved.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

fn violation(oracle: &'static str, detail: String) -> Violation {
    Violation { oracle, detail }
}

/// Runs every oracle against the case (the billing oracle only when
/// `billing` is set — it spins up whole warehouse pipelines).
pub fn check_case(case: &Case, mutation: Mutation, billing: bool) -> Result<(), Violation> {
    let docs = parse_docs(case);
    let query = parse_query(&case.query)
        .map_err(|e| violation("answers", format!("query does not parse: {e:?}")))?;
    let opts = ExtractOptions {
        index_words: case.index_words,
    };

    oracle_twig_vs_naive(&docs, &query)?;

    // Ground truth: the no-index scan evaluates every pattern on every
    // document.
    let truth_tuples: Vec<Vec<Tuple>> = query
        .patterns
        .iter()
        .map(|p| eval_pattern(&docs, None, p))
        .collect();
    let truth = canon_joined(&join_pattern_results(&query, &truth_tuples));

    for backend in Backend::ALL {
        let candidates =
            strategy_candidates(&docs, &query, opts, backend, mutation).map_err(|e| {
                violation(
                    "answers",
                    format!("{} look-up failed: {e:?}", backend.name()),
                )
            })?;
        oracle_containment(backend, &query, &candidates)?;
        oracle_answers(backend, &docs, &query, &truth, &candidates)?;
        oracle_pushdown_answers(backend, case, &docs, &query, opts, &truth)?;
    }

    oracle_round_trip(&docs, opts)?;
    oracle_sharding(&docs, &query, opts)?;
    oracle_mixed(case, &query, opts)?;

    if !case.churn.is_empty() {
        oracle_churn(case, &query, mutation)?;
    }

    if billing {
        invariants::billing_oracle(case, &query).map_err(|d| violation("billing", d))?;
    }
    Ok(())
}

fn parse_docs(case: &Case) -> Vec<Document> {
    case.docs
        .iter()
        .map(|(uri, xml)| Document::parse_str(uri.clone(), xml).expect("case XML must parse"))
        .collect()
}

// ---------------------------------------------------------------------------
// Oracle C — twig join ≡ naive evaluator, per document and pattern
// ---------------------------------------------------------------------------

fn oracle_twig_vs_naive(docs: &[Document], query: &Query) -> Result<(), Violation> {
    for (pi, pattern) in query.patterns.iter().enumerate() {
        for doc in docs {
            let naive = canon_tuples(&naive_matches(doc, pattern).0);
            let twig = canon_tuples(&evaluate_pattern_twig(doc, pattern).0);
            if naive != twig {
                return Err(violation(
                    "twig-vs-naive",
                    format!(
                        "pattern {pi} on {}: naive {naive:?} vs twig {twig:?}",
                        doc.uri()
                    ),
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-strategy candidate sets
// ---------------------------------------------------------------------------

/// The two backend profiles the paper experiments with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    Dynamo,
    Simple,
}

impl Backend {
    pub const ALL: [Backend; 2] = [Backend::Dynamo, Backend::Simple];

    fn name(self) -> &'static str {
        match self {
            Backend::Dynamo => "DynamoDB",
            Backend::Simple => "SimpleDB",
        }
    }

    fn store(self) -> Box<dyn KvStore> {
        match self {
            Backend::Dynamo => Box::new(DynamoDb::default()),
            Backend::Simple => Box::new(SimpleDb::default()),
        }
    }
}

/// Per-pattern candidate URI sets, per strategy (Strategy::ALL order).
type Candidates = Vec<Vec<BTreeSet<String>>>;

fn strategy_candidates(
    docs: &[Document],
    query: &Query,
    opts: ExtractOptions,
    backend: Backend,
    mutation: Mutation,
) -> Result<Candidates, KvError> {
    let mut out = Vec::with_capacity(Strategy::ALL.len());
    for strategy in Strategy::ALL {
        let mut store = backend.store();
        index_documents(store.as_mut(), docs, strategy, opts);
        let per_pattern: Vec<BTreeSet<String>> =
            if strategy == Strategy::Lup && mutation == Mutation::SkipLupPathFilter {
                query
                    .patterns
                    .iter()
                    .map(|p| lup_candidates_without_path_filter(store.as_mut(), opts, p))
                    .collect::<Result<_, _>>()?
            } else {
                lookup_query(store.as_mut(), SimTime::ZERO, strategy, opts, query)?
                    .per_pattern
                    .into_iter()
                    .map(|o| o.uris.into_iter().collect())
                    .collect()
            };
        out.push(per_pattern);
    }
    Ok(out)
}

/// The injected `SkipLupPathFilter` bug: LUP candidates are every URI
/// owning the *terminal key* of each query path, with `data_path_matches`
/// never consulted — the structural filter of Section 5.2 is gone.
fn lup_candidates_without_path_filter(
    store: &mut dyn KvStore,
    opts: ExtractOptions,
    pattern: &TreePattern,
) -> Result<BTreeSet<String>, KvError> {
    let profile: KvProfile = store.profile();
    let mut result: Option<BTreeSet<String>> = None;
    for qp in query_paths(pattern, opts) {
        let terminal = &qp.last().expect("query paths are non-empty").1;
        let (items, _) = store.get(SimTime::ZERO, TABLE_MAIN, terminal)?;
        let uris: BTreeSet<String> = decode_path_lists(&items, &profile).into_keys().collect();
        result = Some(match result {
            None => uris,
            Some(prev) => prev.intersection(&uris).cloned().collect(),
        });
    }
    Ok(result.unwrap_or_default())
}

// ---------------------------------------------------------------------------
// Oracle B — candidate containment LU ⊇ LUP ⊇ LUI = 2LUPI (Table 5)
// ---------------------------------------------------------------------------

fn oracle_containment(
    backend: Backend,
    query: &Query,
    candidates: &Candidates,
) -> Result<(), Violation> {
    let [lu, lup, lui, two] = [
        &candidates[0],
        &candidates[1],
        &candidates[2],
        &candidates[3],
    ];
    for pi in 0..query.patterns.len() {
        let chain: [(&str, &BTreeSet<String>, &str, &BTreeSet<String>); 2] = [
            ("LU", &lu[pi], "LUP", &lup[pi]),
            ("LUP", &lup[pi], "LUI", &lui[pi]),
        ];
        for (big_name, big, small_name, small) in chain {
            if !small.is_subset(big) {
                let extra: Vec<&String> = small.difference(big).collect();
                return Err(violation(
                    "containment",
                    format!(
                        "{}, pattern {pi}: {small_name} ⊄ {big_name}; {small_name} has {extra:?} \
                         that {big_name} lacks\n{}",
                        backend.name(),
                        render_candidates(pi, lu, lup, lui, two),
                    ),
                ));
            }
        }
        if lui[pi] != two[pi] {
            return Err(violation(
                "containment",
                format!(
                    "{}, pattern {pi}: LUI ≠ 2LUPI\n{}",
                    backend.name(),
                    render_candidates(pi, lu, lup, lui, two),
                ),
            ));
        }
    }
    Ok(())
}

fn render_candidates(
    pi: usize,
    lu: &[BTreeSet<String>],
    lup: &[BTreeSet<String>],
    lui: &[BTreeSet<String>],
    two: &[BTreeSet<String>],
) -> String {
    format!(
        "  LU    {:?}\n  LUP   {:?}\n  LUI   {:?}\n  2LUPI {:?}",
        lu[pi], lup[pi], lui[pi], two[pi]
    )
}

// ---------------------------------------------------------------------------
// Oracle A — answers identical to the no-index scan
// ---------------------------------------------------------------------------

fn eval_pattern(docs: &[Document], only: Option<&BTreeSet<String>>, p: &TreePattern) -> Vec<Tuple> {
    docs.iter()
        .filter(|d| only.is_none_or(|set| set.contains(d.uri())))
        .flat_map(|d| naive_matches(d, p).0)
        .collect()
}

fn oracle_answers(
    backend: Backend,
    docs: &[Document],
    query: &Query,
    truth: &[String],
    candidates: &Candidates,
) -> Result<(), Violation> {
    for (si, strategy) in Strategy::ALL.iter().enumerate() {
        let per_pattern: Vec<Vec<Tuple>> = query
            .patterns
            .iter()
            .enumerate()
            .map(|(pi, p)| eval_pattern(docs, Some(&candidates[si][pi]), p))
            .collect();
        let answers = canon_joined(&join_pattern_results(query, &per_pattern));
        if answers != truth {
            return Err(violation(
                "answers",
                format!(
                    "{} / {}: strategy answers differ from the no-index scan\n  \
                     no-index: {truth:?}\n  {}: {answers:?}\n  candidates: {:?}",
                    backend.name(),
                    strategy.name(),
                    strategy.name(),
                    candidates[si],
                ),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle A, strategy #5 — pushdown answers identical to the no-index scan
// ---------------------------------------------------------------------------

/// LUP-PD: candidates from the index under [`Strategy::LupPd`], residual
/// evaluation pushed to storage — each candidate is filtered by the
/// wire-round-tripped [`ScanPredicate`] (exactly what the simulated store
/// runs) and only the decoded tuples join. The answers must still equal
/// the no-index scan.
fn oracle_pushdown_answers(
    backend: Backend,
    case: &Case,
    docs: &[Document],
    query: &Query,
    opts: ExtractOptions,
    truth: &[String],
) -> Result<(), Violation> {
    let mut store = backend.store();
    index_documents(store.as_mut(), docs, Strategy::LupPd, opts);
    let lookup = lookup_query(store.as_mut(), SimTime::ZERO, Strategy::LupPd, opts, query)
        .map_err(|e| {
            violation(
                "answers",
                format!("{} LUP-PD look-up failed: {e:?}", backend.name()),
            )
        })?;
    let per_pattern: Vec<Vec<Tuple>> = query
        .patterns
        .iter()
        .zip(lookup.per_pattern)
        .map(|(p, outcome)| {
            let pred = ScanPredicate::from_wire(ScanPredicate::compile(p).wire())
                .expect("compiled predicates round-trip their wire form");
            let mut tuples = Vec::new();
            for uri in &outcome.uris {
                let (_, xml) = case
                    .docs
                    .iter()
                    .find(|(u, _)| u == uri)
                    .expect("candidate URIs come from the corpus");
                tuples.extend(
                    decode_tuples(&pred.filter(xml.as_bytes()), uri)
                        .expect("store-encoded scan results decode"),
                );
            }
            tuples
        })
        .collect();
    let answers = canon_joined(&join_pattern_results(query, &per_pattern));
    if answers != truth {
        return Err(violation(
            "answers",
            format!(
                "{} / LUP-PD: pushdown answers differ from the no-index scan\n  \
                 no-index: {truth:?}\n  LUP-PD: {answers:?}",
                backend.name(),
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle F — churn convergence: replayed mutations ≡ a fresh build
// ---------------------------------------------------------------------------

/// Replays the case's churn script against a live warehouse — initial
/// corpus uploaded and indexed, then re-uploads / deletes / mid-sequence
/// builds in order, then a final build — and demands convergence with a
/// fresh warehouse of the surviving corpus: byte-identical index items,
/// byte-identical file store, equal accounting, and query answers equal
/// to the no-index scan of the survivors.
fn oracle_churn(case: &Case, query: &Query, mutation: Mutation) -> Result<(), Violation> {
    let strategy = crate::case_strategy(case.index);
    let mk = || {
        let mut cfg = WarehouseConfig::with_strategy(strategy);
        cfg.extract = ExtractOptions {
            index_words: case.index_words,
        };
        Warehouse::new(cfg)
    };
    // The injected `DropRetractions` bug: pending retractions vanish
    // before every build, so stale entries survive any replace.
    let build = |w: &mut Warehouse| {
        if mutation == Mutation::DropRetractions {
            w.retraction_registry().borrow_mut().clear();
        }
        w.build_index();
    };

    let mut churned = mk();
    churned.upload_documents(case.docs.clone());
    build(&mut churned);
    for op in &case.churn {
        match op {
            ChurnOp::Upload { uri, xml } => {
                churned.upload_documents([(uri.clone(), xml.clone())]);
            }
            ChurnOp::Delete { uri } => {
                churned.delete_documents([uri.clone()]);
            }
            ChurnOp::Build => build(&mut churned),
        }
    }
    build(&mut churned);

    let survivors = final_docs(&case.docs, &case.churn);
    let mut fresh = mk();
    fresh.upload_documents(survivors.clone());
    fresh.build_index();

    let ctx = || format!("{} after {:?}", strategy.name(), case.churn);
    let (churned_kv, fresh_kv) = (churned.world().kv.peek_all(), fresh.world().kv.peek_all());
    if churned_kv != fresh_kv {
        let stale: Vec<_> = churned_kv
            .iter()
            .filter(|i| !fresh_kv.contains(i))
            .collect();
        let missing: Vec<_> = fresh_kv
            .iter()
            .filter(|i| !churned_kv.contains(i))
            .collect();
        return Err(violation(
            "churn",
            format!(
                "{}: churned index differs from a fresh build of the survivors\n  \
                 stale (churned only): {stale:?}\n  missing (fresh only): {missing:?}",
                ctx()
            ),
        ));
    }
    if churned.world().s3.peek_all(DOC_BUCKET) != fresh.world().s3.peek_all(DOC_BUCKET) {
        return Err(violation(
            "churn",
            format!("{}: churned file store differs from the survivors", ctx()),
        ));
    }
    if churned.corpus_bytes() != fresh.corpus_bytes()
        || churned.storage_cost() != fresh.storage_cost()
    {
        return Err(violation(
            "churn",
            format!(
                "{}: accounting diverged — {} vs {} corpus bytes, {:?} vs {:?} storage",
                ctx(),
                churned.corpus_bytes(),
                fresh.corpus_bytes(),
                churned.storage_cost(),
                fresh.storage_cost(),
            ),
        ));
    }

    // Answers on the churned warehouse must equal the no-index scan of
    // the surviving corpus — a stale candidate that slips through would
    // resurface retracted content here.
    let docs: Vec<Document> = survivors
        .iter()
        .map(|(uri, xml)| Document::parse_str(uri.clone(), xml).expect("survivors parse"))
        .collect();
    let truth_tuples: Vec<Vec<Tuple>> = query
        .patterns
        .iter()
        .map(|p| eval_pattern(&docs, None, p))
        .collect();
    let truth = canon_joined(&join_pattern_results(query, &truth_tuples));
    let answers = canon_joined(&churned.run_query(query).exec.results);
    if answers != truth {
        return Err(violation(
            "churn",
            format!(
                "{}: churned answers differ from the survivors' no-index scan\n  \
                 no-index: {truth:?}\n  churned:  {answers:?}",
                ctx()
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle D — store round-trip on every extracted entry
// ---------------------------------------------------------------------------

fn oracle_round_trip(docs: &[Document], opts: ExtractOptions) -> Result<(), Violation> {
    let profiles = [DynamoDb::default().profile(), SimpleDb::default().profile()];
    for strategy in Strategy::ALL {
        for doc in docs {
            for entry in extract(doc, strategy, opts) {
                for profile in &profiles {
                    let mut uuids = UuidGen::for_document(&entry.uri);
                    let items = encode_entry(&entry, profile, &mut uuids);
                    let ok = match &entry.payload {
                        Payload::Presence => {
                            decode_presence_uris(&items) == vec![entry.uri.clone()]
                        }
                        Payload::Paths(paths) => {
                            decode_path_lists(&items, profile).get(&entry.uri) == Some(paths)
                        }
                        Payload::Ids(ids) => {
                            decode_id_lists(&items, profile).get(&entry.uri) == Some(ids)
                                && decode_id_postings(&items, profile)
                                    .get(&entry.uri)
                                    .is_some_and(|l| l.decode_all() == *ids)
                                && block_layer_agrees(ids)
                        }
                    };
                    if !ok {
                        return Err(violation(
                            "round-trip",
                            format!(
                                "{} profile, strategy {}, doc {}: entry key {:?} did not \
                                 survive encode→decode ({} items)",
                                profile.name,
                                strategy.name(),
                                doc.uri(),
                                entry.key,
                                items.len(),
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// The block layer over the same ID list agrees with the flat codec: the
/// explicit blocked wire format round-trips, and a [`BlockList`] built
/// from either format replays the list in full through its lazy cursor.
fn block_layer_agrees(ids: &[amada_xml::StructuralId]) -> bool {
    use amada_index::codec::{decode_ids_blocked, encode_ids, encode_ids_blocked, BlockList};
    let blocked = encode_ids_blocked(ids);
    if decode_ids_blocked(&blocked).as_deref() != Some(ids) {
        return false;
    }
    let from_blocked = match BlockList::from_blocked(&blocked) {
        Some(l) => l,
        None => return false,
    };
    let from_flat = match BlockList::from_flat(&encode_ids(ids)) {
        Some(l) => l,
        None => return false,
    };
    for list in [&from_blocked, &from_flat] {
        if list.len() != ids.len() || list.decode_all() != ids {
            return false;
        }
        let mut cur = list.cursor();
        for &id in ids {
            if cur.peek() != Some(id) {
                return false;
            }
            cur.advance();
        }
        if cur.peek().is_some() {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Oracle S — sharding is invisible to contents, bills and answers
// ---------------------------------------------------------------------------

/// Indexes the case twice on DynamoDB — unsharded vs. a skew-aware plan
/// derived from the case's own key frequencies — and demands identical
/// stored items, identical billed units, and identical look-up answers
/// with identical billed gets. Sharding may only move *waiting*, never
/// what is stored, answered or billed.
fn oracle_sharding(
    docs: &[Document],
    query: &Query,
    opts: ExtractOptions,
) -> Result<(), Violation> {
    let strategy = Strategy::Lup;
    let entries: Vec<_> = docs
        .iter()
        .flat_map(|d| extract(d, strategy, opts))
        .collect();
    let freqs = key_frequencies(&entries);
    if freqs.is_empty() {
        return Ok(());
    }
    let plan = skew_aware_plan(&freqs, 4, 2);

    let mut plain: Box<dyn KvStore> = Box::new(DynamoDb::default());
    index_documents(plain.as_mut(), docs, strategy, opts);
    let mut sharded: Box<dyn KvStore> = Box::new(DynamoDb::default());
    sharded.set_shard_plan(plan);
    index_documents(sharded.as_mut(), docs, strategy, opts);

    if plain.peek_all() != sharded.peek_all() {
        return Err(violation(
            "sharding",
            "sharded index contents differ from the unsharded build".to_string(),
        ));
    }
    if plain.stats() != sharded.stats() {
        return Err(violation(
            "sharding",
            format!(
                "sharded bills diverge: unsharded {:?} vs sharded {:?}",
                plain.stats(),
                sharded.stats()
            ),
        ));
    }

    let a = lookup_query(plain.as_mut(), SimTime::ZERO, strategy, opts, query)
        .map_err(|e| violation("sharding", format!("unsharded look-up failed: {e:?}")))?;
    let b = lookup_query(sharded.as_mut(), SimTime::ZERO, strategy, opts, query)
        .map_err(|e| violation("sharding", format!("sharded look-up failed: {e:?}")))?;
    if a.uris != b.uris {
        return Err(violation(
            "sharding",
            format!(
                "sharded answers diverge: unsharded {:?} vs sharded {:?}",
                a.uris, b.uris
            ),
        ));
    }
    if a.get_ops() != b.get_ops() {
        return Err(violation(
            "sharding",
            format!(
                "sharded look-up bills diverge: {} vs {} billed gets",
                a.get_ops(),
                b.get_ops()
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle M — a mixed plan ≡ its per-partition single-strategy parts
// ---------------------------------------------------------------------------

/// Re-homes the case's documents into three partitions (`hot/`, `cold/`
/// and the root), routes them with a plan that exercises all three plan
/// behaviors — an explicit heavy index (`hot` → 2LUPI), an explicit scan
/// (`cold` → index nothing) and the default (root → LUP) — and demands,
/// on both backends:
///
/// 1. the mixed look-up's per-pattern candidates equal the *union* of
///    each partition's own single-strategy look-up (scan partitions
///    contributing every document), and
/// 2. the answers evaluated over those candidates equal the no-index
///    scan of the re-homed corpus.
///
/// This is the correctness contract behind the adaptive advisor's plan
/// migrations: splitting a corpus across per-partition strategies must
/// never change what a query answers.
fn oracle_mixed(case: &Case, query: &Query, opts: ExtractOptions) -> Result<(), Violation> {
    const PARTS: [&str; 3] = ["hot", "cold", ""];
    let rehomed: Vec<Document> = case
        .docs
        .iter()
        .enumerate()
        .map(|(i, (uri, xml))| {
            let p = PARTS[i % PARTS.len()];
            let uri = if p.is_empty() {
                uri.clone()
            } else {
                format!("{p}/{uri}")
            };
            Document::parse_str(uri, xml).expect("re-homed case XML parses")
        })
        .collect();
    let plan = MixedPlan::uniform(Some(Strategy::Lup))
        .with("hot", Some(Strategy::TwoLupi))
        .with("cold", None);
    let corpus: Vec<String> = rehomed.iter().map(|d| d.uri().to_string()).collect();

    // Truth: the no-index scan of the re-homed corpus.
    let truth_tuples: Vec<Vec<Tuple>> = query
        .patterns
        .iter()
        .map(|p| eval_pattern(&rehomed, None, p))
        .collect();
    let truth = canon_joined(&join_pattern_results(query, &truth_tuples));

    for backend in Backend::ALL {
        let mut store = backend.store();
        index_documents_mixed(store.as_mut(), &rehomed, &plan, opts);
        let catalog: std::collections::BTreeSet<String> = corpus
            .iter()
            .map(|u| amada_index::partition_of(u).to_string())
            .collect();
        // Fully indexed plans must answer from the catalog alone — the
        // warehouse skips the billed corpus LIST for them, so hand the
        // oracle's look-up the same inputs that path gets.
        let listing: &[String] = if plan.fully_indexed() { &[] } else { &corpus };
        let mixed = lookup_mixed(
            store.as_mut(),
            SimTime::ZERO,
            &plan,
            opts,
            query,
            listing,
            &catalog,
        )
        .map_err(|e| {
            violation(
                "mixed",
                format!("{} mixed look-up failed: {e:?}", backend.name()),
            )
        })?;

        // Per-partition single-strategy look-ups, unioned.
        let mut unions: Vec<BTreeSet<String>> = vec![BTreeSet::new(); query.patterns.len()];
        for part in PARTS {
            let members: Vec<Document> = rehomed
                .iter()
                .filter(|d| amada_index::partition_of(d.uri()) == part)
                .cloned()
                .collect();
            if members.is_empty() {
                continue;
            }
            match plan.strategy_of(part) {
                Some(s) => {
                    let mut solo = backend.store();
                    index_documents(solo.as_mut(), &members, s, opts);
                    let lk = lookup_query(solo.as_mut(), SimTime::ZERO, s, opts, query).map_err(
                        |e| {
                            violation(
                                "mixed",
                                format!(
                                    "{} solo {} look-up failed for partition {part:?}: {e:?}",
                                    backend.name(),
                                    s.name()
                                ),
                            )
                        },
                    )?;
                    for (pi, o) in lk.per_pattern.into_iter().enumerate() {
                        unions[pi].extend(o.uris);
                    }
                }
                None => {
                    for u in unions.iter_mut() {
                        u.extend(members.iter().map(|d| d.uri().to_string()));
                    }
                }
            }
        }
        for (pi, union) in unions.iter().enumerate() {
            let got: BTreeSet<String> = mixed.per_pattern[pi].uris.iter().cloned().collect();
            if &got != union {
                return Err(violation(
                    "mixed",
                    format!(
                        "{}, pattern {pi}: mixed candidates differ from the per-partition \
                         union\n  mixed: {got:?}\n  union: {union:?}",
                        backend.name(),
                    ),
                ));
            }
        }

        // Answers over the mixed candidates equal the no-index scan.
        let per_pattern: Vec<Vec<Tuple>> = query
            .patterns
            .iter()
            .zip(&mixed.per_pattern)
            .map(|(p, o)| {
                let set: BTreeSet<String> = o.uris.iter().cloned().collect();
                eval_pattern(&rehomed, Some(&set), p)
            })
            .collect();
        let answers = canon_joined(&join_pattern_results(query, &per_pattern));
        if answers != truth {
            return Err(violation(
                "mixed",
                format!(
                    "{}: mixed-plan answers differ from the no-index scan\n  \
                     no-index: {truth:?}\n  mixed: {answers:?}",
                    backend.name(),
                ),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Canonical renderings (sorted, multiplicity-preserving)
// ---------------------------------------------------------------------------

/// Canonical multiset rendering of per-pattern tuples.
pub fn canon_tuples(tuples: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = tuples
        .iter()
        .map(|t| format!("{}|{:?}|{:?}", t.uri, t.columns, t.joins))
        .collect();
    v.sort();
    v
}

/// Canonical multiset rendering of joined query results.
pub fn canon_joined(results: &[amada_pattern::JoinedTuple]) -> Vec<String> {
    let mut v: Vec<String> = results
        .iter()
        .map(|t| {
            let uris: Vec<&str> = t.uris.iter().map(|u| u.as_ref()).collect();
            format!("{uris:?}|{:?}", t.columns)
        })
        .collect();
    v.sort();
    v
}
