//! End-to-end tests for the differential harness itself.
//!
//! Two obligations: a clean sweep over several seeds (no false
//! positives), and a self-validation run with an injected strategy
//! mutation that the oracles must catch and shrink (no false
//! negatives).

use amada_check::{run_check, CheckConfig, Mutation};

#[test]
fn clean_sweep_over_three_seeds() {
    for seed in [1u64, 2, 3] {
        let mut cfg = CheckConfig::new(seed, 25);
        cfg.billing_every = 5;
        let outcome = run_check(&cfg);
        assert!(
            outcome.ok(),
            "seed {seed} produced a violation:\n{}",
            outcome.failure.unwrap()
        );
        assert_eq!(outcome.cases_passed, 25);
    }
}

#[test]
fn injected_mutation_is_caught_and_shrunk() {
    // Skipping LUP's data-path filter makes LUP a pure label
    // intersection, so any case whose document shares the query's labels
    // without the required structure breaks oracle A or B. Probe a few
    // seeds so the test does not hinge on one generator coincidence.
    let mut caught = None;
    for seed in 1u64..=6 {
        let mut cfg = CheckConfig::new(seed, 40);
        cfg.mutation = Mutation::SkipLupPathFilter;
        let outcome = run_check(&cfg);
        if let Some(repro) = outcome.failure {
            caught = Some((seed, repro));
            break;
        }
    }
    let (seed, repro) = caught.expect("SkipLupPathFilter must be caught within 6 seeds x 40 cases");
    assert_eq!(repro.mutation, Mutation::SkipLupPathFilter);
    // The shrinker must have produced a small, self-contained case.
    assert!(!repro.case.docs.is_empty());
    assert!(
        repro.case.docs.len() <= 2,
        "shrinker left {} documents",
        repro.case.docs.len()
    );
    let rendered = repro.to_string();
    assert!(rendered.contains("amada-check reproducer"), "{rendered}");
    assert!(rendered.contains("SkipLupPathFilter"), "{rendered}");
    assert!(
        rendered.contains(&format!("seed {seed} case")),
        "{rendered}"
    );
}

#[test]
fn dropped_retractions_are_caught_by_the_churn_oracle() {
    // If the front end forgets pending retractions, any key-changing
    // re-upload leaves stale index entries behind; the churn oracle must
    // see the churned index diverge from a fresh build of the survivors.
    let mut caught = None;
    for seed in 1u64..=6 {
        let mut cfg = CheckConfig::new(seed, 40);
        cfg.billing_every = 0;
        cfg.mutation = Mutation::DropRetractions;
        let outcome = run_check(&cfg);
        if let Some(repro) = outcome.failure {
            caught = Some(repro);
            break;
        }
    }
    let repro = caught.expect("DropRetractions must be caught within 6 seeds x 40 cases");
    assert_eq!(repro.violation.oracle, "churn");
    assert!(
        !repro.case.churn.is_empty(),
        "a churn violation needs churn operations"
    );
    let rendered = repro.to_string();
    assert!(rendered.contains("churn ("), "{rendered}");
}
