//! Binary structural joins on *(pre, post, depth)* streams — the
//! stack-tree algorithm of Al-Khalifa et al. (ICDE 2002), the paper's
//! citation \[3\] and the primitive its holistic twig join generalizes.
//!
//! Given two lists of structural IDs sorted by `pre` (document order), the
//! join emits every (ancestor, descendant) — or (parent, child) — pair in
//! a single merge pass with an ancestor stack: `O(|A| + |D| + |output|)`.
//!
//! The twig join ([`crate::twig`]) covers whole patterns; this primitive
//! is exposed for two-node queries, for building alternative plans, and as
//! an independently verified building block (property-tested against the
//! quadratic nested-loop definition).

use crate::ast::Axis;
use amada_xml::StructuralId;

/// Joins `ancestors` × `descendants` under `axis`, both sorted by `pre`.
/// Returns index pairs `(i, j)` meaning `ancestors[i]` relates to
/// `descendants[j]`, ordered by descendant then ancestor position.
pub fn structural_join<A, D>(
    ancestors: &[(StructuralId, A)],
    descendants: &[(StructuralId, D)],
    axis: Axis,
) -> Vec<(usize, usize)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    debug_assert!(descendants.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    let mut out = Vec::new();
    // Stack of ancestor indices whose nodes nest along a root-to-leaf line.
    let mut stack: Vec<usize> = Vec::new();
    let mut ai = 0;
    for (dj, (d, _)) in descendants.iter().enumerate() {
        // Push every ancestor starting before `d`.
        while ai < ancestors.len() && ancestors[ai].0.pre < d.pre {
            // Pop ancestors that end before this ancestor starts (they can
            // contain none of the remaining stream).
            while stack
                .last()
                .is_some_and(|&top| ancestors[top].0.precedes(&ancestors[ai].0))
            {
                stack.pop();
            }
            stack.push(ai);
            ai += 1;
        }
        // Pop ancestors that end before `d` starts.
        while stack
            .last()
            .is_some_and(|&top| ancestors[top].0.precedes(d))
        {
            stack.pop();
        }
        // Every remaining stack entry that contains `d` joins with it.
        for &i in stack.iter() {
            let a = &ancestors[i].0;
            let ok = match axis {
                Axis::Descendant => a.is_ancestor_of(d),
                Axis::Child => a.is_parent_of(d),
            };
            if ok {
                out.push((i, dj));
            }
        }
    }
    out
}

/// The distinct descendants that have at least one ancestor match
/// (a common projection of the join).
pub fn semijoin_descendants<A, D: Copy>(
    ancestors: &[(StructuralId, A)],
    descendants: &[(StructuralId, D)],
    axis: Axis,
) -> Vec<(StructuralId, D)> {
    let pairs = structural_join(ancestors, descendants, axis);
    let mut out: Vec<(StructuralId, D)> = Vec::new();
    let mut last: Option<usize> = None;
    for (_, dj) in pairs {
        if last != Some(dj) {
            out.push(descendants[dj]);
            last = Some(dj);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_xml::Document;

    type Stream = Vec<(StructuralId, ())>;

    fn streams(doc: &Document, anc: &str, desc: &str) -> (Stream, Stream) {
        let a = doc
            .elements_named(anc)
            .iter()
            .map(|&n| (doc.sid(n), ()))
            .collect();
        let d = doc
            .elements_named(desc)
            .iter()
            .map(|&n| (doc.sid(n), ()))
            .collect();
        (a, d)
    }

    /// Quadratic reference implementation.
    fn nested_loop(
        a: &[(StructuralId, ())],
        d: &[(StructuralId, ())],
        axis: Axis,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (dj, (ds, _)) in d.iter().enumerate() {
            for (ai, (asid, _)) in a.iter().enumerate() {
                let ok = match axis {
                    Axis::Descendant => asid.is_ancestor_of(ds),
                    Axis::Child => asid.is_parent_of(ds),
                };
                if ok {
                    out.push((ai, dj));
                }
            }
        }
        out
    }

    #[test]
    fn matches_nested_loop_on_recursive_document() {
        let doc = Document::parse_str(
            "t.xml",
            "<a><b><a><b/><b><a><b/></a></b></a></b><b/><a><b/></a></a>",
        )
        .unwrap();
        let (a, b) = streams(&doc, "a", "b");
        for axis in [Axis::Descendant, Axis::Child] {
            let mut fast = structural_join(&a, &b, axis);
            let mut slow = nested_loop(&a, &b, axis);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow, "{axis:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let doc = Document::parse_str("t.xml", "<a><b/></a>").unwrap();
        let (a, b) = streams(&doc, "a", "b");
        assert!(structural_join(&a, &[] as &[(StructuralId, ())], Axis::Descendant).is_empty());
        assert!(structural_join(&[] as &[(StructuralId, ())], &b, Axis::Descendant).is_empty());
    }

    #[test]
    fn semijoin_deduplicates_descendants() {
        // Two nested a's above one b: one b in the semijoin output.
        let doc = Document::parse_str("t.xml", "<a><a><b/></a></a>").unwrap();
        let (a, b) = streams(&doc, "a", "b");
        let pairs = structural_join(&a, &b, Axis::Descendant);
        assert_eq!(pairs.len(), 2);
        let semi = semijoin_descendants(&a, &b, Axis::Descendant);
        assert_eq!(semi.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::Axis;
    use amada_rng::StdRng;
    use amada_xml::Document;

    /// Random nesting of two labels, seeded per case.
    fn random_doc(rng: &mut StdRng) -> String {
        fn node(rng: &mut StdRng, depth: u32) -> String {
            let label = if rng.gen_bool(0.5) { "a" } else { "b" };
            if depth == 0 {
                return format!("<{label}/>");
            }
            let kids: String = (0..rng.gen_range(0..4usize))
                .map(|_| node(rng, depth - 1))
                .collect();
            format!("<{label}>{kids}</{label}>")
        }
        format!("<root>{}</root>", node(rng, 4))
    }

    #[test]
    fn structural_join_equals_nested_loop() {
        for case in 0..256u64 {
            let mut rng = StdRng::seed_from_u64(0x5707_0000 + case);
            let xml = random_doc(&mut rng);
            let doc = Document::parse_str("p.xml", &xml).unwrap();
            let a: Vec<(amada_xml::StructuralId, ())> = doc
                .elements_named("a")
                .iter()
                .map(|&n| (doc.sid(n), ()))
                .collect();
            let b: Vec<(amada_xml::StructuralId, ())> = doc
                .elements_named("b")
                .iter()
                .map(|&n| (doc.sid(n), ()))
                .collect();
            for axis in [Axis::Descendant, Axis::Child] {
                let mut fast = structural_join(&a, &b, axis);
                fast.sort();
                let mut slow = Vec::new();
                for (dj, (d, _)) in b.iter().enumerate() {
                    for (ai, (asid, _)) in a.iter().enumerate() {
                        let ok = match axis {
                            Axis::Descendant => asid.is_ancestor_of(d),
                            Axis::Child => asid.is_parent_of(d),
                        };
                        if ok {
                            slow.push((ai, dj));
                        }
                    }
                }
                slow.sort();
                assert_eq!(fast, slow, "{axis:?} on {xml}");
            }
        }
    }
}
