//! An XQuery front-end: the FLWR fragment of Section 4, translated to
//! value joins over tree patterns.
//!
//! The paper states that queries "are formulated in an expressive fragment
//! of XQuery, amounting to value joins over tree patterns" and omits the
//! translation as straightforward; this module supplies it. The supported
//! fragment:
//!
//! ```text
//! query    := "for" binding ("," binding)*
//!             ("where" cond ("and" cond)*)?
//!             "return" ret ("," ret)*         (optionally parenthesized)
//! binding  := "$"var "in" source path
//! source   := "doc()" | "doc(" STRING ")" | "$"var
//! path     := ( ("/" | "//") step )+
//! step     := NAME | "@" NAME
//! cond     := pathexpr cmp (literal | pathexpr)
//!           | literal cmp pathexpr
//!           | "contains(" pathexpr "," literal ")"
//! cmp      := "=" | "<" | "<=" | ">" | ">="
//! ret      := pathexpr postfix?
//! postfix  := "/string()" | "/text()"        (string value → val)
//!             (absent → full subtree → cont; attributes are always val)
//! pathexpr := "$"var path?
//! literal  := NUMBER | STRING
//! ```
//!
//! Translation rules:
//!
//! * each `doc()` binding opens a new tree pattern; a `$v`-rooted binding
//!   extends the pattern `$v` belongs to;
//! * path steps create (or reuse — two conditions on `$p/year` talk about
//!   the *same* pattern node, which is what turns a pair of inequalities
//!   into the paper's range predicate) child/descendant pattern nodes;
//! * comparisons to literals become `=`, range or `contains` predicates;
//! * equality between two path expressions becomes a value join
//!   (a fresh join variable on both nodes);
//! * return expressions add `val` (string value) or `cont` (subtree)
//!   annotations.
//!
//! Result columns follow the engine's convention: pattern order, then
//! node preorder within a pattern (not `return`-clause order).
//!
//! The paper's q4 reads:
//!
//! ```
//! use amada_pattern::xquery::parse_xquery;
//! let q = parse_xquery(r#"
//!     for $p in doc()//painting
//!     where $p/painter/name/last = "Manet"
//!       and $p/year > 1854 and $p/year <= 1865
//!     return $p/name/string()
//! "#).unwrap();
//! assert_eq!(q.patterns.len(), 1);
//! ```

use crate::ast::{Axis, Bound, NodeTest, Output, PatternNode, Predicate, Query, TreePattern};
use crate::parser::ParseError;
use std::collections::HashMap;

/// Intersects two optional range bounds, keeping the tighter one
/// (the larger lower bound / the smaller upper bound; on equal values the
/// exclusive bound is tighter).
fn tighter(a: Option<Bound>, b: Option<Bound>, lower: bool) -> Option<Bound> {
    use crate::ast::compare_values;
    use std::cmp::Ordering;
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            let ord = compare_values(&x.value, &y.value);
            let pick_x = match (ord, lower) {
                (Ordering::Greater, true) | (Ordering::Less, false) => true,
                (Ordering::Equal, _) => !x.inclusive,
                _ => false,
            };
            Some(if pick_x { x } else { y })
        }
    }
}

/// Parses an XQuery FLWR expression into a [`Query`].
pub fn parse_xquery(text: &str) -> Result<Query, ParseError> {
    let mut p = Xq {
        s: text.as_bytes(),
        pos: 0,
        builder: Builder::default(),
    };
    p.query()?;
    p.builder.finish()
}

// ---------------------------------------------------------------------------
// Pattern builder
// ---------------------------------------------------------------------------

/// A node address: (pattern index, node index).
type Addr = (usize, usize);

#[derive(Default)]
struct Builder {
    patterns: Vec<TreePattern>,
    /// Variable bindings to pattern nodes.
    vars: HashMap<String, Addr>,
    /// Fresh join-variable counter.
    next_join: usize,
}

impl Builder {
    /// Opens a new pattern rooted at `(axis, test)`; returns its address.
    fn new_pattern(&mut self, axis: Axis, test: NodeTest) -> Addr {
        self.patterns.push(TreePattern {
            nodes: vec![PatternNode {
                test,
                axis,
                parent: None,
                children: Vec::new(),
                outputs: Vec::new(),
                predicate: None,
            }],
        });
        (self.patterns.len() - 1, 0)
    }

    /// Finds or creates the child of `at` reached by `(axis, test)`.
    /// Reuse is what merges repeated mentions of the same path into one
    /// pattern node (giving range predicates and shared outputs).
    fn step(&mut self, at: Addr, axis: Axis, test: NodeTest) -> Addr {
        let (pi, ni) = at;
        let pat = &self.patterns[pi];
        if let Some(&c) = pat.nodes[ni]
            .children
            .iter()
            .find(|&&c| pat.nodes[c].axis == axis && pat.nodes[c].test == test)
        {
            return (pi, c);
        }
        let idx = self.patterns[pi].nodes.len();
        self.patterns[pi].nodes.push(PatternNode {
            test,
            axis,
            parent: Some(ni),
            children: Vec::new(),
            outputs: Vec::new(),
            predicate: None,
        });
        self.patterns[pi].nodes[ni].children.push(idx);
        (pi, idx)
    }

    /// Walks a parsed path from `at`.
    fn walk(&mut self, at: Addr, path: &[(Axis, NodeTest)]) -> Addr {
        let mut cur = at;
        for (axis, test) in path {
            cur = self.step(cur, *axis, test.clone());
        }
        cur
    }

    fn node_mut(&mut self, at: Addr) -> &mut PatternNode {
        &mut self.patterns[at.0].nodes[at.1]
    }

    /// Merges a new predicate into a node (two inequalities form a range).
    fn add_predicate(&mut self, at: Addr, pred: Predicate) -> Result<(), ParseError> {
        let slot = &mut self.node_mut(at).predicate;
        let merged = match (slot.take(), pred) {
            (None, p) => p,
            (
                Some(Predicate::Range { lo: lo1, hi: hi1 }),
                Predicate::Range { lo: lo2, hi: hi2 },
            ) => Predicate::Range {
                lo: tighter(lo1, lo2, /*lower=*/ true),
                hi: tighter(hi1, hi2, /*lower=*/ false),
            },
            (Some(a), b) => {
                return Err(ParseError {
                    msg: format!("conflicting predicates on one node: {a:?} and {b:?}"),
                    offset: 0,
                })
            }
        };
        *slot = Some(merged);
        Ok(())
    }

    /// Joins two nodes on equal string value (fresh join variable).
    fn join(&mut self, a: Addr, b: Addr) {
        let var = format!("xq{}", self.next_join);
        self.next_join += 1;
        self.node_mut(a).outputs.push(Output::Val {
            join_var: Some(var.clone()),
        });
        self.node_mut(b).outputs.push(Output::Val {
            join_var: Some(var),
        });
    }

    fn finish(self) -> Result<Query, ParseError> {
        if self.patterns.is_empty() {
            return Err(ParseError {
                msg: "query binds no documents".into(),
                offset: 0,
            });
        }
        // A query must return something.
        let any_output = self
            .patterns
            .iter()
            .any(|p| p.nodes.iter().any(|n| !n.outputs.is_empty()));
        if !any_output {
            return Err(ParseError {
                msg: "return clause produced no outputs".into(),
                offset: 0,
            });
        }
        Ok(Query {
            patterns: self.patterns,
            name: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Xq<'a> {
    s: &'a [u8],
    pos: usize,
    builder: Builder,
}

#[derive(Debug, Clone)]
enum Operand {
    Path {
        var: String,
        path: Vec<(Axis, NodeTest)>,
    },
    Literal(String),
}

impl<'a> Xq<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        while matches!(self.s.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, t: &str) -> bool {
        self.ws();
        if self.s[self.pos..].starts_with(t.as_bytes()) {
            self.pos += t.len();
            true
        } else {
            false
        }
    }

    /// Consumes a keyword only at a word boundary.
    fn keyword(&mut self, kw: &str) -> bool {
        self.ws();
        if !self.s[self.pos..].starts_with(kw.as_bytes()) {
            return false;
        }
        let after = self.s.get(self.pos + kw.len()).copied();
        let boundary = !matches!(after, Some(b) if b.is_ascii_alphanumeric() || b == b'_');
        if boundary {
            self.pos += kw.len();
        }
        boundary
    }

    fn name(&mut self) -> Result<String, ParseError> {
        self.ws();
        let start = self.pos;
        // Same name byte class as the tree-pattern parser (incl. UTF-8
        // continuation bytes), so both front-ends accept the same labels.
        while matches!(self.s.get(self.pos),
            Some(&b) if b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'-' | b'.' | b':')
                || b >= 0x80)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn var(&mut self) -> Result<String, ParseError> {
        self.ws();
        if !self.eat("$") {
            return Err(self.err("expected '$variable'"));
        }
        self.name()
    }

    fn literal(&mut self) -> Result<Option<String>, ParseError> {
        self.ws();
        match self.s.get(self.pos) {
            Some(b'"') | Some(b'\'') => {
                let quote = self.s[self.pos];
                self.pos += 1;
                let start = self.pos;
                while self.s.get(self.pos) != Some(&quote) {
                    if self.pos >= self.s.len() {
                        return Err(self.err("unterminated string literal"));
                    }
                    self.pos += 1;
                }
                let v = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Some(v))
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.s.get(self.pos), Some(b) if b.is_ascii_digit() || *b == b'.') {
                    self.pos += 1;
                }
                Ok(Some(
                    String::from_utf8_lossy(&self.s[start..self.pos]).into_owned(),
                ))
            }
            _ => Ok(None),
        }
    }

    /// Parses `(("/"|"//") step)+` (possibly empty — returns `[]`).
    fn path(&mut self) -> Result<Vec<(Axis, NodeTest)>, ParseError> {
        let mut steps = Vec::new();
        loop {
            self.ws();
            // Remember the position *before* the axis so a `string()` /
            // `text()` postfix can be handed back to the caller intact,
            // whatever whitespace surrounded the slash.
            let step_start = self.pos;
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                break;
            };
            self.ws();
            if self.eat("@") {
                steps.push((axis, NodeTest::Attribute(self.name()?)));
            } else {
                // `string()` / `text()` postfixes are handled by callers;
                // stop before them.
                let save = self.pos;
                let n = self.name()?;
                if n == "string" || n == "text" {
                    self.pos = step_start;
                    let _ = save;
                    break;
                }
                steps.push((axis, NodeTest::Element(n)));
            }
        }
        Ok(steps)
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        self.ws();
        if self.s.get(self.pos) == Some(&b'$') {
            let var = self.var()?;
            let path = self.path()?;
            Ok(Operand::Path { var, path })
        } else if let Some(lit) = self.literal()? {
            Ok(Operand::Literal(lit))
        } else {
            Err(self.err("expected a path expression or literal"))
        }
    }

    fn resolve(&mut self, var: &str, path: &[(Axis, NodeTest)]) -> Result<Addr, ParseError> {
        let &base = self
            .builder
            .vars
            .get(var)
            .ok_or_else(|| self.err(format!("unbound variable ${var}")))?;
        Ok(self.builder.walk(base, path))
    }

    fn query(&mut self) -> Result<(), ParseError> {
        if !self.keyword("for") {
            return Err(self.err("expected 'for'"));
        }
        loop {
            self.binding()?;
            if !self.eat(",") {
                break;
            }
        }
        if self.keyword("where") {
            loop {
                self.condition()?;
                if !self.keyword("and") {
                    break;
                }
            }
        }
        if !self.keyword("return") {
            return Err(self.err("expected 'return'"));
        }
        self.returns()?;
        self.ws();
        if self.pos != self.s.len() {
            return Err(self.err("trailing input after return clause"));
        }
        Ok(())
    }

    fn binding(&mut self) -> Result<(), ParseError> {
        let var = self.var()?;
        if !self.keyword("in") {
            return Err(self.err("expected 'in'"));
        }
        self.ws();
        let addr = if self.eat("doc(") {
            // doc() or doc("uri") — the argument names the collection and
            // is not interpreted (one warehouse = one collection).
            let _ = self.literal()?;
            if !self.eat(")") {
                return Err(self.err("expected ')' after doc("));
            }
            let mut path = self.path()?;
            if path.is_empty() {
                return Err(self.err("doc() binding needs a path"));
            }
            let (axis, test) = path.remove(0);
            let root = self.builder.new_pattern(axis, test);
            self.builder.walk(root, &path)
        } else if self.s.get(self.pos) == Some(&b'$') {
            let base = self.var()?;
            let path = self.path()?;
            if path.is_empty() {
                return Err(self.err("variable binding needs a path"));
            }
            self.resolve(&base, &path)?
        } else {
            return Err(self.err("expected doc() or a variable"));
        };
        self.builder.vars.insert(var, addr);
        Ok(())
    }

    fn condition(&mut self) -> Result<(), ParseError> {
        self.ws();
        if self.keyword("contains") {
            if !self.eat("(") {
                return Err(self.err("expected '(' after contains"));
            }
            let target = self.operand()?;
            if !self.eat(",") {
                return Err(self.err("expected ',' in contains()"));
            }
            let word = match self.operand()? {
                Operand::Literal(l) => l,
                _ => return Err(self.err("contains() needs a literal word")),
            };
            if !self.eat(")") {
                return Err(self.err("expected ')' after contains()"));
            }
            let Operand::Path { var, path } = target else {
                return Err(self.err("contains() needs a path expression"));
            };
            let addr = self.resolve(&var, &path)?;
            return self.builder.add_predicate(addr, Predicate::Contains(word));
        }
        let left = self.operand()?;
        self.ws();
        let op = if self.eat("<=") {
            "<="
        } else if self.eat(">=") {
            ">="
        } else if self.eat("<") {
            "<"
        } else if self.eat(">") {
            ">"
        } else if self.eat("=") {
            "="
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        let right = self.operand()?;
        match (left, right) {
            (Operand::Path { var, path }, Operand::Literal(lit)) => {
                let addr = self.resolve(&var, &path)?;
                self.apply_cmp(addr, op, lit)
            }
            (Operand::Literal(lit), Operand::Path { var, path }) => {
                let addr = self.resolve(&var, &path)?;
                // Mirror the operator: `1854 < $p/year` ≡ `$p/year > 1854`.
                let mirrored = match op {
                    "<" => ">",
                    "<=" => ">=",
                    ">" => "<",
                    ">=" => "<=",
                    other => other,
                };
                self.apply_cmp(addr, mirrored, lit)
            }
            (Operand::Path { var: v1, path: p1 }, Operand::Path { var: v2, path: p2 }) => {
                if op != "=" {
                    return Err(self.err("only equality joins are supported"));
                }
                let a = self.resolve(&v1, &p1)?;
                let b = self.resolve(&v2, &p2)?;
                self.builder.join(a, b);
                Ok(())
            }
            _ => Err(self.err("a condition needs at least one path expression")),
        }
    }

    fn apply_cmp(&mut self, addr: Addr, op: &str, lit: String) -> Result<(), ParseError> {
        let pred = match op {
            "=" => Predicate::Eq(lit),
            "<" => Predicate::Range {
                lo: None,
                hi: Some(Bound {
                    value: lit,
                    inclusive: false,
                }),
            },
            "<=" => Predicate::Range {
                lo: None,
                hi: Some(Bound {
                    value: lit,
                    inclusive: true,
                }),
            },
            ">" => Predicate::Range {
                lo: Some(Bound {
                    value: lit,
                    inclusive: false,
                }),
                hi: None,
            },
            ">=" => Predicate::Range {
                lo: Some(Bound {
                    value: lit,
                    inclusive: true,
                }),
                hi: None,
            },
            _ => unreachable!("operators matched above"),
        };
        self.builder.add_predicate(addr, pred)
    }

    fn returns(&mut self) -> Result<(), ParseError> {
        self.ws();
        let parenthesized = self.eat("(");
        loop {
            self.return_expr()?;
            if !self.eat(",") {
                break;
            }
        }
        if parenthesized && !self.eat(")") {
            return Err(self.err("expected ')' closing the return tuple"));
        }
        Ok(())
    }

    /// Consumes an optional `/string()` / `/text()` postfix.
    fn eat_postfix(&mut self) -> Result<bool, ParseError> {
        self.ws();
        if !self.eat("/") {
            return Ok(false);
        }
        self.ws();
        if !(self.keyword("string") || self.keyword("text")) {
            return Err(self.err("expected string() or text() after '/'"));
        }
        self.ws();
        if !self.eat("(") {
            return Err(self.err("expected '(' in string()/text()"));
        }
        self.ws();
        if !self.eat(")") {
            return Err(self.err("expected ')' in string()/text()"));
        }
        Ok(true)
    }

    fn return_expr(&mut self) -> Result<(), ParseError> {
        let var = self.var()?;
        let path = self.path()?;
        // Postfix: /string() or /text() → val; none → cont. Parsed
        // tolerantly: whitespace may surround the slash and parentheses.
        let val = self.eat_postfix()?;
        let addr = self.resolve(&var, &path)?;
        let is_attr = self.builder.patterns[addr.0].nodes[addr.1]
            .test
            .is_attribute();
        let output = if val || is_attr {
            Output::Val { join_var: None }
        } else {
            Output::Cont
        };
        self.builder.node_mut(addr).outputs.push(output);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive_matches;
    use crate::parser::parse_query;
    use crate::valuejoin::join_pattern_results;
    use amada_xml::Document;
    use std::collections::HashSet;

    const DELACROIX: &str = "<painting id=\"1854-1\"><name>The Lion Hunt</name>\
        <year>1854</year>\
        <painter><name><first>Eugene</first><last>Delacroix</last></name></painter></painting>";
    const MANET: &str = "<painting id=\"1863-1\"><name>Olympia</name>\
        <year>1863</year>\
        <painter><name><first>Edouard</first><last>Manet</last></name></painter></painting>";
    const MUSEUM: &str = "<museum><name>Louvre</name>\
        <painting id=\"1854-1\"/><painting id=\"1863-1\"/></museum>";

    fn docs() -> Vec<Document> {
        vec![
            Document::parse_str("delacroix.xml", DELACROIX).unwrap(),
            Document::parse_str("manet.xml", MANET).unwrap(),
            Document::parse_str("museum.xml", MUSEUM).unwrap(),
        ]
    }

    /// Evaluates a query over the test documents, returning sorted rows.
    fn eval(q: &Query) -> Vec<Vec<String>> {
        let ds = docs();
        let per_pattern: Vec<Vec<crate::eval::Tuple>> = q
            .patterns
            .iter()
            .map(|p| ds.iter().flat_map(|d| naive_matches(d, p).0).collect())
            .collect();
        let mut rows: Vec<Vec<String>> = join_pattern_results(q, &per_pattern)
            .into_iter()
            .map(|t| t.columns)
            .collect();
        rows.sort();
        rows
    }

    /// Compares result sets up to column order (pattern-node creation
    /// order differs between the two front-ends; the paper's tuples are
    /// sets of bound values either way).
    fn assert_equivalent(xquery: &str, pattern_text: &str) {
        let xq = parse_xquery(xquery).unwrap_or_else(|e| panic!("{xquery}: {e}"));
        let pat = parse_query(pattern_text).unwrap();
        let norm = |mut rows: Vec<Vec<String>>| -> HashSet<Vec<String>> {
            for r in &mut rows {
                r.sort();
            }
            rows.into_iter().collect()
        };
        let a = norm(eval(&xq));
        let b = norm(eval(&pat));
        assert_eq!(a, b, "\nXQuery: {xquery}\npattern: {pattern_text}");
    }

    #[test]
    fn q1_pair_of_names() {
        assert_equivalent(
            "for $p in doc()//painting return ($p/name/string(), $p//painter/name/string())",
            "//painting[/name{val}, //painter[/name{val}]]",
        );
    }

    #[test]
    fn q2_equality_and_cont() {
        assert_equivalent(
            "for $p in doc()//painting where $p/year = 1854 return $p/name",
            "//painting[/name{cont}, /year{=1854}]",
        );
    }

    #[test]
    fn q3_contains() {
        assert_equivalent(
            "for $p in doc()//painting where contains($p/name, \"Lion\") \
             return $p//painter/name/last/string()",
            "//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]",
        );
    }

    #[test]
    fn q4_range_from_two_inequalities() {
        let q = parse_xquery(
            "for $p in doc()//painting \
             where $p//painter/name/last = \"Manet\" \
               and $p/year > 1854 and $p/year <= 1865 \
             return $p/name/string()",
        )
        .unwrap();
        // The two inequalities merged into one range predicate on one node.
        let year = q.patterns[0]
            .nodes
            .iter()
            .find(|n| n.test.label() == "year")
            .expect("year node exists");
        assert_eq!(
            year.predicate,
            Some(Predicate::Range {
                lo: Some(Bound {
                    value: "1854".into(),
                    inclusive: false
                }),
                hi: Some(Bound {
                    value: "1865".into(),
                    inclusive: true
                }),
            })
        );
        assert_equivalent(
            "for $p in doc()//painting \
             where $p//painter/name/last = \"Manet\" \
               and $p/year > 1854 and $p/year <= 1865 \
             return $p/name/string()",
            "//painting[/name{val}, //painter[/name[/last{=Manet}]], /year{1854<val<=1865}]",
        );
    }

    #[test]
    fn q5_value_join_across_documents() {
        assert_equivalent(
            "for $m in doc()//museum, $p in doc()//painting \
             where $m//painting/@id = $p/@id \
               and $p//painter/name/last = \"Delacroix\" \
             return $m/name/string()",
            "//museum[/name{val}, //painting[/@id{val as $j}]]; \
             //painting[/@id{val as $j}, //painter[/name[/last{=Delacroix}]]]",
        );
    }

    #[test]
    fn chained_variable_bindings() {
        assert_equivalent(
            "for $p in doc()//painting, $n in $p/painter/name \
             return $n/last/string()",
            "//painting[/painter[/name[/last{val}]]]",
        );
    }

    #[test]
    fn mirrored_literal_comparison() {
        assert_equivalent(
            "for $p in doc()//painting where 1854 < $p/year return $p/name/string()",
            "//painting[/name{val}, /year{1854<val}]",
        );
    }

    #[test]
    fn attribute_returns_are_values() {
        assert_equivalent(
            "for $p in doc()//painting return $p/@id",
            "//painting[/@id{val}]",
        );
    }

    #[test]
    fn postfix_tolerates_whitespace() {
        assert_equivalent(
            "for $p in doc()//painting return $p/name / string()",
            "//painting[/name{val}]",
        );
        assert_equivalent(
            "for $p in doc()//painting return $p/name/ text( )",
            "//painting[/name{val}]",
        );
        // A malformed postfix is a parse error, not a silent cont.
        assert!(parse_xquery("for $p in doc()//a return $p/b/string").is_err());
    }

    #[test]
    fn repeated_inequalities_keep_the_tighter_bound() {
        let q = parse_xquery(
            "for $p in doc()//a where $p/y > 5 and $p/y > 2 and $p/y <= 10 and $p/y <= 20 \
             return $p/y/string()",
        )
        .unwrap();
        let y = q.patterns[0]
            .nodes
            .iter()
            .find(|n| n.test.label() == "y")
            .unwrap();
        assert_eq!(
            y.predicate,
            Some(Predicate::Range {
                lo: Some(Bound {
                    value: "5".into(),
                    inclusive: false
                }),
                hi: Some(Bound {
                    value: "10".into(),
                    inclusive: true
                }),
            })
        );
    }

    #[test]
    fn errors() {
        // Unbound variable.
        assert!(parse_xquery("for $p in doc()//a return $q/b").is_err());
        // Missing return.
        assert!(parse_xquery("for $p in doc()//a").is_err());
        // Conflicting equality predicates.
        assert!(
            parse_xquery("for $p in doc()//a where $p/b = \"x\" and $p/b = \"y\" return $p/b")
                .is_err()
        );
        // Non-equality join.
        assert!(parse_xquery(
            "for $a in doc()//x, $b in doc()//y where $a/k < $b/k return $a/k/string()"
        )
        .is_err());
        // Trailing garbage.
        assert!(parse_xquery("for $p in doc()//a return $p/b extra").is_err());
    }
}
