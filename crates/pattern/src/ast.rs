//! Abstract syntax for the paper's query language (Section 4): *value joins
//! over tree patterns*.
//!
//! A [`Query`] is one or more [`TreePattern`]s. Within a pattern, nodes are
//! labeled with an element or attribute name, edges are parent–child (`/`)
//! or ancestor–descendant (`//`), nodes may be annotated with `val` and/or
//! `cont` output markers, and a node may carry one value predicate
//! (equality, word containment, or range). Patterns are connected by value
//! joins: two `val` annotations bound to the same join variable must be
//! equal (the paper's dashed lines).

use std::fmt;

/// What a pattern node's label must match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// An element with this tag name.
    Element(String),
    /// An attribute with this name (written `@name`).
    Attribute(String),
}

impl NodeTest {
    /// The raw label (without the `@`).
    pub fn label(&self) -> &str {
        match self {
            NodeTest::Element(l) | NodeTest::Attribute(l) => l,
        }
    }

    /// True for attribute tests.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeTest::Attribute(_))
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Element(l) => write!(f, "{l}"),
            NodeTest::Attribute(l) => write!(f, "@{l}"),
        }
    }
}

/// The edge connecting a pattern node to its pattern parent (for the root:
/// to the conceptual document root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/` — parent–child (paper: single line).
    Child,
    /// `//` — ancestor–descendant (paper: double line).
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// One endpoint of a range predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// The constant. Compared numerically when both sides parse as `f64`,
    /// lexicographically otherwise.
    pub value: String,
    /// Whether the endpoint itself is admitted (`<=` vs `<`).
    pub inclusive: bool,
}

/// A value predicate on a pattern node (Section 4).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `= c` — the node's string value equals `c`.
    Eq(String),
    /// `contains(c)` — the node's value contains the word `c`.
    Contains(String),
    /// `a < val <= b` — the value lies in the range. Either bound may be
    /// absent (half-open ranges are a convenience extension).
    Range {
        lo: Option<Bound>,
        hi: Option<Bound>,
    },
}

impl Predicate {
    /// Evaluates the predicate against a node's string value.
    pub fn matches(&self, value: &str) -> bool {
        match self {
            Predicate::Eq(c) => value == c,
            Predicate::Contains(w) => amada_xml::words::contains_word(value, w),
            Predicate::Range { lo, hi } => {
                let above = lo
                    .as_ref()
                    .is_none_or(|b| match compare_values(value, &b.value) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => b.inclusive,
                        std::cmp::Ordering::Less => false,
                    });
                let below = hi
                    .as_ref()
                    .is_none_or(|b| match compare_values(value, &b.value) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => b.inclusive,
                        std::cmp::Ordering::Greater => false,
                    });
                above && below
            }
        }
    }
}

/// Compares two values numerically when both parse as `f64`, else
/// lexicographically. This is the comparison semantics of range predicates.
pub fn compare_values(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.cmp(b),
    }
}

/// An output annotation on a pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// `val` — return the node's string value; optionally bound to a join
    /// variable (`val as $x`).
    Val { join_var: Option<String> },
    /// `cont` — return the serialized subtree rooted at the node.
    Cont,
}

/// A node of a tree pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternNode {
    /// Label test.
    pub test: NodeTest,
    /// Edge to the pattern parent (for the root: from the document root,
    /// where `Descendant` means "anywhere in the document").
    pub axis: Axis,
    /// Pattern parent (index into [`TreePattern::nodes`]); `None` for root.
    pub parent: Option<usize>,
    /// Pattern children, in syntactic order.
    pub children: Vec<usize>,
    /// Output annotations, in syntactic order.
    pub outputs: Vec<Output>,
    /// At most one value predicate.
    pub predicate: Option<Predicate>,
}

/// A single tree pattern. `nodes[0]` is the pattern root; children always
/// have larger indices than their parent (preorder storage).
#[derive(Debug, Clone, PartialEq)]
pub struct TreePattern {
    pub nodes: Vec<PatternNode>,
}

impl TreePattern {
    /// The pattern root node index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the pattern has no nodes (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of leaf nodes (no pattern children).
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].children.is_empty())
    }

    /// Indices of nodes carrying at least one output annotation, preorder.
    pub fn output_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| !self.nodes[i].outputs.is_empty())
    }

    /// The root-to-leaf label paths with edge types — the "query paths" of
    /// the LUP look-up (Section 5.2). Each path is the list of
    /// `(axis, node index)` from the root down to a leaf.
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<(Axis, usize)>> {
        let mut paths = Vec::new();
        let mut current = Vec::new();
        self.collect_paths(0, &mut current, &mut paths);
        paths
    }

    fn collect_paths(
        &self,
        node: usize,
        current: &mut Vec<(Axis, usize)>,
        out: &mut Vec<Vec<(Axis, usize)>>,
    ) {
        current.push((self.nodes[node].axis, node));
        if self.nodes[node].children.is_empty() {
            out.push(current.clone());
        } else {
            for &c in &self.nodes[node].children {
                self.collect_paths(c, current, out);
            }
        }
        current.pop();
    }

    /// Number of result columns (one per output annotation, preorder, in
    /// annotation order within a node).
    pub fn arity(&self) -> usize {
        self.nodes.iter().map(|n| n.outputs.len()).sum()
    }
}

/// A full query: one or more tree patterns related by value joins.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The constituent patterns.
    pub patterns: Vec<TreePattern>,
    /// Optional human-readable name (e.g. `q4`).
    pub name: Option<String>,
}

/// A value join extracted from a query: all the `(pattern, node)` sites
/// bound to one join variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGroup {
    /// The variable name (without the `$`).
    pub var: String,
    /// The sites that must agree on their string value.
    pub sites: Vec<(usize, usize)>,
}

impl Query {
    /// A query consisting of a single pattern.
    pub fn single(pattern: TreePattern) -> Query {
        Query {
            patterns: vec![pattern],
            name: None,
        }
    }

    /// Collects the join variable groups, in first-appearance order.
    pub fn join_groups(&self) -> Vec<JoinGroup> {
        let mut groups: Vec<JoinGroup> = Vec::new();
        for (pi, p) in self.patterns.iter().enumerate() {
            for (ni, n) in p.nodes.iter().enumerate() {
                for o in &n.outputs {
                    if let Output::Val { join_var: Some(v) } = o {
                        match groups.iter_mut().find(|g| g.var == *v) {
                            Some(g) => g.sites.push((pi, ni)),
                            None => groups.push(JoinGroup {
                                var: v.clone(),
                                sites: vec![(pi, ni)],
                            }),
                        }
                    }
                }
            }
        }
        groups
    }

    /// Total number of result columns across all patterns.
    pub fn arity(&self) -> usize {
        self.patterns.iter().map(TreePattern::arity).sum()
    }

    /// True when the query has exactly one pattern (no value join).
    pub fn is_single_pattern(&self) -> bool {
        self.patterns.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_eq() {
        assert!(Predicate::Eq("Manet".into()).matches("Manet"));
        assert!(!Predicate::Eq("Manet".into()).matches("manet"));
    }

    #[test]
    fn predicate_contains_is_word_based() {
        let p = Predicate::Contains("Lion".into());
        assert!(p.matches("The Lion Hunt"));
        assert!(!p.matches("Lions"));
    }

    #[test]
    fn predicate_range_numeric() {
        // The paper's q4: 1854 < val <= 1865.
        let p = Predicate::Range {
            lo: Some(Bound {
                value: "1854".into(),
                inclusive: false,
            }),
            hi: Some(Bound {
                value: "1865".into(),
                inclusive: true,
            }),
        };
        assert!(!p.matches("1854"));
        assert!(p.matches("1855"));
        assert!(p.matches("1865"));
        assert!(!p.matches("1866"));
        // Numeric, not lexicographic: "0999" style comparisons.
        assert!(p.matches(" 1860 "));
    }

    #[test]
    fn predicate_range_lexicographic_fallback() {
        let p = Predicate::Range {
            lo: Some(Bound {
                value: "b".into(),
                inclusive: true,
            }),
            hi: Some(Bound {
                value: "d".into(),
                inclusive: false,
            }),
        };
        assert!(p.matches("b"));
        assert!(p.matches("c"));
        assert!(!p.matches("d"));
    }

    #[test]
    fn half_open_ranges() {
        let p = Predicate::Range {
            lo: None,
            hi: Some(Bound {
                value: "10".into(),
                inclusive: false,
            }),
        };
        assert!(p.matches("9"));
        assert!(!p.matches("10"));
    }

    #[test]
    fn compare_values_prefers_numeric() {
        use std::cmp::Ordering;
        assert_eq!(compare_values("9", "10"), Ordering::Less);
        assert_eq!(compare_values("a9", "a10"), Ordering::Greater); // lexicographic
    }
}
