//! Holistic twig join over streams of *(pre, post, depth)* identifiers.
//!
//! This implements the PathStack / path-merge variant of the holistic twig
//! join of Bruno, Koudas & Srivastava (SIGMOD 2002) — the algorithm the
//! paper plugs its LUI / 2LUPI look-ups into (Section 5.3): each query node
//! consumes a stream of structural IDs *sorted by `pre`* (the index keeps
//! them sorted exactly so these joins need no sort operator), root-to-leaf
//! path solutions are produced with the chained-stack encoding, and path
//! solutions are then merge-joined on their shared prefix nodes into full
//! twig matches.
//!
//! The join is generic over a per-ID payload `T`:
//!
//! * document evaluation uses `T = NodeId` (to materialize values),
//! * index-lookup document selection uses `T = ()` (only existence and the
//!   IDs themselves matter).
//!
//! Parent–child edges are handled by relaxing them to ancestor–descendant
//! during stack construction and filtering on `depth` at solution-expansion
//! time; this enumerates a superset of chains and keeps exactly the valid
//! ones, which is correct (if not always optimal — the same trade-off the
//! original paper makes for child axes).

use crate::ast::{Axis, TreePattern};
use crate::eval::{candidates, materialize, EvalStats, Tuple};
use crate::stream::{SliceStream, TwigStream};
use amada_xml::{Document, NodeId, StructuralId};
use std::collections::HashMap;

/// The shape of a twig: a rooted tree of query nodes with edge axes.
/// Node 0 is the root; `parent[0]` is `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigShape {
    /// Parent index per node (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// The axis of the edge from `parent[i]` to `i`; `axis[0]` is the root
    /// axis and is *not* interpreted by the join (callers pre-filter the
    /// root stream when the root must anchor at the document root).
    pub axis: Vec<Axis>,
    /// Children per node.
    pub children: Vec<Vec<usize>>,
}

impl TwigShape {
    /// Builds the shape of a [`TreePattern`] (labels and predicates are the
    /// caller's concern — they determine the streams, not the shape).
    pub fn from_pattern(p: &TreePattern) -> TwigShape {
        TwigShape {
            parent: p.nodes.iter().map(|n| n.parent).collect(),
            axis: p.nodes.iter().map(|n| n.axis).collect(),
            children: p.nodes.iter().map(|n| n.children.clone()).collect(),
        }
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the shape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root-to-leaf node paths.
    pub fn paths(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        self.walk(0, &mut cur, &mut out);
        out
    }

    fn walk(&self, n: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        cur.push(n);
        if self.children[n].is_empty() {
            out.push(cur.clone());
        } else {
            for &c in &self.children[n] {
                self.walk(c, cur, out);
            }
        }
        cur.pop();
    }
}

/// A full twig match: one `(StructuralId, T)` per query node, indexed like
/// the shape's nodes.
pub type Assignment<T> = Vec<(StructuralId, T)>;

/// A partial assignment: `None` for query nodes not yet covered.
type Sparse<T> = Vec<Option<(StructuralId, T)>>;

/// Runs the holistic twig join with galloping stream advance.
///
/// `streams[i]` is the candidate stream for query node `i`, sorted by `pre`
/// (document order). Returns every distinct assignment of query nodes to
/// stream elements satisfying all edges.
pub fn holistic_twig_join<T: Copy>(
    shape: &TwigShape,
    streams: &[Vec<(StructuralId, T)>],
) -> Vec<Assignment<T>> {
    let mut s: Vec<SliceStream<'_, T>> = streams.iter().map(|v| SliceStream::new(v)).collect();
    join_streams_inner(shape, &mut s, false)
}

/// Like [`holistic_twig_join`] but stops as soon as one match is found.
/// Used for index-side document selection, where only existence matters.
pub fn twig_has_match<T: Copy>(shape: &TwigShape, streams: &[Vec<(StructuralId, T)>]) -> bool {
    let mut s: Vec<SliceStream<'_, T>> = streams.iter().map(|v| SliceStream::new(v)).collect();
    !join_streams_inner(shape, &mut s, true).is_empty()
}

/// [`holistic_twig_join`] over arbitrary [`TwigStream`]s — e.g. lazy block
/// cursors that decode postings on demand.
pub fn holistic_twig_join_streams<T: Copy, S: TwigStream<T>>(
    shape: &TwigShape,
    streams: &mut [S],
) -> Vec<Assignment<T>> {
    join_streams_inner(shape, streams, false)
}

/// Existence check over arbitrary [`TwigStream`]s.
pub fn twig_streams_have_match<T: Copy, S: TwigStream<T>>(
    shape: &TwigShape,
    streams: &mut [S],
) -> bool {
    !join_streams_inner(shape, streams, true).is_empty()
}

/// The original element-at-a-time join, kept as the reference
/// implementation for equivalence tests and before/after benchmarks.
pub fn holistic_twig_join_linear<T: Copy>(
    shape: &TwigShape,
    streams: &[Vec<(StructuralId, T)>],
) -> Vec<Assignment<T>> {
    join_inner_linear(shape, streams, false)
}

/// Existence check via the element-at-a-time reference join.
pub fn twig_has_match_linear<T: Copy>(
    shape: &TwigShape,
    streams: &[Vec<(StructuralId, T)>],
) -> bool {
    !join_inner_linear(shape, streams, true).is_empty()
}

fn join_streams_inner<T: Copy, S: TwigStream<T>>(
    shape: &TwigShape,
    streams: &mut [S],
    early_exit: bool,
) -> Vec<Assignment<T>> {
    assert_eq!(shape.len(), streams.len(), "one stream per query node");
    // Empty stream on any node: no solutions.
    for s in streams.iter_mut() {
        s.reset();
    }
    if streams.iter().any(|s| s.peek().is_none()) {
        return Vec::new();
    }
    let paths = shape.paths();
    let mut acc: Option<Vec<Sparse<T>>> = None;
    for path in &paths {
        let sols = path_stack_streams(shape, streams, path);
        if sols.is_empty() {
            return Vec::new();
        }
        // Convert path solutions into sparse assignments.
        let sparse: Vec<Sparse<T>> = sols
            .into_iter()
            .map(|sol| {
                let mut a = vec![None; shape.len()];
                for (k, &qi) in path.iter().enumerate() {
                    a[qi] = Some(sol[k]);
                }
                a
            })
            .collect();
        acc = Some(match acc {
            None => sparse,
            Some(prev) => merge_assignments(shape.len(), prev, sparse),
        });
        if acc.as_ref().is_some_and(Vec::is_empty) {
            return Vec::new();
        }
        if early_exit && paths.len() == 1 {
            break;
        }
    }
    let mut out: Vec<Assignment<T>> = acc
        .unwrap_or_default()
        .into_iter()
        .map(|a| {
            a.into_iter()
                .map(|x| x.expect("all nodes assigned"))
                .collect()
        })
        .collect();
    if early_exit {
        out.truncate(1);
    }
    out
}

/// PathStack over one root-to-leaf path with galloping stream advance.
/// Returns solutions aligned with `path` (root first).
///
/// Produces exactly the solutions of the element-at-a-time variant, in the
/// same order: skipping only drops elements that can never appear in a
/// chain, and while stacks may retain entries the reference run would have
/// popped, solution expansion applies exact structural checks, and a
/// retained entry that would have been popped at a skipped element can
/// never be an ancestor of anything arriving after it.
fn path_stack_streams<T: Copy, S: TwigStream<T>>(
    shape: &TwigShape,
    streams: &mut [S],
    path: &[usize],
) -> Vec<Vec<(StructuralId, T)>> {
    let k = path.len();
    for &q in path {
        streams[q].reset();
    }
    // Per path-level stacks: (sid, payload, pointer-to-top-of-parent-stack).
    let mut stacks: Vec<Vec<(StructuralId, T, isize)>> = vec![Vec::new(); k];
    let mut solutions = Vec::new();

    loop {
        // Galloping skips: while a level's parent stack is empty, nothing
        // can be pushed at this level before the parent stream's head is,
        // and any future parent-level element has `pre >=` that head's
        // `pre` while an ancestor needs strictly smaller `pre` — so every
        // element at this level with `pre <=` the head's can never gain an
        // ancestor and is skipped (whole blocks at a time for block
        // cursors). An exhausted parent stream with an empty parent stack
        // kills the level outright; iterating root-to-leaf propagates
        // death down the path in one pass.
        for level in 1..k {
            if !stacks[level - 1].is_empty() {
                continue;
            }
            match streams[path[level - 1]].peek() {
                None => streams[path[level]].skip_to_end(),
                Some((psid, _)) => match psid.pre.checked_add(1) {
                    Some(p) => streams[path[level]].skip_to_pre(p),
                    None => streams[path[level]].skip_to_end(),
                },
            }
        }

        // qmin: the path level whose stream's next element has minimal pre.
        let mut qmin: Option<(usize, StructuralId, T)> = None;
        for (level, &q) in path.iter().enumerate() {
            if let Some((sid, payload)) = streams[q].peek() {
                // Ties (same document node feeding several query nodes) go
                // to the level closest to the root, so ancestors are pushed
                // before their descendants arrive.
                if qmin.is_none_or(|(_, m, _)| sid.pre < m.pre) {
                    qmin = Some((level, sid, payload));
                }
            }
        }
        let Some((level, next, payload)) = qmin else {
            break;
        };
        streams[path[level]].advance();

        // Pop, from every stack, elements that end before the incoming
        // element starts (disjoint predecessors — they can never be
        // ancestors of it or of anything arriving later). Elements equal to
        // `next` (the same document node feeding another query level) must
        // stay: `precedes` is false for them.
        for st in stacks.iter_mut() {
            while st.last().is_some_and(|(sid, _, _)| sid.precedes(&next)) {
                st.pop();
            }
        }

        // Push only when the parent chain is alive.
        if level == 0 || !stacks[level - 1].is_empty() {
            let ptr = if level == 0 {
                -1
            } else {
                stacks[level - 1].len() as isize - 1
            };
            if level == k - 1 {
                // Leaf: expand solutions immediately; no need to push.
                expand(
                    shape,
                    path,
                    &stacks,
                    (next, payload, ptr),
                    level,
                    &mut solutions,
                );
            } else {
                stacks[level].push((next, payload, ptr));
            }
        }
    }
    solutions
}

fn join_inner_linear<T: Copy>(
    shape: &TwigShape,
    streams: &[Vec<(StructuralId, T)>],
    early_exit: bool,
) -> Vec<Assignment<T>> {
    assert_eq!(shape.len(), streams.len(), "one stream per query node");
    // Empty stream on any node: no solutions.
    if streams.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let paths = shape.paths();
    let mut acc: Option<Vec<Sparse<T>>> = None;
    for path in &paths {
        let sols = path_stack_linear(shape, streams, path);
        if sols.is_empty() {
            return Vec::new();
        }
        // Convert path solutions into sparse assignments.
        let sparse: Vec<Sparse<T>> = sols
            .into_iter()
            .map(|sol| {
                let mut a = vec![None; shape.len()];
                for (k, &qi) in path.iter().enumerate() {
                    a[qi] = Some(sol[k]);
                }
                a
            })
            .collect();
        acc = Some(match acc {
            None => sparse,
            Some(prev) => merge_assignments(shape.len(), prev, sparse),
        });
        if acc.as_ref().is_some_and(Vec::is_empty) {
            return Vec::new();
        }
        if early_exit && paths.len() == 1 {
            break;
        }
    }
    let mut out: Vec<Assignment<T>> = acc
        .unwrap_or_default()
        .into_iter()
        .map(|a| {
            a.into_iter()
                .map(|x| x.expect("all nodes assigned"))
                .collect()
        })
        .collect();
    if early_exit {
        out.truncate(1);
    }
    out
}

/// Element-at-a-time PathStack over one root-to-leaf path. Returns
/// solutions aligned with `path` (root first).
fn path_stack_linear<T: Copy>(
    shape: &TwigShape,
    streams: &[Vec<(StructuralId, T)>],
    path: &[usize],
) -> Vec<Vec<(StructuralId, T)>> {
    let k = path.len();
    // Per path-level stacks: (sid, payload, pointer-to-top-of-parent-stack).
    let mut stacks: Vec<Vec<(StructuralId, T, isize)>> = vec![Vec::new(); k];
    let mut cursors = vec![0usize; k];
    let mut solutions = Vec::new();

    loop {
        // qmin: the path level whose stream's next element has minimal pre.
        let mut qmin: Option<usize> = None;
        for (level, &q) in path.iter().enumerate() {
            if cursors[level] < streams[q].len() {
                let pre = streams[q][cursors[level]].0.pre;
                // Ties (same document node feeding several query nodes) go
                // to the level closest to the root, so ancestors are pushed
                // before their descendants arrive.
                if qmin.is_none_or(|m| pre < streams[path[m]][cursors[m]].0.pre) {
                    qmin = Some(level);
                }
            }
        }
        let Some(level) = qmin else { break };
        let q = path[level];
        let (next, payload) = streams[q][cursors[level]];
        cursors[level] += 1;

        // Pop, from every stack, elements that end before the incoming
        // element starts (disjoint predecessors — they can never be
        // ancestors of it or of anything arriving later). Elements equal to
        // `next` (the same document node feeding another query level) must
        // stay: `precedes` is false for them.
        for st in stacks.iter_mut() {
            while st.last().is_some_and(|(sid, _, _)| sid.precedes(&next)) {
                st.pop();
            }
        }

        // Push only when the parent chain is alive.
        if level == 0 || !stacks[level - 1].is_empty() {
            let ptr = if level == 0 {
                -1
            } else {
                stacks[level - 1].len() as isize - 1
            };
            if level == k - 1 {
                // Leaf: expand solutions immediately; no need to push.
                expand(
                    shape,
                    path,
                    &stacks,
                    (next, payload, ptr),
                    level,
                    &mut solutions,
                );
            } else {
                stacks[level].push((next, payload, ptr));
            }
        }
    }
    solutions
}

/// Expands the chained-stack encoding into explicit path solutions ending
/// at `elem` (which sits at `level`), filtering parent–child edges by the
/// structural-ID parent test.
fn expand<T: Copy>(
    shape: &TwigShape,
    path: &[usize],
    stacks: &[Vec<(StructuralId, T, isize)>],
    elem: (StructuralId, T, isize),
    level: usize,
    out: &mut Vec<Vec<(StructuralId, T)>>,
) {
    // Build chains bottom-up; `partial` holds (sid, payload) leaf-first.
    fn rec<T: Copy>(
        shape: &TwigShape,
        path: &[usize],
        stacks: &[Vec<(StructuralId, T, isize)>],
        elem: (StructuralId, T, isize),
        level: usize,
        partial: &mut Vec<(StructuralId, T)>,
        out: &mut Vec<Vec<(StructuralId, T)>>,
    ) {
        partial.push((elem.0, elem.1));
        if level == 0 {
            let mut sol = partial.clone();
            sol.reverse();
            out.push(sol);
        } else {
            let q = path[level];
            let axis = shape.axis[q];
            for idx in 0..=elem.2 {
                let cand = stacks[level - 1][idx as usize];
                let ok = match axis {
                    Axis::Descendant => cand.0.is_ancestor_of(&elem.0),
                    Axis::Child => cand.0.is_parent_of(&elem.0),
                };
                if ok {
                    rec(shape, path, stacks, cand, level - 1, partial, out);
                }
            }
        }
        partial.pop();
    }
    let mut partial = Vec::with_capacity(path.len());
    rec(shape, path, stacks, elem, level, &mut partial, out);
}

/// Hash-joins two sparse assignment sets on their shared (assigned-in-both)
/// query nodes.
fn merge_assignments<T: Copy>(
    n: usize,
    left: Vec<Sparse<T>>,
    right: Vec<Sparse<T>>,
) -> Vec<Sparse<T>> {
    // Shared nodes: assigned in both sides (same for every row by
    // construction — sides are unions of whole paths).
    let shared: Vec<usize> = (0..n)
        .filter(|&i| left[0][i].is_some() && right[0][i].is_some())
        .collect();
    let key = |a: &Sparse<T>| -> Vec<u32> {
        shared
            .iter()
            .map(|&i| a[i].expect("shared node assigned").0.pre)
            .collect()
    };
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, l) in left.iter().enumerate() {
        table.entry(key(l)).or_default().push(i);
    }
    let mut out = Vec::new();
    for r in &right {
        if let Some(ls) = table.get(&key(r)) {
            for &li in ls {
                let mut merged = left[li].clone();
                for i in 0..n {
                    if merged[i].is_none() {
                        merged[i] = r[i];
                    }
                }
                out.push(merged);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Document-level evaluation through the twig join.
// ---------------------------------------------------------------------------

/// Evaluates a tree pattern on a document using the holistic twig join;
/// equivalent to [`crate::eval::naive_matches`] (property-tested).
pub fn evaluate_pattern_twig(doc: &Document, pattern: &TreePattern) -> (Vec<Tuple>, EvalStats) {
    let (assignments, mut stats) = twig_embeddings(doc, pattern);
    let tuples = materialize(doc, pattern, &assignments);
    stats.tuples = tuples.len() as u64;
    (tuples, stats)
}

/// Enumerates embeddings via the twig join (payload = document node).
pub fn twig_embeddings(doc: &Document, pattern: &TreePattern) -> (Vec<Vec<NodeId>>, EvalStats) {
    let mut stats = EvalStats::default();
    let shape = TwigShape::from_pattern(pattern);
    let mut streams: Vec<Vec<(StructuralId, NodeId)>> = Vec::with_capacity(pattern.len());
    for (i, pn) in pattern.nodes.iter().enumerate() {
        let mut s: Vec<(StructuralId, NodeId)> = candidates(doc, pn, &mut stats)
            .into_iter()
            .map(|n| (doc.sid(n), n))
            .collect();
        if i == 0 && pn.axis == Axis::Child {
            s.retain(|(_, n)| *n == doc.root());
        }
        streams.push(s);
    }
    let sols = holistic_twig_join(&shape, &streams);
    stats.embeddings = sols.len() as u64;
    let embeddings = sols
        .into_iter()
        .map(|a| a.into_iter().map(|(_, n)| n).collect())
        .collect();
    (embeddings, stats)
}

/// Existence check via the twig join.
pub fn twig_doc_has_match(doc: &Document, pattern: &TreePattern) -> bool {
    let mut stats = EvalStats::default();
    let shape = TwigShape::from_pattern(pattern);
    let mut streams: Vec<Vec<(StructuralId, ())>> = Vec::with_capacity(pattern.len());
    for (i, pn) in pattern.nodes.iter().enumerate() {
        let mut s: Vec<(StructuralId, ())> = candidates(doc, pn, &mut stats)
            .into_iter()
            .map(|n| (doc.sid(n), ()))
            .collect();
        if i == 0 && pn.axis == Axis::Child {
            s.retain(|(sid, _)| sid.depth == 1);
        }
        streams.push(s);
    }
    twig_has_match(&shape, &streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive_matches;
    use crate::parser::parse_pattern;
    use amada_xml::Document;
    use std::collections::HashSet;

    const DELACROIX: &str = "<painting id=\"1854-1\">\
        <name>The Lion Hunt</name>\
        <painter><name><first>Eugene</first><last>Delacroix</last></name></painter>\
        </painting>";

    fn assert_same_as_naive(xml: &str, pattern_text: &str) {
        let doc = Document::parse_str("t.xml", xml).unwrap();
        let p = parse_pattern(pattern_text).unwrap();
        let (naive, _) = naive_matches(&doc, &p);
        let (twig, _) = evaluate_pattern_twig(&doc, &p);
        let a: HashSet<_> = naive.into_iter().collect();
        let b: HashSet<_> = twig.into_iter().collect();
        assert_eq!(a, b, "pattern {pattern_text} on {xml}");
    }

    #[test]
    fn matches_naive_on_figure3() {
        for p in [
            "//painting[/name{val}, //painter[/name{val}]]",
            "//painting[//name{val}]",
            "//name{val}",
            "/painting[/@id{val}]",
            "//painter[/name[/first{val}, /last{val}]]",
            "//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]",
        ] {
            assert_same_as_naive(DELACROIX, p);
        }
    }

    #[test]
    fn matches_naive_on_recursive_document() {
        // Recursive nesting exercises the stack encoding: a//b with
        // multiple stacked ancestors.
        let xml = "<a><b v=\"1\"><a><b v=\"2\"><b v=\"3\"/></b></a></b></a>";
        for p in [
            "//a[//b{cont}]",
            "//a[/b{val}]",
            "//b[//b{cont}]",
            "//a[//a[//b{val}]]",
            "//b[/@v{val}]",
        ] {
            assert_same_as_naive(xml, p);
        }
    }

    #[test]
    fn branching_twig_merges_paths() {
        let xml = "<lib><book><title>A</title><year>2000</year></book>\
                   <book><title>B</title><year>2001</year></book></lib>";
        assert_same_as_naive(xml, "//book[/title{val}, /year{val}]");
        assert_same_as_naive(xml, "//lib[//title{val}, //year{val}]");
    }

    #[test]
    fn empty_stream_short_circuits() {
        let doc = Document::parse_str("t.xml", DELACROIX).unwrap();
        let p = parse_pattern("//painting[/nonexistent]").unwrap();
        let (t, stats) = evaluate_pattern_twig(&doc, &p);
        assert!(t.is_empty());
        assert_eq!(stats.embeddings, 0);
    }

    #[test]
    fn has_match_agrees_with_eval() {
        let doc = Document::parse_str("t.xml", DELACROIX).unwrap();
        for (p, expect) in [
            ("//painting[/name]", true),
            ("//painting[/year]", false),
            ("//painter[/name[/last{=Delacroix}]]", true),
            ("//painter[/name[/last{=Manet}]]", false),
        ] {
            let pat = parse_pattern(p).unwrap();
            assert_eq!(twig_doc_has_match(&doc, &pat), expect, "{p}");
        }
    }

    #[test]
    fn single_node_pattern() {
        let doc = Document::parse_str("t.xml", DELACROIX).unwrap();
        let p = parse_pattern("//name{val}").unwrap();
        let (t, _) = evaluate_pattern_twig(&doc, &p);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shape_paths() {
        let p = parse_pattern("//a[/b[/c, //d], /e]").unwrap();
        let shape = TwigShape::from_pattern(&p);
        let paths = shape.paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], [0, 1, 2]);
        assert_eq!(paths[1], [0, 1, 3]);
        assert_eq!(paths[2], [0, 4]);
    }
}
