//! # amada-pattern
//!
//! The paper's query language (Section 4) — *value joins over tree
//! patterns* — together with two single-document evaluators and the
//! cross-document value-join executor:
//!
//! * [`ast`] — patterns, axes, predicates, output annotations, queries;
//! * [`parser`] — a concrete textual grammar for the paper's graphical
//!   notation (Figure 2);
//! * [`eval`] — a naive backtracking evaluator (correctness oracle) and
//!   tuple materialization (`val` = string value, `cont` = subtree);
//! * [`structural`] — binary structural joins (Al-Khalifa et al., the
//!   paper's \[3\]) on sorted ID streams;
//! * [`stream`] — skippable sorted-stream inputs ([`TwigStream`]) the join
//!   gallops over (exponential probe + binary search);
//! * [`twig`] — the holistic twig join over *(pre, post, depth)* streams
//!   (PathStack + path-solution merging), generic over stream payloads so
//!   the index look-up layer can run it on bare ID lists;
//! * [`valuejoin`] — joining per-pattern tuple sets into query results.
//!
//! ## Example
//!
//! ```
//! use amada_pattern::{parse_query, evaluate_query_on_documents};
//! use amada_xml::Document;
//!
//! let doc = Document::parse_str(
//!     "delacroix.xml",
//!     r#"<painting id="1854-1"><name>The Lion Hunt</name>
//!        <painter><name><first>Eugene</first><last>Delacroix</last></name></painter>
//!        </painting>"#,
//! ).unwrap();
//! let q = parse_query("//painting[/name{val}, //painter[/name{val}]]").unwrap();
//! let (results, _stats) = evaluate_query_on_documents(&q, [&doc]);
//! assert_eq!(results[0].columns, ["The Lion Hunt", "EugeneDelacroix"]);
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod stream;
pub mod structural;
pub mod twig;
pub mod valuejoin;
pub mod xquery;

pub use ast::{Axis, Bound, NodeTest, Output, PatternNode, Predicate, Query, TreePattern};
pub use eval::{naive_matches, EvalStats, Tuple};
pub use parser::{parse_pattern, parse_pattern_component, parse_query, ParseError};
pub use stream::{SliceStream, TwigStream};
pub use structural::{semijoin_descendants, structural_join};
pub use twig::{
    evaluate_pattern_twig, holistic_twig_join, holistic_twig_join_linear,
    holistic_twig_join_streams, twig_has_match, twig_has_match_linear, twig_streams_have_match,
    TwigShape,
};
pub use valuejoin::{join_pattern_results, JoinedTuple};
pub use xquery::parse_xquery;

use amada_xml::Document;

/// Evaluates a full (possibly multi-pattern) query over a set of documents
/// using the twig-join evaluator, then applies the value joins.
///
/// This is the "standard XML query evaluation" capability the warehouse's
/// query-processor module runs on the documents selected by the index
/// look-up (architecture step 11).
pub fn evaluate_query_on_documents<'a>(
    query: &Query,
    docs: impl IntoIterator<Item = &'a Document> + Clone,
) -> (Vec<JoinedTuple>, EvalStats) {
    let mut stats = EvalStats::default();
    let per_pattern: Vec<Vec<Tuple>> = query
        .patterns
        .iter()
        .map(|p| {
            let mut tuples = Vec::new();
            for d in docs.clone() {
                let (t, s) = evaluate_pattern_twig(d, p);
                stats.merge(s);
                tuples.extend(t);
            }
            tuples
        })
        .collect();
    let joined = join_pattern_results(query, &per_pattern);
    (joined, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_single_pattern() {
        let doc = Document::parse_str(
            "d.xml",
            "<painting><name>Olympia</name><year>1863</year></painting>",
        )
        .unwrap();
        let q = parse_query("//painting[/name{val}, /year{val}]").unwrap();
        let (res, stats) = evaluate_query_on_documents(&q, [&doc]);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].columns, ["Olympia", "1863"]);
        assert_eq!(stats.tuples, 1);
    }

    #[test]
    fn end_to_end_value_join() {
        let a = Document::parse_str("a.xml", "<a><k>1</k><v>left</v></a>").unwrap();
        let b = Document::parse_str("b.xml", "<b><k>1</k><v>right</v></b>").unwrap();
        let q = parse_query("//a[/k{val as $k}, /v{val}]; //b[/k{val as $k}, /v{val}]").unwrap();
        let (res, _) = evaluate_query_on_documents(&q, [&a, &b]);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].columns, ["1", "left", "1", "right"]);
    }
}
