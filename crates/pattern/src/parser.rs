//! Textual syntax for tree-pattern queries.
//!
//! The paper draws patterns graphically (Figure 2); this crate gives them a
//! concrete grammar:
//!
//! ```text
//! query    := pattern ( ";" pattern )* ";"?
//! pattern  := step
//! step     := axis test anns? children?
//! axis     := "//" | "/"
//! test     := NAME | "@" NAME
//! anns     := "{" ann ("," ann)* "}"
//! children := "[" step ("," step)* "]"
//! ann      := "val" ( "as" "$" IDENT )?
//!           | "cont"
//!           | "=" value
//!           | "contains" "(" value ")"
//!           | value REL "val" ( REL value )?     // range, e.g. 1854<val<=1865
//!           | "val" REL value                    // upper-bounded range
//! REL      := "<" | "<="
//! value    := '"' … '"' | bare token ([A-Za-z0-9_.:-]+)
//! ```
//!
//! The paper's q4 (paintings by Manet created in (1854, 1865]) reads:
//!
//! ```text
//! //painting[/name{val}, //painter[/name[/last{="Manet"}]], /year{1854<val<=1865}]
//! ```
//!
//! and its q5 (museums exposing paintings by Delacroix), a value join of two
//! patterns, reads:
//!
//! ```text
//! //museum[/name{val}, //painting[/@id{val as $p}]];
//! //painting[/@id{val as $p}, //painter[/name[/last{="Delacroix"}]]]
//! ```

use crate::ast::{Axis, Bound, NodeTest, Output, PatternNode, Predicate, Query, TreePattern};
use std::fmt;

/// A query-text parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub msg: String,
    /// Byte offset in the query text.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full (possibly multi-pattern) query.
pub fn parse_query(text: &str) -> Result<Query, ParseError> {
    let mut p = P {
        s: text.as_bytes(),
        pos: 0,
    };
    let mut patterns = Vec::new();
    loop {
        p.ws();
        if p.eof() {
            break;
        }
        patterns.push(p.pattern()?);
        p.ws();
        if p.eat(b';') {
            continue;
        }
        if !p.eof() {
            return Err(p.error("expected ';' between patterns or end of input"));
        }
    }
    if patterns.is_empty() {
        return Err(ParseError {
            msg: "empty query".into(),
            offset: 0,
        });
    }
    let q = Query {
        patterns,
        name: None,
    };
    validate(&q, true)?;
    Ok(q)
}

/// Parses a single tree pattern.
pub fn parse_pattern(text: &str) -> Result<TreePattern, ParseError> {
    let q = parse_query(text)?;
    if q.patterns.len() != 1 {
        return Err(ParseError {
            msg: "expected a single pattern".into(),
            offset: 0,
        });
    }
    Ok(q.patterns.into_iter().next().expect("checked length"))
}

/// Parses a single tree pattern *as a query component*: a join variable
/// may appear only once, because its partner sites live in sibling
/// patterns of the enclosing query. This is the entry the pushdown wire
/// format uses — it ships one pattern of a query at a time, and that
/// pattern must round-trip with its join annotations intact.
pub fn parse_pattern_component(text: &str) -> Result<TreePattern, ParseError> {
    let mut p = P {
        s: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let pattern = p.pattern()?;
    p.ws();
    if !p.eof() {
        return Err(p.error("expected a single pattern"));
    }
    let q = Query {
        patterns: vec![pattern],
        name: None,
    };
    validate(&q, false)?;
    Ok(q.patterns.into_iter().next().expect("one pattern"))
}

fn validate(q: &Query, enforce_join_arity: bool) -> Result<(), ParseError> {
    // Join variables must appear at least twice (unless the caller parses
    // a lone component of a larger query); attribute pattern nodes cannot
    // have children.
    if enforce_join_arity {
        for g in q.join_groups() {
            if g.sites.len() < 2 {
                return Err(ParseError {
                    msg: format!("join variable ${} is used only once", g.var),
                    offset: 0,
                });
            }
        }
    }
    for p in &q.patterns {
        for n in &p.nodes {
            if n.test.is_attribute() && !n.children.is_empty() {
                return Err(ParseError {
                    msg: format!("attribute node @{} cannot have children", n.test.label()),
                    offset: 0,
                });
            }
        }
    }
    Ok(())
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, t: &str) -> bool {
        if self.s[self.pos..].starts_with(t.as_bytes()) {
            self.pos += t.len();
            true
        } else {
            false
        }
    }

    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn pattern(&mut self) -> Result<TreePattern, ParseError> {
        let mut nodes = Vec::new();
        self.step(None, &mut nodes)?;
        Ok(TreePattern { nodes })
    }

    fn step(
        &mut self,
        parent: Option<usize>,
        nodes: &mut Vec<PatternNode>,
    ) -> Result<usize, ParseError> {
        self.ws();
        let axis = if self.eat_str("//") {
            Axis::Descendant
        } else if self.eat(b'/') {
            Axis::Child
        } else {
            return Err(self.error("expected '/' or '//'"));
        };
        self.ws();
        let is_attr = self.eat(b'@');
        let name = self.name()?;
        let test = if is_attr {
            NodeTest::Attribute(name)
        } else {
            NodeTest::Element(name)
        };
        let idx = nodes.len();
        nodes.push(PatternNode {
            test,
            axis,
            parent,
            children: Vec::new(),
            outputs: Vec::new(),
            predicate: None,
        });
        self.ws();
        if self.eat(b'{') {
            loop {
                self.annotation(idx, nodes)?;
                self.ws();
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b'}') {
                    break;
                }
                return Err(self.error("expected ',' or '}' in annotations"));
            }
            self.ws();
        }
        if self.eat(b'[') {
            loop {
                let child = self.step(Some(idx), nodes)?;
                nodes[idx].children.push(child);
                self.ws();
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b']') {
                    break;
                }
                return Err(self.error("expected ',' or ']' in children"));
            }
        }
        Ok(idx)
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn value(&mut self) -> Result<String, ParseError> {
        self.ws();
        if self.eat(b'"') {
            let start = self.pos;
            while self.peek() != Some(b'"') {
                if self.eof() {
                    return Err(self.error("unterminated string"));
                }
                self.pos += 1;
            }
            let v = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
            self.pos += 1;
            Ok(v)
        } else {
            let start = self.pos;
            while matches!(self.peek(),
                Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80)
            {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(self.error("expected a value"));
            }
            Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
        }
    }

    /// Parses `"<" | "<="`, returning `inclusive`.
    fn rel(&mut self) -> Result<bool, ParseError> {
        self.ws();
        if self.eat_str("<=") {
            Ok(true)
        } else if self.eat(b'<') {
            Ok(false)
        } else {
            Err(self.error("expected '<' or '<='"))
        }
    }

    fn set_predicate(
        &mut self,
        idx: usize,
        nodes: &mut [PatternNode],
        pred: Predicate,
    ) -> Result<(), ParseError> {
        if nodes[idx].predicate.is_some() {
            return Err(self.error("node already has a predicate"));
        }
        nodes[idx].predicate = Some(pred);
        Ok(())
    }

    fn annotation(&mut self, idx: usize, nodes: &mut [PatternNode]) -> Result<(), ParseError> {
        self.ws();
        // Keyword-led annotations.
        if self.keyword("cont") {
            nodes[idx].outputs.push(Output::Cont);
            return Ok(());
        }
        if self.keyword("contains") {
            self.ws();
            if !self.eat(b'(') {
                return Err(self.error("expected '(' after contains"));
            }
            let w = self.value()?;
            self.ws();
            if !self.eat(b')') {
                return Err(self.error("expected ')' after contains word"));
            }
            return self.set_predicate(idx, nodes, Predicate::Contains(w));
        }
        if self.keyword("val") {
            self.ws();
            // "val as $x" | "val < value" | bare "val".
            if self.keyword("as") {
                self.ws();
                if !self.eat(b'$') {
                    return Err(self.error("expected '$' before join variable"));
                }
                let var = self.name()?;
                nodes[idx].outputs.push(Output::Val {
                    join_var: Some(var),
                });
                return Ok(());
            }
            if matches!(self.peek(), Some(b'<')) {
                let inclusive = self.rel()?;
                let hi = self.value()?;
                return self.set_predicate(
                    idx,
                    nodes,
                    Predicate::Range {
                        lo: None,
                        hi: Some(Bound {
                            value: hi,
                            inclusive,
                        }),
                    },
                );
            }
            nodes[idx].outputs.push(Output::Val { join_var: None });
            return Ok(());
        }
        if self.eat(b'=') {
            let v = self.value()?;
            return self.set_predicate(idx, nodes, Predicate::Eq(v));
        }
        // Range with a lower bound: value REL val (REL value)?
        let lo = self.value()?;
        let lo_inclusive = self.rel()?;
        self.ws();
        if !self.keyword("val") {
            return Err(self.error("expected 'val' in range predicate"));
        }
        self.ws();
        let hi = if matches!(self.peek(), Some(b'<')) {
            let inclusive = self.rel()?;
            let v = self.value()?;
            Some(Bound {
                value: v,
                inclusive,
            })
        } else {
            None
        };
        self.set_predicate(
            idx,
            nodes,
            Predicate::Range {
                lo: Some(Bound {
                    value: lo,
                    inclusive: lo_inclusive,
                }),
                hi,
            },
        )
    }

    /// Consumes `kw` only when followed by a non-name character, so that
    /// e.g. `value` is not read as the keyword `val`.
    fn keyword(&mut self, kw: &str) -> bool {
        if !self.s[self.pos..].starts_with(kw.as_bytes()) {
            return false;
        }
        let after = self.s.get(self.pos + kw.len()).copied();
        let boundary = !matches!(after,
            Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'));
        if boundary {
            self.pos += kw.len();
        }
        boundary
    }
}

// ---------------------------------------------------------------------------
// Display: regenerate canonical syntax (parse ∘ display == id, tested).
// ---------------------------------------------------------------------------

impl fmt::Display for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_step(self, 0, f)
    }
}

fn write_step(p: &TreePattern, idx: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let n = &p.nodes[idx];
    write!(f, "{}{}", n.axis, n.test)?;
    let mut anns: Vec<String> = Vec::new();
    for o in &n.outputs {
        match o {
            Output::Val { join_var: None } => anns.push("val".into()),
            Output::Val { join_var: Some(v) } => anns.push(format!("val as ${v}")),
            Output::Cont => anns.push("cont".into()),
        }
    }
    match &n.predicate {
        Some(Predicate::Eq(v)) => anns.push(format!("=\"{v}\"")),
        Some(Predicate::Contains(w)) => anns.push(format!("contains(\"{w}\")")),
        Some(Predicate::Range { lo, hi }) => {
            let mut s = String::new();
            if let Some(b) = lo {
                s.push_str(&format!(
                    "\"{}\"{}",
                    b.value,
                    if b.inclusive { "<=" } else { "<" }
                ));
            }
            s.push_str("val");
            if let Some(b) = hi {
                s.push_str(&format!(
                    "{}\"{}\"",
                    if b.inclusive { "<=" } else { "<" },
                    b.value
                ));
            }
            anns.push(s);
        }
        None => {}
    }
    if !anns.is_empty() {
        write!(f, "{{{}}}", anns.join(", "))?;
    }
    if !n.children.is_empty() {
        write!(f, "[")?;
        for (i, &c) in n.children.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_step(p, c, f)?;
        }
        write!(f, "]")?;
    }
    Ok(())
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn parse_q1_shape() {
        // Paper q1: painting name + painter name.
        let q = parse_query("//painting[/name{val}, //painter[/name{val}]]").unwrap();
        assert_eq!(q.patterns.len(), 1);
        let p = &q.patterns[0];
        assert_eq!(p.len(), 4);
        assert_eq!(p.nodes[0].test, NodeTest::Element("painting".into()));
        assert_eq!(p.nodes[0].axis, Axis::Descendant);
        assert_eq!(p.nodes[1].test, NodeTest::Element("name".into()));
        assert_eq!(p.nodes[1].axis, Axis::Child);
        assert_eq!(p.nodes[2].test, NodeTest::Element("painter".into()));
        assert_eq!(p.nodes[2].axis, Axis::Descendant);
        assert_eq!(p.nodes[1].outputs, vec![Output::Val { join_var: None }]);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn parse_q4_range_and_eq() {
        let q = parse_query(
            "//painting[/name{val}, //painter[/name[/last{=Manet}]], /year{1854<val<=1865}]",
        )
        .unwrap();
        let p = &q.patterns[0];
        let last = p.nodes.iter().find(|n| n.test.label() == "last").unwrap();
        assert_eq!(last.predicate, Some(Predicate::Eq("Manet".into())));
        let year = p.nodes.iter().find(|n| n.test.label() == "year").unwrap();
        assert_eq!(
            year.predicate,
            Some(Predicate::Range {
                lo: Some(Bound {
                    value: "1854".into(),
                    inclusive: false
                }),
                hi: Some(Bound {
                    value: "1865".into(),
                    inclusive: true
                }),
            })
        );
    }

    #[test]
    fn parse_q5_value_join() {
        let q = parse_query(
            "//museum[/name{val}, //painting[/@id{val as $p}]]; \
             //painting[/@id{val as $p}, //painter[/name[/last{=\"Delacroix\"}]]]",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
        let groups = q.join_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].var, "p");
        assert_eq!(groups[0].sites.len(), 2);
        // @id is an attribute node.
        let (pi, ni) = groups[0].sites[0];
        assert!(q.patterns[pi].nodes[ni].test.is_attribute());
    }

    #[test]
    fn parse_contains() {
        let q =
            parse_query("//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]").unwrap();
        let name = &q.patterns[0].nodes[1];
        assert_eq!(name.predicate, Some(Predicate::Contains("Lion".into())));
    }

    #[test]
    fn parse_cont_annotation() {
        let q = parse_query("//painting[//description{cont}, /year{=1854}]").unwrap();
        let d = &q.patterns[0].nodes[1];
        assert_eq!(d.outputs, vec![Output::Cont]);
    }

    #[test]
    fn parse_quoted_values_with_spaces() {
        let q = parse_query("//name{=\"The Lion Hunt\"}").unwrap();
        assert_eq!(
            q.patterns[0].nodes[0].predicate,
            Some(Predicate::Eq("The Lion Hunt".into()))
        );
    }

    #[test]
    fn parse_upper_bounded_range() {
        let q = parse_query("//year{val<=1865}").unwrap();
        assert_eq!(
            q.patterns[0].nodes[0].predicate,
            Some(Predicate::Range {
                lo: None,
                hi: Some(Bound {
                    value: "1865".into(),
                    inclusive: true
                })
            })
        );
    }

    #[test]
    fn keyword_is_not_a_prefix_match() {
        // An element named "value" must not trip the "val" keyword.
        let q = parse_query("//value{val}").unwrap();
        assert_eq!(q.patterns[0].nodes[0].test.label(), "value");
        assert_eq!(q.patterns[0].nodes[0].outputs.len(), 1);
    }

    #[test]
    fn error_on_single_use_join_var() {
        let err = parse_query("//a{val as $x}").unwrap_err();
        assert!(err.msg.contains("$x"));
    }

    #[test]
    fn error_on_attribute_with_children() {
        let err = parse_query("//a[/@id[/b]]").unwrap_err();
        assert!(err.msg.contains("@id"));
    }

    #[test]
    fn error_on_two_predicates() {
        let err = parse_query("//a{=x, =y}").unwrap_err();
        assert!(err.msg.contains("predicate"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_query("painting").is_err());
        assert!(parse_query("//painting[").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("//a{val} trailing").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "//painting[/name{val}, //painter[/name{val}]]",
            "//painting[//description{cont}, /year{=\"1854\"}]",
            "//painting[/name{contains(\"Lion\")}, //painter[/name[/last{val}]]]",
            "//painting[/name{val}, //painter[/name[/last{=\"Manet\"}]], /year{\"1854\"<val<=\"1865\"}]",
            "//museum[/name{val}, //painting[/@id{val as $p}]]; //painting[/@id{val as $p}]",
            "//a{val, cont, \"1\"<=val}",
        ] {
            let q = parse_query(text).unwrap();
            let shown = q.to_string();
            let q2 = parse_query(&shown).unwrap();
            assert_eq!(q, q2, "round-trip failed for {text} -> {shown}");
        }
    }
}
