//! Skippable input streams for the holistic twig join.
//!
//! The PathStack join consumes, per query node, a stream of structural IDs
//! sorted by `pre`. The original formulation advances each stream one
//! element at a time; [`TwigStream`] generalizes the interface with a
//! `skip_to_pre` operation so the join can *gallop* — skip runs of
//! elements (or, with block-structured postings, whole undecoded blocks)
//! that provably cannot take part in any solution.
//!
//! Implementations in this crate and downstream:
//!
//! * [`SliceStream`] — over an in-memory sorted slice, with
//!   exponential-probe + binary-search skipping;
//! * `amada_index::codec::BlockCursor` — over block-compressed postings,
//!   skipping whole blocks via their `max_pre` headers.

use amada_xml::StructuralId;

/// A forward-only stream of `(StructuralId, payload)` pairs sorted by
/// `pre`, with efficient forward skipping.
///
/// Contract: after `skip_to_pre(p)`, the head (if any) is the first
/// element of the stream with `pre >= p` that the cursor had not already
/// passed; skipping never moves backwards. `reset` rewinds to the first
/// element (the join runs once per root-to-leaf path over the same
/// streams).
pub trait TwigStream<T: Copy> {
    /// The element under the cursor, or `None` when exhausted.
    fn peek(&self) -> Option<(StructuralId, T)>;
    /// Moves past the current element.
    fn advance(&mut self);
    /// Positions the cursor at the first remaining element with
    /// `pre >= min_pre`.
    fn skip_to_pre(&mut self, min_pre: u32);
    /// Exhausts the stream.
    fn skip_to_end(&mut self);
    /// Rewinds to the first element.
    fn reset(&mut self);
}

/// [`TwigStream`] over a `pre`-sorted slice, skipping with an exponential
/// probe followed by a binary search of the bracketed range — `O(log d)`
/// for a skip of distance `d`, so short hops near the cursor stay cheap.
#[derive(Debug)]
pub struct SliceStream<'a, T> {
    items: &'a [(StructuralId, T)],
    pos: usize,
}

impl<'a, T: Copy> SliceStream<'a, T> {
    /// A stream positioned at the first element of `items`.
    pub fn new(items: &'a [(StructuralId, T)]) -> Self {
        SliceStream { items, pos: 0 }
    }
}

impl<T: Copy> TwigStream<T> for SliceStream<'_, T> {
    #[inline]
    fn peek(&self) -> Option<(StructuralId, T)> {
        self.items.get(self.pos).copied()
    }

    #[inline]
    fn advance(&mut self) {
        self.pos += 1;
    }

    fn skip_to_pre(&mut self, min_pre: u32) {
        let rest = &self.items[self.pos.min(self.items.len())..];
        match rest.first() {
            None => return,
            Some((sid, _)) if sid.pre >= min_pre => return,
            Some(_) => {}
        }
        // Gallop: double the probe until it lands at or past the target,
        // then binary-search the bracketed half-open range.
        let mut probe = 1usize;
        while probe < rest.len() && rest[probe].0.pre < min_pre {
            probe *= 2;
        }
        let lo = probe / 2;
        let hi = probe.min(rest.len());
        let off = lo + rest[lo..hi].partition_point(|(sid, _)| sid.pre < min_pre);
        self.pos += off;
    }

    fn skip_to_end(&mut self) {
        self.pos = self.items.len();
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(pres: &[u32]) -> Vec<(StructuralId, ())> {
        pres.iter()
            .map(|&p| (StructuralId::new(p, p, 1), ()))
            .collect()
    }

    #[test]
    fn skip_lands_on_first_ge() {
        let items = stream(&[1, 3, 5, 8, 13, 21, 34, 55]);
        for target in 0..60 {
            let mut s = SliceStream::new(&items);
            s.skip_to_pre(target);
            let expect = items.iter().find(|(sid, _)| sid.pre >= target).copied();
            assert_eq!(s.peek(), expect, "target {target}");
        }
    }

    #[test]
    fn skip_never_moves_backwards() {
        let items = stream(&[2, 4, 6, 8, 10]);
        let mut s = SliceStream::new(&items);
        s.skip_to_pre(7);
        assert_eq!(s.peek().unwrap().0.pre, 8);
        s.skip_to_pre(3); // earlier target: no-op
        assert_eq!(s.peek().unwrap().0.pre, 8);
    }

    #[test]
    fn skip_past_end_exhausts() {
        let items = stream(&[1, 2, 3]);
        let mut s = SliceStream::new(&items);
        s.skip_to_pre(100);
        assert_eq!(s.peek(), None);
        s.reset();
        assert_eq!(s.peek().unwrap().0.pre, 1);
        s.skip_to_end();
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn skip_handles_duplicate_pres() {
        // The same document node can feed several query levels.
        let items = stream(&[1, 5, 5, 5, 9]);
        let mut s = SliceStream::new(&items);
        s.skip_to_pre(5);
        assert_eq!(s.peek().unwrap().0.pre, 5);
        s.advance();
        assert_eq!(s.peek().unwrap().0.pre, 5);
        s.skip_to_pre(6);
        assert_eq!(s.peek().unwrap().0.pre, 9);
    }
}
