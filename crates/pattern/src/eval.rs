//! Pattern evaluation over a single document: shared types, the naive
//! backtracking evaluator (used as a correctness oracle and for tiny
//! documents), and tuple materialization.
//!
//! Both evaluators ([`naive_matches`] and
//! [`crate::twig::evaluate_pattern_twig`]) enumerate *embeddings* — maps
//! from pattern nodes to document nodes respecting labels, edges and
//! predicates — and then project them onto the annotated nodes, returning
//! the same deduplicated tuple set.

use crate::ast::{Axis, NodeTest, Output, PatternNode, TreePattern};
use amada_xml::{Document, NodeId};
use std::collections::HashSet;
use std::sync::Arc;

/// One result tuple of a tree pattern on one document.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// URI of the document the tuple came from.
    pub uri: Arc<str>,
    /// Output column values (preorder of pattern nodes; annotation order
    /// within a node). `val` columns hold string values, `cont` columns
    /// hold serialized subtrees.
    pub columns: Vec<String>,
    /// Join-variable bindings `(var, value)`, in first-appearance order of
    /// the variable within this pattern.
    pub joins: Vec<(String, String)>,
}

impl Tuple {
    /// Total size in bytes of the materialized columns (used for the
    /// paper's `|r(q)|` result-size metric).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(String::len).sum()
    }
}

/// Counters describing the work an evaluation performed; these feed the
/// cloud work model (virtual compute time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Document nodes considered as candidates for some pattern node.
    pub candidates: u64,
    /// Full embeddings enumerated (before deduplication).
    pub embeddings: u64,
    /// Distinct output tuples produced.
    pub tuples: u64,
}

impl EvalStats {
    /// Accumulates another stats record into `self`.
    pub fn merge(&mut self, other: EvalStats) {
        self.candidates += other.candidates;
        self.embeddings += other.embeddings;
        self.tuples += other.tuples;
    }
}

/// The node value a predicate sees / a `val` annotation returns: attribute
/// value for attribute nodes, concatenated descendant text for elements.
pub fn node_value(doc: &Document, n: NodeId) -> String {
    doc.string_value(n)
}

/// Candidate document nodes for one pattern node (label + predicate match),
/// in document order.
pub fn candidates(doc: &Document, pnode: &PatternNode, stats: &mut EvalStats) -> Vec<NodeId> {
    let base: &[NodeId] = match &pnode.test {
        NodeTest::Element(l) => doc.elements_named(l),
        NodeTest::Attribute(l) => doc.attributes_named(l),
    };
    stats.candidates += base.len() as u64;
    match &pnode.predicate {
        None => base.to_vec(),
        Some(p) => base
            .iter()
            .copied()
            .filter(|&n| match doc.value(n) {
                // Attributes (and text) carry their value directly — no
                // string-value concatenation needed.
                Some(v) => p.matches(v),
                None => p.matches(&node_value(doc, n)),
            })
            .collect(),
    }
}

/// Checks the structural relation required by `axis` between a candidate
/// parent `a` and candidate child `d`.
#[inline]
pub fn axis_ok(doc: &Document, axis: Axis, a: NodeId, d: NodeId) -> bool {
    let (sa, sd) = (doc.sid(a), doc.sid(d));
    match axis {
        Axis::Child => sa.is_parent_of(&sd),
        Axis::Descendant => sa.is_ancestor_of(&sd),
    }
}

/// Enumerates all embeddings of `pattern` into `doc` by backtracking.
/// Each embedding maps pattern node `i` to `result[i]`.
pub fn naive_embeddings(doc: &Document, pattern: &TreePattern) -> (Vec<Vec<NodeId>>, EvalStats) {
    let mut stats = EvalStats::default();
    let mut out = Vec::new();
    let roots = candidates(doc, &pattern.nodes[0], &mut stats);
    for r in roots {
        // Root axis: `/` anchors at the document root element.
        if pattern.nodes[0].axis == Axis::Child && r != doc.root() {
            continue;
        }
        let mut assignment = vec![NodeId(u32::MAX); pattern.len()];
        assignment[0] = r;
        extend(doc, pattern, &mut assignment, &mut out, &mut stats);
    }
    stats.embeddings = out.len() as u64;
    (out, stats)
}

fn extend(
    doc: &Document,
    pattern: &TreePattern,
    assignment: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    stats: &mut EvalStats,
) {
    // Find the next unassigned pattern node in preorder; because children
    // have larger indices than parents, a simple scan works.
    let next = (0..pattern.len()).find(|&i| assignment[i] == NodeId(u32::MAX));
    let Some(next) = next else {
        out.push(assignment.clone());
        return;
    };
    let parent_p = pattern.nodes[next].parent.expect("non-root has a parent");
    let parent_d = assignment[parent_p];
    for cand in candidates(doc, &pattern.nodes[next], stats) {
        if axis_ok(doc, pattern.nodes[next].axis, parent_d, cand) {
            assignment[next] = cand;
            extend(doc, pattern, assignment, out, stats);
            assignment[next] = NodeId(u32::MAX);
        }
    }
}

/// Projects embeddings onto annotated nodes, materializes column values and
/// join keys, and deduplicates.
pub fn materialize(
    doc: &Document,
    pattern: &TreePattern,
    embeddings: &[Vec<NodeId>],
) -> Vec<Tuple> {
    let uri: Arc<str> = doc.uri().into();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for emb in embeddings {
        let mut columns = Vec::with_capacity(pattern.arity());
        let mut joins = Vec::new();
        for (i, n) in pattern.nodes.iter().enumerate() {
            for o in &n.outputs {
                match o {
                    Output::Val { join_var } => {
                        let v = node_value(doc, emb[i]);
                        if let Some(var) = join_var {
                            joins.push((var.clone(), v.clone()));
                        }
                        columns.push(v);
                    }
                    Output::Cont => columns.push(doc.serialize_subtree(emb[i])),
                }
            }
        }
        let t = Tuple {
            uri: uri.clone(),
            columns,
            joins,
        };
        if seen.insert((t.columns.clone(), t.joins.clone())) {
            out.push(t);
        }
    }
    out
}

/// Evaluates a pattern on a document with the naive evaluator.
pub fn naive_matches(doc: &Document, pattern: &TreePattern) -> (Vec<Tuple>, EvalStats) {
    let (embs, mut stats) = naive_embeddings(doc, pattern);
    let tuples = materialize(doc, pattern, &embs);
    stats.tuples = tuples.len() as u64;
    (tuples, stats)
}

/// True iff the pattern has at least one embedding in the document.
/// (Used to count the paper's Table 5 "documents with results".)
pub fn naive_has_match(doc: &Document, pattern: &TreePattern) -> bool {
    !naive_embeddings(doc, pattern).0.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;

    const DELACROIX: &str = "<painting id=\"1854-1\">\
        <name>The Lion Hunt</name>\
        <painter><name><first>Eugene</first><last>Delacroix</last></name></painter>\
        </painting>";

    fn doc() -> Document {
        Document::parse_str("delacroix.xml", DELACROIX).unwrap()
    }

    #[test]
    fn q1_two_name_columns() {
        let d = doc();
        let p = parse_pattern("//painting[/name{val}, //painter[/name{val}]]").unwrap();
        let (tuples, stats) = naive_matches(&d, &p);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].columns, ["The Lion Hunt", "EugeneDelacroix"]);
        assert!(stats.candidates > 0);
        assert_eq!(stats.tuples, 1);
    }

    #[test]
    fn child_vs_descendant_edges() {
        let d = doc();
        // painting/name: only the direct child qualifies.
        let child = parse_pattern("//painting[/name{val}]").unwrap();
        let (t, _) = naive_matches(&d, &child);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].columns, ["The Lion Hunt"]);
        // painting//name: both names qualify.
        let desc = parse_pattern("//painting[//name{val}]").unwrap();
        let (t, _) = naive_matches(&d, &desc);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn root_axis_child_anchors_at_document_root() {
        let d = doc();
        let anchored = parse_pattern("/painting[/name{val}]").unwrap();
        assert_eq!(naive_matches(&d, &anchored).0.len(), 1);
        let wrong = parse_pattern("/name{val}").unwrap();
        assert_eq!(naive_matches(&d, &wrong).0.len(), 0);
        let floating = parse_pattern("//name{val}").unwrap();
        assert_eq!(naive_matches(&d, &floating).0.len(), 2);
    }

    #[test]
    fn attribute_nodes_and_values() {
        let d = doc();
        let p = parse_pattern("//painting[/@id{val}]").unwrap();
        let (t, _) = naive_matches(&d, &p);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].columns, ["1854-1"]);
    }

    #[test]
    fn predicates_filter() {
        let d = doc();
        let hit = parse_pattern("//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]")
            .unwrap();
        let (t, _) = naive_matches(&d, &hit);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].columns, ["Delacroix"]);
        let miss = parse_pattern("//painting[/name{contains(Tiger)}]").unwrap();
        assert!(naive_matches(&d, &miss).0.is_empty());
    }

    #[test]
    fn cont_returns_subtree() {
        let d = doc();
        let p = parse_pattern("//painter[/name{cont}]").unwrap();
        let (t, _) = naive_matches(&d, &p);
        assert_eq!(
            t[0].columns,
            ["<name><first>Eugene</first><last>Delacroix</last></name>"]
        );
    }

    #[test]
    fn join_vars_are_captured() {
        let d = doc();
        let q =
            crate::parser::parse_query("//painting[/@id{val as $x}]; //painting[/@id{val as $x}]")
                .unwrap();
        let (t, _) = naive_matches(&d, &q.patterns[0]);
        assert_eq!(t[0].joins, [("x".to_string(), "1854-1".to_string())]);
    }

    #[test]
    fn duplicate_tuples_are_deduplicated() {
        // Two identical <name> children produce one identical tuple each;
        // after dedup only one remains.
        let d = Document::parse_str("t.xml", "<a><name>x</name><name>x</name></a>").unwrap();
        let p = parse_pattern("//a[/name{val}]").unwrap();
        let (t, stats) = naive_matches(&d, &p);
        assert_eq!(t.len(), 1);
        assert_eq!(stats.embeddings, 2);
    }

    #[test]
    fn has_match_is_consistent() {
        let d = doc();
        let p = parse_pattern("//painting[/year]").unwrap();
        assert!(!naive_has_match(&d, &p));
        let p = parse_pattern("//painting[/name]").unwrap();
        assert!(naive_has_match(&d, &p));
    }
}
