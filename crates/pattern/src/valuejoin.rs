//! Value joins across tree patterns (Section 5.5 of the paper).
//!
//! "Since one tree pattern only matches one XML document, a query
//! consisting of several tree patterns connected by a value join needs to
//! be answered by combining tree pattern query results from different
//! documents. […] evaluate first each tree pattern individually […]; then,
//! apply the value joins on the tree pattern results thus obtained."
//!
//! [`join_pattern_results`] implements exactly that second phase: it takes,
//! for each pattern of a [`Query`], the union of its tuples over all
//! evaluated documents, and hash-joins them on the shared join variables.

use crate::ast::Query;
use crate::eval::Tuple;
use std::collections::HashMap;
use std::sync::Arc;

/// A joined result tuple of a multi-pattern query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinedTuple {
    /// The documents that contributed (one per pattern, in pattern order;
    /// duplicates possible when patterns matched the same document).
    pub uris: Vec<Arc<str>>,
    /// Concatenated output columns, pattern by pattern.
    pub columns: Vec<String>,
}

impl JoinedTuple {
    /// Total byte size of materialized columns (the paper's `|r(q)|`).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(String::len).sum()
    }
}

/// Joins per-pattern tuple sets into final query results.
///
/// `per_pattern[i]` must hold the tuples of `query.patterns[i]` (across all
/// relevant documents). Patterns are joined left to right; two tuples are
/// compatible when they agree on every join variable they share. Patterns
/// without shared variables combine by cartesian product (not used by the
/// paper's workload, but well-defined).
pub fn join_pattern_results(query: &Query, per_pattern: &[Vec<Tuple>]) -> Vec<JoinedTuple> {
    assert_eq!(
        query.patterns.len(),
        per_pattern.len(),
        "one tuple set per pattern"
    );
    // A variable bound at two sites *within one pattern* is itself an
    // equality constraint; tuples whose sites disagree are not results.
    let consistent = |t: &&Tuple| {
        t.joins.iter().all(|(var, val)| {
            t.joins
                .iter()
                .filter(|(v2, _)| v2 == var)
                .all(|(_, v)| v == val)
        })
    };
    // Accumulated: (uris so far, columns so far, var -> value bindings).
    struct Acc {
        uris: Vec<Arc<str>>,
        columns: Vec<String>,
        bindings: HashMap<String, String>,
    }
    let mut acc: Vec<Acc> = vec![Acc {
        uris: Vec::new(),
        columns: Vec::new(),
        bindings: HashMap::new(),
    }];
    for tuples in per_pattern {
        // Shared variables between the accumulated side and this pattern:
        // bound on both sides. (Each pattern binds the same variable set in
        // every tuple, so the first tuple is representative.)
        let shared: Vec<&String> = tuples
            .first()
            .map(|t| {
                t.joins
                    .iter()
                    .map(|(var, _)| var)
                    // Accumulated rows all bind the same variable set
                    // (pattern annotations are fixed), so the first row is
                    // representative.
                    .filter(|var| acc.first().is_some_and(|a| a.bindings.contains_key(*var)))
                    .collect()
            })
            .unwrap_or_default();
        // Hash join on the shared variables (cartesian when none shared).
        let key_of_acc =
            |a: &Acc| -> Vec<String> { shared.iter().map(|v| a.bindings[*v].clone()).collect() };
        let key_of_tuple = |t: &Tuple| -> Vec<String> {
            shared
                .iter()
                .map(|v| {
                    t.joins
                        .iter()
                        .find(|(var, _)| var == *v)
                        .map(|(_, val)| val.clone())
                        .expect("shared variable bound by tuple")
                })
                .collect()
        };
        let mut table: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
        for (i, a) in acc.iter().enumerate() {
            table.entry(key_of_acc(a)).or_default().push(i);
        }
        let mut next: Vec<Acc> = Vec::new();
        for t in tuples.iter().filter(consistent) {
            let Some(matches) = table.get(&key_of_tuple(t)) else {
                continue;
            };
            for &ai in matches {
                let a = &acc[ai];
                // Shared variables already agree; merge the rest.
                let mut bindings = a.bindings.clone();
                for (var, val) in &t.joins {
                    bindings.insert(var.clone(), val.clone());
                }
                let mut uris = a.uris.clone();
                uris.push(t.uri.clone());
                let mut columns = a.columns.clone();
                columns.extend(t.columns.iter().cloned());
                next.push(Acc {
                    uris,
                    columns,
                    bindings,
                });
            }
        }
        acc = next;
        if acc.is_empty() {
            return Vec::new();
        }
    }
    let mut seen = std::collections::HashSet::new();
    acc.into_iter()
        .map(|a| JoinedTuple {
            uris: a.uris,
            columns: a.columns,
        })
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive_matches;
    use crate::parser::parse_query;
    use amada_xml::Document;

    fn tuples_for(query: &Query, docs: &[&Document]) -> Vec<Vec<Tuple>> {
        query
            .patterns
            .iter()
            .map(|p| docs.iter().flat_map(|d| naive_matches(d, p).0).collect())
            .collect()
    }

    #[test]
    fn q5_style_join_across_documents() {
        // A museum document referencing paintings by id, and two painting
        // documents — the shape of the paper's q5.
        let museum = Document::parse_str(
            "museum.xml",
            "<museum><name>Louvre</name>\
             <painting id=\"1854-1\"/><painting id=\"1863-1\"/></museum>",
        )
        .unwrap();
        let delacroix = Document::parse_str(
            "delacroix.xml",
            "<painting id=\"1854-1\"><painter><name><last>Delacroix</last></name></painter></painting>",
        )
        .unwrap();
        let manet = Document::parse_str(
            "manet.xml",
            "<painting id=\"1863-1\"><painter><name><last>Manet</last></name></painter></painting>",
        )
        .unwrap();
        let q = parse_query(
            "//museum[/name{val}, //painting[/@id{val as $p}]]; \
             //painting[/@id{val as $p}, //painter[/name[/last{=Delacroix}]]]",
        )
        .unwrap();
        let per_pattern = tuples_for(&q, &[&museum, &delacroix, &manet]);
        let joined = join_pattern_results(&q, &per_pattern);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].columns, ["Louvre", "1854-1", "1854-1"]);
        assert_eq!(joined[0].uris.len(), 2);
        assert_eq!(&*joined[0].uris[0], "museum.xml");
        assert_eq!(&*joined[0].uris[1], "delacroix.xml");
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let d = Document::parse_str("a.xml", "<a><x>1</x></a>").unwrap();
        let q = parse_query("//a[/x{val as $v}]; //b[/y{val as $v}]").unwrap();
        let per_pattern = tuples_for(&q, &[&d]);
        assert!(join_pattern_results(&q, &per_pattern).is_empty());
    }

    #[test]
    fn self_join_within_one_document() {
        let d = Document::parse_str(
            "p.xml",
            "<ps><p><id>1</id><ref>2</ref></p><p><id>2</id><ref>1</ref></p></ps>",
        )
        .unwrap();
        let q = parse_query("//p[/id{val}, /ref{val as $r}]; //p[/id{val as $r}]").unwrap();
        let per_pattern = tuples_for(&q, &[&d]);
        let joined = join_pattern_results(&q, &per_pattern);
        // (1,2)⋈(2) and (2,1)⋈(1).
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn three_way_join_chains_variables() {
        let a = Document::parse_str("a.xml", "<a><k>7</k></a>").unwrap();
        let b = Document::parse_str("b.xml", "<b><k>7</k><m>9</m></b>").unwrap();
        let c = Document::parse_str("c.xml", "<c><m>9</m><out>win</out></c>").unwrap();
        let q = parse_query(
            "//a[/k{val as $k}]; //b[/k{val as $k}, /m{val as $m}]; //c[/m{val as $m}, /out{val}]",
        )
        .unwrap();
        let per_pattern = tuples_for(&q, &[&a, &b, &c]);
        let joined = join_pattern_results(&q, &per_pattern);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].columns.last().unwrap(), "win");
    }

    #[test]
    fn intra_pattern_variable_reuse_is_an_equality_constraint() {
        // $v appears at two sites of the same pattern: only tuples whose
        // two values agree survive.
        let d = Document::parse_str(
            "a.xml",
            "<r><p><x>1</x><y>1</y></p><p><x>2</x><y>3</y></p></r>",
        )
        .unwrap();
        let q = parse_query("//p[/x{val as $v}, /y{val as $v}]");
        // The parser requires ≥2 uses, which this satisfies within one
        // pattern.
        let q = q.unwrap();
        let per_pattern = tuples_for(&q, &[&d]);
        let joined = join_pattern_results(&q, &per_pattern);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].columns, ["1", "1"]);
    }

    #[test]
    fn duplicate_joined_tuples_are_deduplicated() {
        let a = Document::parse_str("a.xml", "<a><k>1</k><k>1</k></a>").unwrap();
        let b = Document::parse_str("b.xml", "<b><k>1</k></b>").unwrap();
        let q = parse_query("//a[/k{val as $k}]; //b[/k{val as $k}]").unwrap();
        let per_pattern = tuples_for(&q, &[&a, &b]);
        // Pattern 1 dedups its two identical tuples already; the join
        // result is a single tuple either way.
        let joined = join_pattern_results(&q, &per_pattern);
        assert_eq!(joined.len(), 1);
    }
}
