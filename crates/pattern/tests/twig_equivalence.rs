//! Property test: the holistic twig join evaluator and the naive
//! backtracking evaluator return identical tuple sets on random documents
//! and random patterns over the same small vocabulary.

use amada_pattern::ast::{Axis, NodeTest, Output, PatternNode, Predicate, TreePattern};
use amada_pattern::eval::naive_matches;
use amada_pattern::twig::evaluate_pattern_twig;
use amada_xml::Document;
use proptest::prelude::*;
use std::collections::HashSet;

const LABELS: &[&str] = &["a", "b", "c", "d"];
const WORDS: &[&str] = &["lion", "hunt", "olympia", "sun"];

/// Random document over the small vocabulary, rendered directly to XML.
fn doc_strategy() -> impl Strategy<Value = String> {
    fn elem(depth: u32) -> BoxedStrategy<String> {
        let label = prop::sample::select(LABELS.to_vec());
        let attr = prop_oneof![
            Just(String::new()),
            prop::sample::select(WORDS.to_vec()).prop_map(|w| format!(" k=\"{w}\"")),
        ];
        if depth == 0 {
            (label, attr, prop::sample::select(WORDS.to_vec()))
                .prop_map(|(l, a, w)| format!("<{l}{a}>{w}</{l}>"))
                .boxed()
        } else {
            (
                label,
                attr,
                prop::collection::vec(
                    prop_oneof![
                        elem(depth - 1),
                        prop::sample::select(WORDS.to_vec()).prop_map(|w| w.to_string())
                    ],
                    0..4,
                ),
            )
                .prop_map(|(l, a, kids)| format!("<{l}{a}>{}</{l}>", kids.join("")))
                .boxed()
        }
    }
    elem(3)
}

/// Random pattern over the same vocabulary.
fn pattern_strategy() -> impl Strategy<Value = TreePattern> {
    // A flat spec: per node (label, axis, parent_choice, predicate?, output?).
    prop::collection::vec(
        (
            prop::sample::select(LABELS.to_vec()),
            prop::bool::ANY,
            prop::num::u8::ANY,
            prop::option::of(prop_oneof![
                prop::sample::select(WORDS.to_vec()).prop_map(|w| Predicate::Contains(w.into())),
                prop::sample::select(WORDS.to_vec()).prop_map(|w| Predicate::Eq(w.into())),
            ]),
            prop::bool::ANY,
            prop::bool::ANY, // attribute test for @k nodes
        ),
        1..5,
    )
    .prop_map(|spec| {
        let mut nodes: Vec<PatternNode> = Vec::new();
        for (i, (label, desc, pchoice, pred, out, attr)) in spec.into_iter().enumerate() {
            let parent = if i == 0 { None } else { Some(pchoice as usize % i) };
            // Attribute leaf nodes use name "k"; elements use the label.
            let is_attr = attr && i > 0;
            let test = if is_attr {
                NodeTest::Attribute("k".into())
            } else {
                NodeTest::Element(label.to_string())
            };
            let axis = if desc { Axis::Descendant } else { Axis::Child };
            let outputs = if out || i == 0 {
                vec![Output::Val { join_var: None }]
            } else {
                vec![]
            };
            if let Some(p) = parent {
                nodes[p].children.push(i);
            }
            nodes.push(PatternNode {
                test,
                axis,
                parent,
                children: Vec::new(),
                outputs,
                predicate: pred,
            });
        }
        TreePattern { nodes }
    })
    .prop_filter("attributes cannot have children", |p| {
        p.nodes.iter().all(|n| !n.test.is_attribute() || n.children.is_empty())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn twig_equals_naive(xml in doc_strategy(), pattern in pattern_strategy()) {
        let doc = Document::parse_str("prop.xml", &xml).unwrap();
        let (naive, _) = naive_matches(&doc, &pattern);
        let (twig, _) = evaluate_pattern_twig(&doc, &pattern);
        let a: HashSet<_> = naive.into_iter().collect();
        let b: HashSet<_> = twig.into_iter().collect();
        prop_assert_eq!(a, b, "pattern {:?} on {}", pattern, xml);
    }
}
