//! Property test: the holistic twig join evaluator and the naive
//! backtracking evaluator return identical tuple sets on random documents
//! and random patterns over the same small vocabulary.
//!
//! Cases derive deterministically from `(fixed master seed, case index)`
//! via `amada-rng`, so failures reproduce exactly.

use amada_pattern::ast::{Axis, NodeTest, Output, PatternNode, Predicate, TreePattern};
use amada_pattern::eval::naive_matches;
use amada_pattern::twig::evaluate_pattern_twig;
use amada_rng::StdRng;
use amada_xml::Document;
use std::collections::HashSet;

const LABELS: &[&str] = &["a", "b", "c", "d"];
const WORDS: &[&str] = &["lion", "hunt", "olympia", "sun"];

/// Random document over the small vocabulary, rendered directly to XML.
fn gen_doc(rng: &mut StdRng) -> String {
    fn elem(rng: &mut StdRng, depth: u32) -> String {
        let label = *rng.choose(LABELS);
        let attr = if rng.gen_bool(0.5) {
            format!(" k=\"{}\"", rng.choose(WORDS))
        } else {
            String::new()
        };
        if depth == 0 {
            return format!("<{label}{attr}>{}</{label}>", rng.choose(WORDS));
        }
        let kids: String = (0..rng.gen_range(0..4usize))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    elem(rng, depth - 1)
                } else {
                    rng.choose(WORDS).to_string()
                }
            })
            .collect();
        format!("<{label}{attr}>{kids}</{label}>")
    }
    elem(rng, 3)
}

/// Random pattern over the same vocabulary: a flat spec per node
/// (label, axis, parent choice, predicate?, output?, attribute?),
/// retried until no attribute node has children.
fn gen_pattern(rng: &mut StdRng) -> TreePattern {
    loop {
        let n = rng.gen_range(1..5usize);
        let mut nodes: Vec<PatternNode> = Vec::new();
        for i in 0..n {
            let label = *rng.choose(LABELS);
            let desc = rng.gen_bool(0.5);
            let pchoice = rng.gen_range(0..=255u8) as usize;
            let pred = if rng.gen_bool(0.5) {
                let w = *rng.choose(WORDS);
                Some(if rng.gen_bool(0.5) {
                    Predicate::Contains(w.into())
                } else {
                    Predicate::Eq(w.into())
                })
            } else {
                None
            };
            let out = rng.gen_bool(0.5);
            let parent = if i == 0 { None } else { Some(pchoice % i) };
            // Attribute leaf nodes use name "k"; elements use the label.
            let is_attr = rng.gen_bool(0.5) && i > 0;
            let test = if is_attr {
                NodeTest::Attribute("k".into())
            } else {
                NodeTest::Element(label.to_string())
            };
            let axis = if desc { Axis::Descendant } else { Axis::Child };
            let outputs = if out || i == 0 {
                vec![Output::Val { join_var: None }]
            } else {
                vec![]
            };
            if let Some(p) = parent {
                nodes[p].children.push(i);
            }
            nodes.push(PatternNode {
                test,
                axis,
                parent,
                children: Vec::new(),
                outputs,
                predicate: pred,
            });
        }
        let pattern = TreePattern { nodes };
        // Attributes cannot have children.
        if pattern
            .nodes
            .iter()
            .all(|n| !n.test.is_attribute() || n.children.is_empty())
        {
            return pattern;
        }
    }
}

#[test]
fn twig_equals_naive() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0x7716_0000 + case);
        let xml = gen_doc(&mut rng);
        let pattern = gen_pattern(&mut rng);
        let doc = Document::parse_str("prop.xml", &xml).unwrap();
        let (naive, _) = naive_matches(&doc, &pattern);
        let (twig, _) = evaluate_pattern_twig(&doc, &pattern);
        let a: HashSet<_> = naive.into_iter().collect();
        let b: HashSet<_> = twig.into_iter().collect();
        assert_eq!(a, b, "case {case}: pattern {pattern:?} on {xml}");
    }
}
