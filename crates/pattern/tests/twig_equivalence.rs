//! Property test: the holistic twig join evaluator and the naive
//! backtracking evaluator return identical tuple sets on random documents
//! and random patterns over the same small vocabulary.
//!
//! Cases derive deterministically from `(fixed master seed, case index)`
//! via `amada-rng`, so failures reproduce exactly.

use amada_pattern::ast::{Axis, NodeTest, Output, PatternNode, Predicate, TreePattern};
use amada_pattern::eval::naive_matches;
use amada_pattern::twig::{
    evaluate_pattern_twig, holistic_twig_join, holistic_twig_join_linear, twig_has_match,
    twig_has_match_linear, TwigShape,
};
use amada_rng::StdRng;
use amada_xml::{Document, StructuralId};
use std::collections::HashSet;

const LABELS: &[&str] = &["a", "b", "c", "d"];
const WORDS: &[&str] = &["lion", "hunt", "olympia", "sun"];

/// Random document over the small vocabulary, rendered directly to XML.
fn gen_doc(rng: &mut StdRng) -> String {
    fn elem(rng: &mut StdRng, depth: u32) -> String {
        let label = *rng.choose(LABELS);
        let attr = if rng.gen_bool(0.5) {
            format!(" k=\"{}\"", rng.choose(WORDS))
        } else {
            String::new()
        };
        if depth == 0 {
            return format!("<{label}{attr}>{}</{label}>", rng.choose(WORDS));
        }
        let kids: String = (0..rng.gen_range(0..4usize))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    elem(rng, depth - 1)
                } else {
                    rng.choose(WORDS).to_string()
                }
            })
            .collect();
        format!("<{label}{attr}>{kids}</{label}>")
    }
    elem(rng, 3)
}

/// Random pattern over the same vocabulary: a flat spec per node
/// (label, axis, parent choice, predicate?, output?, attribute?),
/// retried until no attribute node has children.
fn gen_pattern(rng: &mut StdRng) -> TreePattern {
    loop {
        let n = rng.gen_range(1..5usize);
        let mut nodes: Vec<PatternNode> = Vec::new();
        for i in 0..n {
            let label = *rng.choose(LABELS);
            let desc = rng.gen_bool(0.5);
            let pchoice = rng.gen_range(0..=255u8) as usize;
            let pred = if rng.gen_bool(0.5) {
                let w = *rng.choose(WORDS);
                Some(if rng.gen_bool(0.5) {
                    Predicate::Contains(w.into())
                } else {
                    Predicate::Eq(w.into())
                })
            } else {
                None
            };
            let out = rng.gen_bool(0.5);
            let parent = if i == 0 { None } else { Some(pchoice % i) };
            // Attribute leaf nodes use name "k"; elements use the label.
            let is_attr = rng.gen_bool(0.5) && i > 0;
            let test = if is_attr {
                NodeTest::Attribute("k".into())
            } else {
                NodeTest::Element(label.to_string())
            };
            let axis = if desc { Axis::Descendant } else { Axis::Child };
            let outputs = if out || i == 0 {
                vec![Output::Val { join_var: None }]
            } else {
                vec![]
            };
            if let Some(p) = parent {
                nodes[p].children.push(i);
            }
            nodes.push(PatternNode {
                test,
                axis,
                parent,
                children: Vec::new(),
                outputs,
                predicate: pred,
            });
        }
        let pattern = TreePattern { nodes };
        // Attributes cannot have children.
        if pattern
            .nodes
            .iter()
            .all(|n| !n.test.is_attribute() || n.children.is_empty())
        {
            return pattern;
        }
    }
}

/// Random twig shape: a rooted tree of up to 5 nodes with random axes.
fn gen_shape(rng: &mut StdRng) -> TwigShape {
    let n = rng.gen_range(1..6usize);
    let mut shape = TwigShape {
        parent: vec![None],
        axis: vec![Axis::Descendant],
        children: vec![Vec::new()],
    };
    for i in 1..n {
        let p = rng.gen_range(0..i);
        shape.parent.push(Some(p));
        shape.axis.push(if rng.gen_bool(0.5) {
            Axis::Descendant
        } else {
            Axis::Child
        });
        shape.children.push(Vec::new());
        shape.children[p].push(i);
    }
    shape
}

/// Per-node candidate streams drawn from a real document's label postings
/// (genuine ancestor structure, so matches exist), occasionally replaced
/// by an empty or synthetic sparse stream to hit the exhaustion paths.
fn gen_streams(rng: &mut StdRng, doc: &Document, n: usize) -> Vec<Vec<(StructuralId, u32)>> {
    (0..n)
        .map(|i| {
            if rng.gen_bool(0.1) {
                return Vec::new();
            }
            let label = *rng.choose(LABELS);
            doc.elements_named(label)
                .iter()
                .map(|&node| (doc.sid(node), i as u32))
                .collect()
        })
        .collect()
}

/// The galloping join must return exactly what the element-at-a-time
/// linear reference join returns — same assignments, same order — and
/// the early-exit existence checks must agree with both.
#[test]
fn galloping_equals_linear() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0x6a11_0000 + case);
        let xml = gen_doc(&mut rng);
        let doc = Document::parse_str("prop.xml", &xml).unwrap();
        let shape = gen_shape(&mut rng);
        let streams = gen_streams(&mut rng, &doc, shape.len());
        let linear = holistic_twig_join_linear(&shape, &streams);
        let gallop = holistic_twig_join(&shape, &streams);
        assert_eq!(
            linear, gallop,
            "case {case}: shape {shape:?} streams {streams:?} on {xml}"
        );
        assert_eq!(
            twig_has_match_linear(&shape, &streams),
            !linear.is_empty(),
            "case {case}"
        );
        assert_eq!(
            twig_has_match(&shape, &streams),
            !linear.is_empty(),
            "case {case}"
        );
    }
}

#[test]
fn twig_equals_naive() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0x7716_0000 + case);
        let xml = gen_doc(&mut rng);
        let pattern = gen_pattern(&mut rng);
        let doc = Document::parse_str("prop.xml", &xml).unwrap();
        let (naive, _) = naive_matches(&doc, &pattern);
        let (twig, _) = evaluate_pattern_twig(&doc, &pattern);
        let a: HashSet<_> = naive.into_iter().collect();
        let b: HashSet<_> = twig.into_iter().collect();
        assert_eq!(a, b, "case {case}: pattern {pattern:?} on {xml}");
    }
}
