//! Cost attribution: billed money decomposed by context tag.
//!
//! The span stream carries a [`Ctx`] on every event; summing billed
//! amounts over those tags yields the paper's Figure 12-style
//! decompositions (cost per warehouse phase, per service within a phase)
//! and the per-query / per-document views the paper's "who pays for
//! what" analysis needs. `BTreeMap`s keep iteration order deterministic
//! so reports are stable across runs.

use amada_cloud::{Money, Phase, ServiceKind, Span};
use std::collections::BTreeMap;

/// The family of a query name: open-loop traffic tags each arrival
/// `{query}#{seq}` (`q1#17`), so summing per *name* fragments one logical
/// query over its arrivals. This strips a trailing all-digit `#seq`
/// suffix; names without one (closed-loop runs) are their own family.
pub fn query_family(name: &str) -> &str {
    match name.rsplit_once('#') {
        Some((base, seq))
            if !base.is_empty() && !seq.is_empty() && seq.bytes().all(|b| b.is_ascii_digit()) =>
        {
            base
        }
        _ => name,
    }
}

/// The partition of a document URI: its directory prefix (`hot/d3.xml` →
/// `hot`), or the root partition `""` for a bare name — the same
/// convention the index layer's per-partition routing uses.
fn doc_partition(uri: &str) -> &str {
    uri.split_once('/').map_or("", |(p, _)| p)
}

/// One query family's load and spend, rolled up over its arrivals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyCost {
    /// Distinct arrivals attributed to the family (one per tagged name).
    pub arrivals: u64,
    /// Total billed across those arrivals.
    pub billed: Money,
}

/// Billed money decomposed along the span context tags.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Total billed per warehouse phase.
    pub by_phase: BTreeMap<Phase, Money>,
    /// Total billed per (phase, service).
    pub by_phase_service: BTreeMap<(Phase, ServiceKind), Money>,
    /// Total billed per query name (spans tagged with a query).
    pub by_query: BTreeMap<String, Money>,
    /// Total billed per (query name, service).
    pub by_query_service: BTreeMap<(String, ServiceKind), Money>,
    /// Total billed per document URI (spans tagged with a document).
    pub by_doc: BTreeMap<String, Money>,
    /// Total billed across all spans.
    pub total: Money,
}

impl Attribution {
    /// Decomposes `spans` along every context axis at once.
    pub fn attribute(spans: &[Span]) -> Attribution {
        let mut a = Attribution::default();
        for s in spans {
            a.total += s.billed;
            *a.by_phase.entry(s.ctx.phase).or_default() += s.billed;
            *a.by_phase_service
                .entry((s.ctx.phase, s.service))
                .or_default() += s.billed;
            if let Some(q) = &s.ctx.query {
                *a.by_query.entry(q.to_string()).or_default() += s.billed;
                *a.by_query_service
                    .entry((q.to_string(), s.service))
                    .or_default() += s.billed;
            }
            if let Some(d) = &s.ctx.doc {
                *a.by_doc.entry(d.to_string()).or_default() += s.billed;
            }
        }
        a
    }

    /// Billed money for one phase (zero if no spans carried it).
    pub fn phase(&self, phase: Phase) -> Money {
        self.by_phase.get(&phase).copied().unwrap_or(Money::ZERO)
    }

    /// Billed money for one query (zero if unknown).
    pub fn query(&self, name: &str) -> Money {
        self.by_query.get(name).copied().unwrap_or(Money::ZERO)
    }

    /// The phase decomposition sums back to the total — attribution
    /// never loses or double-counts money (every span has exactly one
    /// phase). Used by reconciliation tests and debug assertions.
    pub fn phases_sum_to_total(&self) -> bool {
        self.by_phase.values().copied().sum::<Money>() == self.total
    }

    /// Rolls the per-query decomposition up into query *families*:
    /// open-loop arrival names `{query}#{seq}` collapse onto their base
    /// query ([`query_family`]), yielding each family's arrival count and
    /// total spend — the workload profile the adaptive advisor consumes
    /// (how often does each query really run, and what does it cost?).
    pub fn query_families(&self) -> BTreeMap<String, FamilyCost> {
        let mut out: BTreeMap<String, FamilyCost> = BTreeMap::new();
        for (name, &billed) in &self.by_query {
            let f = out.entry(query_family(name).to_string()).or_default();
            f.arrivals += 1;
            f.billed += billed;
        }
        out
    }

    /// Rolls the per-document decomposition up into *partitions* (the
    /// URI's directory prefix, `""` for the root) — which slices of the
    /// corpus the money is actually spent on. Build- and maintenance-
    /// phase spans are doc-tagged, so a churning partition shows up here
    /// as sustained spend long after the initial build.
    pub fn partition_costs(&self) -> BTreeMap<String, Money> {
        let mut out: BTreeMap<String, Money> = BTreeMap::new();
        for (uri, &billed) in &self.by_doc {
            *out.entry(doc_partition(uri).to_string()).or_default() += billed;
        }
        out
    }

    /// Renders the per-phase × per-service table as fixed-width text.
    pub fn render_by_phase(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "phase"));
        for svc in ServiceKind::ALL {
            out.push_str(&format!("  {:>14}", svc.label()));
        }
        out.push_str(&format!("  {:>14}\n", "total"));
        for phase in Phase::ALL {
            if self.phase(phase) == Money::ZERO && !self.by_phase.contains_key(&phase) {
                continue;
            }
            out.push_str(&format!("{:<10}", phase.label()));
            for svc in ServiceKind::ALL {
                let m = self
                    .by_phase_service
                    .get(&(phase, svc))
                    .copied()
                    .unwrap_or(Money::ZERO);
                // Money's Display ignores width specs; pad the string.
                out.push_str(&format!("  {:>14}", m.to_string()));
            }
            out.push_str(&format!("  {:>14}\n", self.phase(phase).to_string()));
        }
        out.push_str(&format!("total {}\n", self.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, SimTime};

    fn span(phase: Phase, service: ServiceKind, query: Option<&str>, pico: u128) -> Span {
        let ctx = Ctx {
            phase,
            query: query.map(|q| q.into()),
            doc: None,
            actor: None,
        };
        Span::new(service, "op", SimTime::ZERO, SimTime(1), &ctx).billed(Money::from_pico(pico))
    }

    #[test]
    fn decomposes_by_phase_and_query() {
        let spans = vec![
            span(Phase::Build, ServiceKind::Kv, None, 100),
            span(Phase::Build, ServiceKind::S3, None, 40),
            span(Phase::Query, ServiceKind::Kv, Some("q1"), 7),
            span(Phase::Query, ServiceKind::Kv, Some("q2"), 11),
            span(Phase::Query, ServiceKind::Sqs, Some("q1"), 3),
        ];
        let a = Attribution::attribute(&spans);
        assert_eq!(a.total, Money::from_pico(161));
        assert_eq!(a.phase(Phase::Build), Money::from_pico(140));
        assert_eq!(a.phase(Phase::Query), Money::from_pico(21));
        assert_eq!(a.phase(Phase::Upload), Money::ZERO);
        assert_eq!(a.query("q1"), Money::from_pico(10));
        assert_eq!(a.query("q2"), Money::from_pico(11));
        assert_eq!(
            a.by_phase_service[&(Phase::Build, ServiceKind::Kv)],
            Money::from_pico(100)
        );
        assert_eq!(
            a.by_query_service[&("q1".to_string(), ServiceKind::Sqs)],
            Money::from_pico(3)
        );
        assert!(a.phases_sum_to_total());
    }

    #[test]
    fn empty_attribution() {
        let a = Attribution::attribute(&[]);
        assert_eq!(a.total, Money::ZERO);
        assert!(a.by_phase.is_empty());
        assert!(a.phases_sum_to_total());
    }

    #[test]
    fn doc_tags_roll_up() {
        let ctx = Ctx {
            phase: Phase::Upload,
            query: None,
            doc: Some("doc-3.xml".into()),
            actor: None,
        };
        let spans = vec![
            Span::new(ServiceKind::S3, "put", SimTime::ZERO, SimTime(1), &ctx)
                .billed(Money::from_pico(9)),
            Span::new(ServiceKind::S3, "put", SimTime(1), SimTime(2), &ctx)
                .billed(Money::from_pico(9)),
        ];
        let a = Attribution::attribute(&spans);
        assert_eq!(a.by_doc["doc-3.xml"], Money::from_pico(18));
    }

    #[test]
    fn open_loop_arrivals_collapse_into_query_families() {
        assert_eq!(query_family("q1#17"), "q1");
        assert_eq!(query_family("q1"), "q1");
        assert_eq!(query_family("q1#"), "q1#", "empty seq is not a family tag");
        assert_eq!(query_family("q#1#2"), "q#1", "only the last suffix strips");
        assert_eq!(query_family("#3"), "#3", "empty base is not a family tag");
        let spans = vec![
            span(Phase::Query, ServiceKind::Kv, Some("q1#0"), 5),
            span(Phase::Query, ServiceKind::Kv, Some("q1#1"), 7),
            span(Phase::Query, ServiceKind::Sqs, Some("q1#1"), 2),
            span(Phase::Query, ServiceKind::Kv, Some("q6"), 11),
        ];
        let fam = Attribution::attribute(&spans).query_families();
        assert_eq!(fam.len(), 2);
        assert_eq!(fam["q1"].arrivals, 2, "two tagged arrivals, not 3 spans");
        assert_eq!(fam["q1"].billed, Money::from_pico(14));
        assert_eq!(fam["q6"].arrivals, 1);
        assert_eq!(fam["q6"].billed, Money::from_pico(11));
    }

    #[test]
    fn doc_costs_roll_up_by_partition() {
        let doc_span = |uri: &str, pico: u128| {
            let ctx = Ctx {
                phase: Phase::Build,
                query: None,
                doc: Some(uri.into()),
                actor: None,
            };
            Span::new(
                ServiceKind::Kv,
                "batch_put",
                SimTime::ZERO,
                SimTime(1),
                &ctx,
            )
            .billed(Money::from_pico(pico))
        };
        let spans = vec![
            doc_span("hot/a.xml", 10),
            doc_span("hot/b.xml", 20),
            doc_span("cold/c.xml", 3),
            doc_span("d.xml", 1),
        ];
        let parts = Attribution::attribute(&spans).partition_costs();
        assert_eq!(parts["hot"], Money::from_pico(30));
        assert_eq!(parts["cold"], Money::from_pico(3));
        assert_eq!(parts[""], Money::from_pico(1), "bare names hit the root");
    }

    #[test]
    fn render_contains_phase_rows() {
        let spans = vec![span(Phase::Build, ServiceKind::Kv, None, 5)];
        let table = Attribution::attribute(&spans).render_by_phase();
        assert!(table.contains("build"));
        assert!(table.contains("kv"));
    }
}
