//! Cost attribution: billed money decomposed by context tag.
//!
//! The span stream carries a [`Ctx`] on every event; summing billed
//! amounts over those tags yields the paper's Figure 12-style
//! decompositions (cost per warehouse phase, per service within a phase)
//! and the per-query / per-document views the paper's "who pays for
//! what" analysis needs. `BTreeMap`s keep iteration order deterministic
//! so reports are stable across runs.

use amada_cloud::{Money, Phase, ServiceKind, Span};
use std::collections::BTreeMap;

/// Billed money decomposed along the span context tags.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Total billed per warehouse phase.
    pub by_phase: BTreeMap<Phase, Money>,
    /// Total billed per (phase, service).
    pub by_phase_service: BTreeMap<(Phase, ServiceKind), Money>,
    /// Total billed per query name (spans tagged with a query).
    pub by_query: BTreeMap<String, Money>,
    /// Total billed per (query name, service).
    pub by_query_service: BTreeMap<(String, ServiceKind), Money>,
    /// Total billed per document URI (spans tagged with a document).
    pub by_doc: BTreeMap<String, Money>,
    /// Total billed across all spans.
    pub total: Money,
}

impl Attribution {
    /// Decomposes `spans` along every context axis at once.
    pub fn attribute(spans: &[Span]) -> Attribution {
        let mut a = Attribution::default();
        for s in spans {
            a.total += s.billed;
            *a.by_phase.entry(s.ctx.phase).or_default() += s.billed;
            *a.by_phase_service
                .entry((s.ctx.phase, s.service))
                .or_default() += s.billed;
            if let Some(q) = &s.ctx.query {
                *a.by_query.entry(q.to_string()).or_default() += s.billed;
                *a.by_query_service
                    .entry((q.to_string(), s.service))
                    .or_default() += s.billed;
            }
            if let Some(d) = &s.ctx.doc {
                *a.by_doc.entry(d.to_string()).or_default() += s.billed;
            }
        }
        a
    }

    /// Billed money for one phase (zero if no spans carried it).
    pub fn phase(&self, phase: Phase) -> Money {
        self.by_phase.get(&phase).copied().unwrap_or(Money::ZERO)
    }

    /// Billed money for one query (zero if unknown).
    pub fn query(&self, name: &str) -> Money {
        self.by_query.get(name).copied().unwrap_or(Money::ZERO)
    }

    /// The phase decomposition sums back to the total — attribution
    /// never loses or double-counts money (every span has exactly one
    /// phase). Used by reconciliation tests and debug assertions.
    pub fn phases_sum_to_total(&self) -> bool {
        self.by_phase.values().copied().sum::<Money>() == self.total
    }

    /// Renders the per-phase × per-service table as fixed-width text.
    pub fn render_by_phase(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "phase"));
        for svc in ServiceKind::ALL {
            out.push_str(&format!("  {:>14}", svc.label()));
        }
        out.push_str(&format!("  {:>14}\n", "total"));
        for phase in Phase::ALL {
            if self.phase(phase) == Money::ZERO && !self.by_phase.contains_key(&phase) {
                continue;
            }
            out.push_str(&format!("{:<10}", phase.label()));
            for svc in ServiceKind::ALL {
                let m = self
                    .by_phase_service
                    .get(&(phase, svc))
                    .copied()
                    .unwrap_or(Money::ZERO);
                // Money's Display ignores width specs; pad the string.
                out.push_str(&format!("  {:>14}", m.to_string()));
            }
            out.push_str(&format!("  {:>14}\n", self.phase(phase).to_string()));
        }
        out.push_str(&format!("total {}\n", self.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, SimTime};

    fn span(phase: Phase, service: ServiceKind, query: Option<&str>, pico: u128) -> Span {
        let ctx = Ctx {
            phase,
            query: query.map(|q| q.into()),
            doc: None,
            actor: None,
        };
        Span::new(service, "op", SimTime::ZERO, SimTime(1), &ctx).billed(Money::from_pico(pico))
    }

    #[test]
    fn decomposes_by_phase_and_query() {
        let spans = vec![
            span(Phase::Build, ServiceKind::Kv, None, 100),
            span(Phase::Build, ServiceKind::S3, None, 40),
            span(Phase::Query, ServiceKind::Kv, Some("q1"), 7),
            span(Phase::Query, ServiceKind::Kv, Some("q2"), 11),
            span(Phase::Query, ServiceKind::Sqs, Some("q1"), 3),
        ];
        let a = Attribution::attribute(&spans);
        assert_eq!(a.total, Money::from_pico(161));
        assert_eq!(a.phase(Phase::Build), Money::from_pico(140));
        assert_eq!(a.phase(Phase::Query), Money::from_pico(21));
        assert_eq!(a.phase(Phase::Upload), Money::ZERO);
        assert_eq!(a.query("q1"), Money::from_pico(10));
        assert_eq!(a.query("q2"), Money::from_pico(11));
        assert_eq!(
            a.by_phase_service[&(Phase::Build, ServiceKind::Kv)],
            Money::from_pico(100)
        );
        assert_eq!(
            a.by_query_service[&("q1".to_string(), ServiceKind::Sqs)],
            Money::from_pico(3)
        );
        assert!(a.phases_sum_to_total());
    }

    #[test]
    fn empty_attribution() {
        let a = Attribution::attribute(&[]);
        assert_eq!(a.total, Money::ZERO);
        assert!(a.by_phase.is_empty());
        assert!(a.phases_sum_to_total());
    }

    #[test]
    fn doc_tags_roll_up() {
        let ctx = Ctx {
            phase: Phase::Upload,
            query: None,
            doc: Some("doc-3.xml".into()),
            actor: None,
        };
        let spans = vec![
            Span::new(ServiceKind::S3, "put", SimTime::ZERO, SimTime(1), &ctx)
                .billed(Money::from_pico(9)),
            Span::new(ServiceKind::S3, "put", SimTime(1), SimTime(2), &ctx)
                .billed(Money::from_pico(9)),
        ];
        let a = Attribution::attribute(&spans);
        assert_eq!(a.by_doc["doc-3.xml"], Money::from_pico(18));
    }

    #[test]
    fn render_contains_phase_rows() {
        let spans = vec![span(Phase::Build, ServiceKind::Kv, None, 5)];
        let table = Attribution::attribute(&spans).render_by_phase();
        assert!(table.contains("build"));
        assert!(table.contains("kv"));
    }
}
