//! # amada-obs
//!
//! Analyses over the span stream recorded by `amada_cloud::obs`: the
//! simulator produces raw spans (one per service call, throttle, retry
//! and actor phase, keyed to the virtual clock); this crate derives the
//! paper-facing views from them:
//!
//! * [`series`] — per-service time-series in fixed virtual-time buckets
//!   (request rate, consumed capacity units, utilization, throttle rate,
//!   in-flight depth) — the saturation view of the paper's Figure 10;
//! * [`attrib`] — cost attribution: billed money decomposed by warehouse
//!   phase, by query and by service, in the style of Figure 12;
//! * [`trace`] — a Chrome trace-event JSON exporter (open in
//!   `chrome://tracing` / Perfetto), one lane per actor;
//! * [`summary`] — service × operation roll-up tables for reports;
//! * [`json`] — a hand-rolled JSON syntax validator so exported traces
//!   can be self-checked without external dependencies.
//!
//! Everything here is a pure function of the recorded spans: the crate
//! never touches the simulation, so analyses can run after the fact, on
//! spans from any run.

pub mod attrib;
pub mod json;
pub mod latency;
pub mod series;
pub mod summary;
pub mod trace;

pub use attrib::{query_family, Attribution, FamilyCost};
pub use json::validate_json;
pub use latency::{query_latencies, LatencySummary};
pub use series::{Bucket, ServiceSeries};
pub use summary::{render_summary, summarize, OpSummary};
pub use trace::chrome_trace;
