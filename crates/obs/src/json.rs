//! A hand-rolled JSON syntax validator.
//!
//! The workspace deliberately has no external dependencies, so exported
//! traces are self-checked with this recursive-descent validator instead
//! of a serde round-trip. It accepts exactly RFC 8259 JSON (strict:
//! no trailing commas, no comments, no leading zeros, full string-escape
//! rules) and reports the byte offset of the first error.

/// Validates that `input` is one well-formed JSON value with nothing but
/// whitespace after it. Returns `Err(message)` describing the first
/// syntax error and its byte offset.
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for b in word.bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                Some(b) => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        b as char
                    ))
                }
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                Some(b) => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos - 1,
                        b as char
                    ))
                }
                None => return Err("unterminated array".to_string()),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!(
                        "unescaped control character at byte {}",
                        self.pos - 1
                    ))
                }
                Some(_) => {}
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(format!("leading zero at byte {}", self.pos - 1));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for v in [
            "{}",
            "[]",
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a \\\"quoted\\\" \\u00e9 string\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"\"}",
            "[0.5, 1e2, -0]",
        ] {
            assert!(validate_json(v).is_ok(), "should accept {v:?}");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for v in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "tru",
            "[] []",
            "{\"a\" 1}",
            "\"ctrl \u{1} char\"",
        ] {
            assert!(validate_json(v).is_err(), "should reject {v:?}");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = validate_json("[1, 2,]").unwrap_err();
        assert!(err.contains("byte 6"), "got: {err}");
    }
}
