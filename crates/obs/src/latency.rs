//! Per-query virtual-latency extraction and exact percentiles.
//!
//! Every span recorded while a query is being processed carries the
//! query's name in its context tag ([`amada_cloud::Ctx::query`]); a
//! query's virtual latency is the wall of its span envelope — first
//! tagged span start to last tagged span end. Open-loop runs give every
//! arrival a unique name (`{query}#{seq}`), so the envelope is exact per
//! arrival even when the same query text is drawn thousands of times.
//!
//! Percentiles are **exact** (nearest-rank over the full sorted sample),
//! not a streaming sketch: the sample is the recorded run itself, so
//! there is nothing to approximate — p99 of 10 000 arrivals is the
//! 9 900th smallest latency, reproducibly.

use amada_cloud::{SimDuration, Span};
use std::collections::BTreeMap;

/// Virtual latency of every named query in span order of first
/// appearance: `(query name, last tagged end − first tagged start)`.
/// Untagged spans (uploads, front-end collection, actor housekeeping)
/// contribute nothing.
pub fn query_latencies(spans: &[Span]) -> Vec<(String, SimDuration)> {
    // Envelope per name; BTreeMap iteration would sort by name, so track
    // first-appearance order separately for a stable, run-ordered report.
    let mut envelopes: BTreeMap<&str, (amada_cloud::SimTime, amada_cloud::SimTime)> =
        BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for s in spans {
        let Some(name) = s.ctx.query.as_deref() else {
            continue;
        };
        match envelopes.get_mut(name) {
            Some((start, end)) => {
                *start = (*start).min(s.start);
                *end = (*end).max(s.end);
            }
            None => {
                envelopes.insert(name, (s.start, s.end));
                order.push(name);
            }
        }
    }
    order
        .into_iter()
        .map(|name| {
            let (start, end) = envelopes[name];
            (name.to_string(), end - start)
        })
        .collect()
}

/// Exact nearest-rank percentiles over a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Median (50th percentile, nearest rank).
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Largest latency in the sample.
    pub max: SimDuration,
}

impl LatencySummary {
    /// Summarizes a sample; zero everywhere for an empty one.
    pub fn from_durations(mut sample: Vec<SimDuration>) -> LatencySummary {
        sample.sort();
        let pick = |p: f64| -> SimDuration {
            if sample.is_empty() {
                return SimDuration::ZERO;
            }
            // Nearest rank: the ⌈p·n⌉-th smallest value (1-indexed).
            let rank = ((p * sample.len() as f64).ceil() as usize).clamp(1, sample.len());
            sample[rank - 1]
        };
        LatencySummary {
            count: sample.len(),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: sample.last().copied().unwrap_or(SimDuration::ZERO),
        }
    }

    /// Summarizes the per-query latencies of a recorded run (see
    /// [`query_latencies`]).
    pub fn from_spans(spans: &[Span]) -> LatencySummary {
        LatencySummary::from_durations(query_latencies(spans).into_iter().map(|(_, d)| d).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, ServiceKind, SimTime};

    fn tagged(name: &str, start: u64, end: u64) -> Span {
        let ctx = Ctx {
            query: Some(name.into()),
            ..Ctx::default()
        };
        Span::new(ServiceKind::Kv, "get", SimTime(start), SimTime(end), &ctx)
    }

    #[test]
    fn latency_is_the_span_envelope_per_name() {
        let spans = vec![
            tagged("q1#0", 100, 150),
            Span::new(
                ServiceKind::Sqs,
                "receive",
                SimTime(0),
                SimTime(999),
                &Ctx::default(),
            ),
            tagged("q1#0", 300, 420),
            tagged("q2#1", 200, 230),
        ];
        let lat = query_latencies(&spans);
        assert_eq!(
            lat,
            vec![
                ("q1#0".to_string(), SimDuration::from_micros(320)),
                ("q2#1".to_string(), SimDuration::from_micros(30)),
            ]
        );
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        // 1..=100 µs: p50 = 50, p95 = 95, p99 = 99, max = 100.
        let sample: Vec<SimDuration> = (1..=100).map(SimDuration::from_micros).collect();
        let s = LatencySummary::from_durations(sample);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, SimDuration::from_micros(50));
        assert_eq!(s.p95, SimDuration::from_micros(95));
        assert_eq!(s.p99, SimDuration::from_micros(99));
        assert_eq!(s.max, SimDuration::from_micros(100));
        // A single sample is every percentile.
        let one = LatencySummary::from_durations(vec![SimDuration::from_micros(7)]);
        assert_eq!(one.p50, SimDuration::from_micros(7));
        assert_eq!(one.p99, SimDuration::from_micros(7));
    }

    #[test]
    fn empty_sample_is_all_zero() {
        let s = LatencySummary::from_durations(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, SimDuration::ZERO);
        assert_eq!(s.max, SimDuration::ZERO);
    }
}
