//! Per-service time-series in fixed virtual-time buckets.
//!
//! The derived signals are the ones the paper reads off its service-level
//! plots: request and throttle rates and consumed capacity units per
//! bucket (Figure 10's DynamoDB saturation is a capacity-unit series
//! pinned at the provisioned rate), service busy time as a utilization
//! fraction, and in-flight depth (how many requests overlap the bucket —
//! the queueing view of saturation).

use amada_cloud::{Money, ServiceKind, SimDuration, SimTime, Span};

/// Aggregates for one `[start, start + width)` window of virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bucket {
    /// Requests *starting* in this bucket.
    pub requests: u64,
    /// Throttled requests starting in this bucket.
    pub throttled: u64,
    /// Capacity units consumed by requests starting in this bucket.
    pub units: f64,
    /// Payload bytes moved by requests starting in this bucket.
    pub bytes: u64,
    /// Service busy time charged by requests starting in this bucket.
    pub busy: SimDuration,
    /// Money billed to requests starting in this bucket.
    pub billed: Money,
    /// Spans (from this service) whose `[start, end)` overlaps the
    /// bucket — the in-flight/queue-depth signal. A span ending exactly
    /// on a bucket boundary is *not* in flight in the bucket that starts
    /// there.
    pub in_flight: u64,
    /// Single-server busy time actually *spent* inside this bucket's
    /// window: span busy times are serialized one after another (a
    /// single server works on one request at a time) and the resulting
    /// disjoint intervals are clipped to the bucket. By construction at
    /// most `width` fits, so [`ServiceSeries::spread_utilization`] never
    /// exceeds 1.0 — unlike `busy`, which attributes a request's whole
    /// busy time to its submission bucket.
    pub busy_spread: SimDuration,
}

/// A fixed-width bucketed series for one service.
#[derive(Debug, Clone)]
pub struct ServiceSeries {
    /// The service the series describes.
    pub service: ServiceKind,
    /// Bucket width (virtual time).
    pub width: SimDuration,
    /// Buckets from virtual time zero, contiguous.
    pub buckets: Vec<Bucket>,
}

impl ServiceSeries {
    /// Buckets `spans` of `service` into windows of `width`. The series
    /// always starts at virtual time zero and extends to cover the last
    /// span end; an empty span set yields an empty series.
    pub fn build(spans: &[Span], service: ServiceKind, width: SimDuration) -> ServiceSeries {
        assert!(width > SimDuration::ZERO, "bucket width must be positive");
        let w = width.micros();
        let mine: Vec<&Span> = spans.iter().filter(|s| s.service == service).collect();
        // Cover every span's start bucket and its half-open occupancy
        // `[start, end)`: a span ending exactly on a boundary needs no
        // bucket beyond that boundary (the old `horizon/w + 1` minted a
        // trailing always-empty bucket there).
        let n = mine
            .iter()
            .map(|s| ((s.start.micros() / w + 1).max(s.end.micros().div_ceil(w))) as usize)
            .max()
            .unwrap_or(0);
        let mut buckets = vec![Bucket::default(); n];
        for s in &mine {
            let first = (s.start.micros() / w) as usize;
            let b = &mut buckets[first];
            b.requests += 1;
            if s.outcome == amada_cloud::Outcome::Throttled {
                b.throttled += 1;
            }
            b.units += s.units;
            b.bytes += s.bytes;
            b.busy += s.busy;
            b.billed += s.billed;
            // Half-open occupancy: a span ending exactly on a bucket
            // boundary is not in flight in the bucket that starts there
            // (a zero-length span still occupies its start bucket).
            let last = if s.end > s.start {
                ((s.end.micros() - 1) / w) as usize
            } else {
                first
            };
            for bucket in buckets.iter_mut().take(last + 1).skip(first) {
                bucket.in_flight += 1;
            }
        }
        // Single-server spread of busy time: serialize the spans' busy
        // periods in start order (the server works on one request at a
        // time) and clip each resulting disjoint interval to the buckets
        // it crosses. Busy time pushed past the series horizon by
        // queueing is dropped, keeping the signal within the window.
        let mut by_start: Vec<&&Span> = mine.iter().collect();
        by_start.sort_by_key(|s| (s.start, s.end));
        let mut cursor: u64 = 0;
        for s in by_start {
            let busy_start = cursor.max(s.start.micros());
            let busy_end = busy_start + s.busy.micros();
            cursor = busy_end;
            let mut lo = busy_start;
            while lo < busy_end {
                let bucket = (lo / w) as usize;
                if bucket >= buckets.len() {
                    break;
                }
                let hi = busy_end.min((bucket as u64 + 1) * w);
                buckets[bucket].busy_spread += SimDuration::from_micros(hi - lo);
                lo = hi;
            }
        }
        ServiceSeries {
            service,
            width,
            buckets,
        }
    }

    /// Start of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> SimTime {
        SimTime(i as u64 * self.width.micros())
    }

    /// Busy time over bucket width — the utilization fraction of bucket
    /// `i` (can exceed 1.0 when requests submitted in one bucket keep the
    /// server busy into later ones; the series attributes busy time to
    /// the submission bucket). For a bounded single-server signal use
    /// [`ServiceSeries::spread_utilization`].
    pub fn utilization(&self, i: usize) -> f64 {
        self.buckets[i].busy.micros() as f64 / self.width.micros() as f64
    }

    /// Fraction of bucket `i`'s window the single server was actually
    /// busy — serialized busy time clipped to the bucket, so this is
    /// always in `[0.0, 1.0]` however hard the service is saturated.
    pub fn spread_utilization(&self, i: usize) -> f64 {
        self.buckets[i].busy_spread.micros() as f64 / self.width.micros() as f64
    }

    /// Fraction of bucket `i`'s requests that were throttled (0.0 for an
    /// idle bucket).
    pub fn throttle_rate(&self, i: usize) -> f64 {
        let b = &self.buckets[i];
        if b.requests == 0 {
            0.0
        } else {
            b.throttled as f64 / b.requests as f64
        }
    }

    /// Total requests across the series.
    pub fn total_requests(&self) -> u64 {
        self.buckets.iter().map(|b| b.requests).sum()
    }

    /// Total billed money across the series.
    pub fn total_billed(&self) -> Money {
        self.buckets.iter().map(|b| b.billed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, Outcome};

    fn span(service: ServiceKind, start: u64, end: u64) -> Span {
        Span::new(service, "op", SimTime(start), SimTime(end), &Ctx::default())
    }

    #[test]
    fn spans_land_in_their_start_bucket() {
        let width = SimDuration::from_micros(100);
        let spans = vec![
            span(ServiceKind::Kv, 0, 10).units(2.0).bytes(5),
            span(ServiceKind::Kv, 150, 160).units(1.0),
            span(ServiceKind::S3, 0, 10), // other service: excluded
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].requests, 1);
        assert_eq!(s.buckets[0].units, 2.0);
        assert_eq!(s.buckets[0].bytes, 5);
        assert_eq!(s.buckets[1].requests, 1);
        assert_eq!(s.total_requests(), 2);
        assert_eq!(s.bucket_start(1), SimTime(100));
    }

    #[test]
    fn in_flight_counts_every_overlapped_bucket() {
        let width = SimDuration::from_micros(100);
        // One long request spanning buckets 0..=2, one short in bucket 2.
        let spans = vec![
            span(ServiceKind::Sqs, 50, 250),
            span(ServiceKind::Sqs, 210, 220),
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Sqs, width);
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[0].in_flight, 1);
        assert_eq!(s.buckets[1].in_flight, 1);
        assert_eq!(s.buckets[2].in_flight, 2);
        // But each request is only counted once for rates.
        assert_eq!(s.buckets[2].requests, 1);
    }

    #[test]
    fn throttle_rate_and_utilization() {
        let width = SimDuration::from_micros(1000);
        let spans = vec![
            span(ServiceKind::Kv, 0, 10).busy(SimDuration::from_micros(500)),
            span(ServiceKind::Kv, 10, 20).outcome(Outcome::Throttled),
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.throttle_rate(0), 0.5);
        assert_eq!(s.utilization(0), 0.5);
    }

    #[test]
    fn empty_series() {
        let s = ServiceSeries::build(&[], ServiceKind::Ec2, SimDuration::from_secs(1));
        assert!(s.buckets.is_empty());
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.total_billed(), Money::ZERO);
    }

    #[test]
    fn a_span_ending_on_a_boundary_mints_no_trailing_bucket() {
        let width = SimDuration::from_micros(100);
        // Ends exactly at 200 = bucket boundary: two buckets, not three.
        let spans = vec![span(ServiceKind::Kv, 50, 200)];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].in_flight, 1);
        assert_eq!(s.buckets[1].in_flight, 1);
        // One microsecond later and the third bucket is real.
        let spans = vec![span(ServiceKind::Kv, 50, 201)];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[2].in_flight, 1);
    }

    #[test]
    fn boundary_spans_are_not_double_counted_in_flight() {
        let width = SimDuration::from_micros(100);
        // Ends exactly at 100: in flight in bucket 0 only. The second
        // span keeps the series two buckets long.
        let spans = vec![
            span(ServiceKind::Kv, 0, 100),
            span(ServiceKind::Kv, 150, 160),
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].in_flight, 1);
        assert_eq!(s.buckets[1].in_flight, 1, "only the second span");
    }

    #[test]
    fn zero_duration_spans_occupy_their_start_bucket() {
        let width = SimDuration::from_micros(100);
        let spans = vec![span(ServiceKind::Actor, 100, 100)];
        let s = ServiceSeries::build(&spans, ServiceKind::Actor, width);
        assert_eq!(s.buckets.len(), 2, "start bucket 1 must exist");
        assert_eq!(s.buckets[1].requests, 1);
        assert_eq!(s.buckets[1].in_flight, 1);
        assert_eq!(s.buckets[0].in_flight, 0);
    }

    #[test]
    fn spread_utilization_is_bounded_by_one_under_saturation() {
        let width = SimDuration::from_micros(100);
        // Ten requests all submitted in bucket 0, each with 80 µs of
        // busy time: 8× oversubscribed. The naive utilization explodes;
        // the single-server spread serializes the work across buckets
        // and never exceeds 1.0 in any of them.
        let spans: Vec<Span> = (0..10)
            .map(|i| span(ServiceKind::Kv, i, 900).busy(SimDuration::from_micros(80)))
            .collect();
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert!(s.utilization(0) > 1.0, "naive view overshoots by design");
        for i in 0..s.buckets.len() {
            let u = s.spread_utilization(i);
            assert!((0.0..=1.0).contains(&u), "bucket {i}: {u}");
        }
        // The early buckets are fully busy (back-to-back work).
        assert!((s.spread_utilization(0) - 1.0).abs() < 1e-9);
        assert!((s.spread_utilization(1) - 1.0).abs() < 1e-9);
        // Total spread busy time within the window never exceeds the
        // serialized total (here 800 µs fits entirely).
        let total: u64 = s.buckets.iter().map(|b| b.busy_spread.micros()).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn spread_busy_past_the_horizon_is_dropped() {
        let width = SimDuration::from_micros(100);
        // 250 µs of busy time on a span whose series ends at bucket 1:
        // the overflow past 200 µs is dropped, not misattributed.
        let spans = vec![span(ServiceKind::Kv, 0, 150).busy(SimDuration::from_micros(250))];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].busy_spread.micros(), 100);
        assert_eq!(s.buckets[1].busy_spread.micros(), 100);
    }
}
