//! Per-service time-series in fixed virtual-time buckets.
//!
//! The derived signals are the ones the paper reads off its service-level
//! plots: request and throttle rates and consumed capacity units per
//! bucket (Figure 10's DynamoDB saturation is a capacity-unit series
//! pinned at the provisioned rate), service busy time as a utilization
//! fraction, and in-flight depth (how many requests overlap the bucket —
//! the queueing view of saturation).

use amada_cloud::{Money, ServiceKind, SimDuration, SimTime, Span};

/// Aggregates for one `[start, start + width)` window of virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bucket {
    /// Requests *starting* in this bucket.
    pub requests: u64,
    /// Throttled requests starting in this bucket.
    pub throttled: u64,
    /// Capacity units consumed by requests starting in this bucket.
    pub units: f64,
    /// Payload bytes moved by requests starting in this bucket.
    pub bytes: u64,
    /// Service busy time charged by requests starting in this bucket.
    pub busy: SimDuration,
    /// Money billed to requests starting in this bucket.
    pub billed: Money,
    /// Spans (from this service) whose `[start, end]` overlaps the
    /// bucket — the in-flight/queue-depth signal.
    pub in_flight: u64,
}

/// A fixed-width bucketed series for one service.
#[derive(Debug, Clone)]
pub struct ServiceSeries {
    /// The service the series describes.
    pub service: ServiceKind,
    /// Bucket width (virtual time).
    pub width: SimDuration,
    /// Buckets from virtual time zero, contiguous.
    pub buckets: Vec<Bucket>,
}

impl ServiceSeries {
    /// Buckets `spans` of `service` into windows of `width`. The series
    /// always starts at virtual time zero and extends to cover the last
    /// span end; an empty span set yields an empty series.
    pub fn build(spans: &[Span], service: ServiceKind, width: SimDuration) -> ServiceSeries {
        assert!(width > SimDuration::ZERO, "bucket width must be positive");
        let mine: Vec<&Span> = spans.iter().filter(|s| s.service == service).collect();
        let horizon = mine.iter().map(|s| s.end.micros()).max().unwrap_or(0);
        let n = if mine.is_empty() {
            0
        } else {
            (horizon / width.micros() + 1) as usize
        };
        let mut buckets = vec![Bucket::default(); n];
        for s in &mine {
            let b = &mut buckets[(s.start.micros() / width.micros()) as usize];
            b.requests += 1;
            if s.outcome == amada_cloud::Outcome::Throttled {
                b.throttled += 1;
            }
            b.units += s.units;
            b.bytes += s.bytes;
            b.busy += s.busy;
            b.billed += s.billed;
            let first = (s.start.micros() / width.micros()) as usize;
            let last = (s.end.micros() / width.micros()) as usize;
            for bucket in buckets.iter_mut().take(last + 1).skip(first) {
                bucket.in_flight += 1;
            }
        }
        ServiceSeries {
            service,
            width,
            buckets,
        }
    }

    /// Start of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> SimTime {
        SimTime(i as u64 * self.width.micros())
    }

    /// Busy time over bucket width — the utilization fraction of bucket
    /// `i` (can exceed 1.0 when requests submitted in one bucket keep the
    /// server busy into later ones; the series attributes busy time to
    /// the submission bucket).
    pub fn utilization(&self, i: usize) -> f64 {
        self.buckets[i].busy.micros() as f64 / self.width.micros() as f64
    }

    /// Fraction of bucket `i`'s requests that were throttled (0.0 for an
    /// idle bucket).
    pub fn throttle_rate(&self, i: usize) -> f64 {
        let b = &self.buckets[i];
        if b.requests == 0 {
            0.0
        } else {
            b.throttled as f64 / b.requests as f64
        }
    }

    /// Total requests across the series.
    pub fn total_requests(&self) -> u64 {
        self.buckets.iter().map(|b| b.requests).sum()
    }

    /// Total billed money across the series.
    pub fn total_billed(&self) -> Money {
        self.buckets.iter().map(|b| b.billed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, Outcome};

    fn span(service: ServiceKind, start: u64, end: u64) -> Span {
        Span::new(service, "op", SimTime(start), SimTime(end), &Ctx::default())
    }

    #[test]
    fn spans_land_in_their_start_bucket() {
        let width = SimDuration::from_micros(100);
        let spans = vec![
            span(ServiceKind::Kv, 0, 10).units(2.0).bytes(5),
            span(ServiceKind::Kv, 150, 160).units(1.0),
            span(ServiceKind::S3, 0, 10), // other service: excluded
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].requests, 1);
        assert_eq!(s.buckets[0].units, 2.0);
        assert_eq!(s.buckets[0].bytes, 5);
        assert_eq!(s.buckets[1].requests, 1);
        assert_eq!(s.total_requests(), 2);
        assert_eq!(s.bucket_start(1), SimTime(100));
    }

    #[test]
    fn in_flight_counts_every_overlapped_bucket() {
        let width = SimDuration::from_micros(100);
        // One long request spanning buckets 0..=2, one short in bucket 2.
        let spans = vec![
            span(ServiceKind::Sqs, 50, 250),
            span(ServiceKind::Sqs, 210, 220),
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Sqs, width);
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[0].in_flight, 1);
        assert_eq!(s.buckets[1].in_flight, 1);
        assert_eq!(s.buckets[2].in_flight, 2);
        // But each request is only counted once for rates.
        assert_eq!(s.buckets[2].requests, 1);
    }

    #[test]
    fn throttle_rate_and_utilization() {
        let width = SimDuration::from_micros(1000);
        let spans = vec![
            span(ServiceKind::Kv, 0, 10).busy(SimDuration::from_micros(500)),
            span(ServiceKind::Kv, 10, 20).outcome(Outcome::Throttled),
        ];
        let s = ServiceSeries::build(&spans, ServiceKind::Kv, width);
        assert_eq!(s.throttle_rate(0), 0.5);
        assert_eq!(s.utilization(0), 0.5);
    }

    #[test]
    fn empty_series() {
        let s = ServiceSeries::build(&[], ServiceKind::Ec2, SimDuration::from_secs(1));
        assert!(s.buckets.is_empty());
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.total_billed(), Money::ZERO);
    }
}
