//! Chrome trace-event JSON exporter.
//!
//! Serialises the span stream into the trace-event format understood by
//! `chrome://tracing` and Perfetto: one "complete" (`"ph": "X"`) event
//! per span, timestamps in virtual microseconds, one lane (thread) per
//! actor instance plus one per EC2 instance, and the billing breakdown in
//! each event's `args`. Billed amounts are emitted as *picodollar strings*
//! — `u128` totals overflow JSON's 2^53 exact-integer range.
//!
//! The output is hand-rolled (the workspace has no serde) and checked by
//! [`crate::json::validate_json`] in tests and in the `repro trace`
//! artifact pipeline.

use amada_cloud::{InstanceRecord, PriceTable, ServiceKind, Span};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `spans` (plus EC2 lifetime lanes derived from `ec2` under
/// `prices`) as a Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[Span], ec2: &[InstanceRecord], prices: &PriceTable) -> String {
    // Lane (tid) assignment: 0 is the untagged lane, actor lanes follow in
    // sorted (kind, instance) order, then one lane per EC2 instance.
    let mut lanes: BTreeMap<(&str, usize), u64> = BTreeMap::new();
    for s in spans {
        if let Some(tag) = s.ctx.actor {
            lanes.entry((tag.kind, tag.instance)).or_default();
        }
    }
    for (i, lane) in lanes.values_mut().enumerate() {
        *lane = i as u64 + 1;
    }
    let ec2_base = lanes.len() as u64 + 1;

    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":\"amada warehouse\"}}"
            .to_string(),
    );
    events.push(
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"untagged\"}}"
            .to_string(),
    );
    for ((kind, instance), tid) in &lanes {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{} {}\"}}}}",
            escape(kind),
            instance
        ));
    }
    for (i, r) in ec2.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"ec2 {} #{i}\"}}}}",
            ec2_base + i as u64,
            r.itype.label()
        ));
    }

    for s in spans {
        let tid = match s.ctx.actor {
            Some(tag) => lanes[&(tag.kind, tag.instance)],
            None => 0,
        };
        let mut args = format!(
            "\"outcome\":\"{}\",\"phase\":\"{}\",\"bytes\":{},\"units\":{},\
             \"billed_pico\":\"{}\"",
            s.outcome.label(),
            s.ctx.phase.label(),
            s.bytes,
            fmt_f64(s.units),
            s.billed.pico()
        );
        if let Some(q) = &s.ctx.query {
            let _ = write!(args, ",\"query\":\"{}\"", escape(q));
        }
        if let Some(d) = &s.ctx.doc {
            let _ = write!(args, ",\"doc\":\"{}\"", escape(d));
        }
        events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
            escape(s.op),
            s.service.label(),
            s.start.micros(),
            s.duration().micros(),
        ));
    }

    for (i, r) in ec2.iter().enumerate() {
        let billed = prices.vm_hour(r.itype).per_hour(r.uptime().micros());
        events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"instance\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"outcome\":\"ok\",\"itype\":\"{}\",\
             \"billed_pico\":\"{}\"}}}}",
            ServiceKind::Ec2.label(),
            r.start.micros(),
            r.uptime().micros(),
            ec2_base + i as u64,
            r.itype.label(),
            billed.pico()
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Formats an `f64` as a JSON number (finite inputs only; the span model
/// never produces NaN/inf units).
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite());
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use amada_cloud::{ActorTag, Ctx, InstanceType, Money, Outcome, SimTime};

    fn spans() -> Vec<Span> {
        let loader = Ctx {
            actor: Some(ActorTag {
                kind: "loader",
                instance: 0,
            }),
            query: Some("q\"uoted".into()),
            ..Default::default()
        };
        vec![
            Span::new(
                ServiceKind::Kv,
                "batch_put",
                SimTime(10),
                SimTime(30),
                &loader,
            )
            .bytes(1024)
            .units(1.05)
            .billed(Money::from_pico(123_456)),
            Span::new(
                ServiceKind::Sqs,
                "receive",
                SimTime(30),
                SimTime(34),
                &Ctx::default(),
            )
            .outcome(Outcome::Missing),
            // An autoscaler decision: instantaneous, tagged with the
            // sampled queue depth as units.
            Span::new(
                ServiceKind::Actor,
                "scale-out",
                SimTime(40),
                SimTime(40),
                &Ctx {
                    actor: Some(ActorTag {
                        kind: "autoscaler",
                        instance: 0,
                    }),
                    ..Default::default()
                },
            )
            .units(7.0),
        ]
    }

    fn records() -> Vec<InstanceRecord> {
        vec![InstanceRecord {
            itype: InstanceType::Large,
            start: SimTime::ZERO,
            end: SimTime(3_600_000_000),
        }]
    }

    #[test]
    fn trace_is_valid_json() {
        let t = chrome_trace(&spans(), &records(), &PriceTable::default());
        validate_json(&t).expect("chrome trace must be valid JSON");
    }

    #[test]
    fn trace_contains_events_lanes_and_billing() {
        let t = chrome_trace(&spans(), &records(), &PriceTable::default());
        assert!(t.contains("\"name\":\"batch_put\""));
        assert!(t.contains("\"cat\":\"kv\""));
        assert!(t.contains("\"name\":\"loader 0\""));
        // Scaling decisions get their own lane like any other actor.
        assert!(t.contains("\"name\":\"autoscaler 0\""));
        assert!(t.contains("\"name\":\"scale-out\""));
        assert!(t.contains("\"billed_pico\":\"123456\""));
        // Escaped query name survives.
        assert!(t.contains("q\\\"uoted"));
        // Missing outcome serialised.
        assert!(t.contains("\"outcome\":\"missing\""));
        // EC2 lane: one hour of a Large instance at default prices.
        let hour = PriceTable::default()
            .vm_hour(InstanceType::Large)
            .per_hour(3_600_000_000);
        assert!(t.contains(&format!("\"billed_pico\":\"{}\"", hour.pico())));
        assert!(t.contains("\"dur\":3600000000"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = chrome_trace(&[], &[], &PriceTable::default());
        validate_json(&t).expect("empty trace must be valid JSON");
        assert!(t.contains("traceEvents"));
    }
}
