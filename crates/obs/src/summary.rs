//! Service × operation roll-up over the span stream.
//!
//! The summary is the tabular companion to the Chrome trace: one row per
//! `(service, op)` pair with counts, payload, busy time and billed money,
//! sorted deterministically so two identical runs render identical
//! tables.

use amada_cloud::{Money, Outcome, ServiceKind, SimDuration, Span};
use std::collections::BTreeMap;

/// Aggregate over all spans of one `(service, op)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSummary {
    /// The service.
    pub service: ServiceKind,
    /// The operation name.
    pub op: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Spans that ended [`Outcome::Throttled`].
    pub throttled: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total capacity units.
    pub units: f64,
    /// Total service busy time.
    pub busy: SimDuration,
    /// Total billed money.
    pub billed: Money,
}

/// Rolls `spans` up into one [`OpSummary`] per `(service, op)`, sorted by
/// service (report order) then op name.
pub fn summarize(spans: &[Span]) -> Vec<OpSummary> {
    let mut map: BTreeMap<(ServiceKind, &'static str), OpSummary> = BTreeMap::new();
    for s in spans {
        let e = map.entry((s.service, s.op)).or_insert(OpSummary {
            service: s.service,
            op: s.op,
            count: 0,
            throttled: 0,
            bytes: 0,
            units: 0.0,
            busy: SimDuration::ZERO,
            billed: Money::ZERO,
        });
        e.count += 1;
        if s.outcome == Outcome::Throttled {
            e.throttled += 1;
        }
        e.bytes += s.bytes;
        e.units += s.units;
        e.busy += s.busy;
        e.billed += s.billed;
    }
    map.into_values().collect()
}

/// Renders the roll-up as a fixed-width text table.
pub fn render_summary(rows: &[OpSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<14} {:>9} {:>9} {:>12} {:>12} {:>10} {:>16}\n",
        "service", "op", "count", "throttled", "bytes", "units", "busy", "billed"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<14} {:>9} {:>9} {:>12} {:>12.2} {:>10} {:>16}\n",
            r.service.label(),
            r.op,
            r.count,
            r.throttled,
            r.bytes,
            r.units,
            r.busy.to_string(),
            r.billed.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Ctx, SimTime};

    fn span(service: ServiceKind, op: &'static str) -> Span {
        Span::new(service, op, SimTime::ZERO, SimTime(5), &Ctx::default())
    }

    #[test]
    fn rolls_up_by_service_and_op() {
        let spans = vec![
            span(ServiceKind::Kv, "get")
                .bytes(10)
                .billed(Money::from_pico(4)),
            span(ServiceKind::Kv, "get")
                .bytes(20)
                .outcome(Outcome::Throttled)
                .billed(Money::from_pico(4)),
            span(ServiceKind::Kv, "batch_put").units(3.5),
            span(ServiceKind::S3, "get"),
        ];
        let rows = summarize(&spans);
        assert_eq!(rows.len(), 3);
        // Sorted: S3 < Kv in report order? ServiceKind derives Ord from
        // declaration order (S3 first), then op name alphabetically.
        assert_eq!(rows[0].service, ServiceKind::S3);
        assert_eq!(rows[1].op, "batch_put");
        assert_eq!(rows[2].op, "get");
        assert_eq!(rows[2].count, 2);
        assert_eq!(rows[2].throttled, 1);
        assert_eq!(rows[2].bytes, 30);
        assert_eq!(rows[2].billed, Money::from_pico(8));
        assert_eq!(rows[1].units, 3.5);
    }

    #[test]
    fn render_has_header_and_rows() {
        let rows = summarize(&[span(ServiceKind::Sqs, "send").bytes(7)]);
        let table = render_summary(&rows);
        assert!(table.starts_with("service"));
        assert!(table.contains("sqs"));
        assert!(table.contains("send"));
    }

    #[test]
    fn empty_summary() {
        assert!(summarize(&[]).is_empty());
    }
}
