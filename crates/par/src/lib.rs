//! # amada-par
//!
//! Host-side data parallelism over `std::thread::scope` — the build
//! environment cannot fetch rayon, and the workspace's needs are narrow:
//! a deterministic parallel map over an indexed work list.
//!
//! Work is distributed by an atomic cursor (dynamic load balancing, which
//! matters because XML documents vary in size), and results are returned
//! **in input order** regardless of which thread computed what. Every
//! function here is a pure reordering of the sequential computation:
//! callers that need bit-for-bit reproducibility get it as long as their
//! per-item closures are pure functions of the item.
//!
//! Thread count resolution: explicit argument > `AMADA_THREADS` env var >
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: `AMADA_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("AMADA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`num_threads`] workers; results are in input
/// order. Falls back to a plain sequential map for one worker or tiny
/// inputs (avoids thread spawn overhead).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Each worker appends (index, result) locally; slots are merged and
    // restored to input order afterwards. A worker panic propagates out of
    // the scope, so partially-filled output is never observed.
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Runs the thunks on up to [`num_threads`] workers (an atomic cursor
/// hands out tasks in order, so load balances dynamically) and returns
/// their results in input order. For coarse task parallelism — e.g.
/// running independent benchmark suites or warehouse builds concurrently.
/// `AMADA_THREADS=1` degrades this to a plain sequential loop.
pub fn par_run<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let n = tasks.len();
    let workers = num_threads().min(n);
    if workers <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    // FnOnce tasks live in take-once slots; each index is claimed by
    // exactly one worker through the cursor, so the lock is uncontended.
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each slot taken once");
                *out[i].lock().unwrap() = Some(task());
            });
        }
    });
    out.into_iter()
        .map(|s| s.into_inner().unwrap().expect("scope joined every task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 4, 7] {
            let par = par_map_with(threads, &items, |i, v| v * 3 + i as u64);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |_, v| *v).is_empty());
        assert_eq!(par_map_with(4, &[9], |_, v| v + 1), vec![10]);
    }

    #[test]
    fn par_run_returns_in_task_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    // Finish out of order on purpose.
                    std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
                    i
                });
                f
            })
            .collect();
        assert_eq!(par_run(tasks), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
