//! Queue-depth autoscaling for the warehouse's instance pools.
//!
//! The paper provisions fixed pools per experiment and bills
//! `VM$_h × t_phase`; a deployed warehouse serving bursty traffic must
//! instead grow and shrink the loader and query-processor pools at
//! runtime. [`AutoscaleController`] is a control-plane actor (it runs on
//! the front end — no EC2 instance of its own) that every
//! `sample_interval`:
//!
//! 1. issues a **billed** SQS depth probe ([`amada_cloud::Sqs::depth`]) —
//!    sampling the backlog costs real requests, and those requests land
//!    in the cost ledger and the span recorder like any other;
//! 2. computes the desired pool size
//!    `ceil(depth / backlog_per_instance)`, clamped to the policy's
//!    `min..=max`;
//! 3. **scales out** by launching instances whose billing window opens at
//!    the decision instant while their cores start polling only
//!    `boot_latency` later (you pay for the boot, as on real EC2); or
//! 4. **scales in** by draining the newest instances: a drained core
//!    finishes the message it holds a lease on, stops receiving, and the
//!    last core to exit freezes the instance's billing window with
//!    [`amada_cloud::Ec2::stop`] — so a scale-in victim is billed
//!    launch → last useful work, not to the end of the phase.
//!
//! Everything is deterministic: the controller is an ordinary engine
//! actor woken at virtual times, new cores are adopted through the
//! engine's FIFO spawn queue, and scale-in picks victims in LIFO launch
//! order. With the policy absent (`None` in the config) none of this
//! code runs and the warehouse is bit-identical to the static-pool
//! version — asserted by `tests/autoscale.rs`.
//!
//! Correctness under drain leans entirely on the queue's at-least-once
//! contract: a drained core never abandons a lease (it completes the
//! in-flight message first), and a core that dies mid-lease anyway — a
//! crash racing the drain — simply stops renewing, so the message
//! reappears and another member processes it exactly once.

use crate::config::AutoscalePolicy;
use crate::retry::RetryPolicy;
use amada_cloud::{
    Actor, ActorTag, InstanceId, Phase, ServiceKind, SimTime, Span, SqsError, StepResult, World,
};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Shared drain/termination state of one pool instance, cloned into each
/// of its cores and held by the controller.
#[derive(Debug)]
struct DrainShared {
    instance: InstanceId,
    draining: Cell<bool>,
    live_cores: Cell<usize>,
}

/// Handle to one pool member: the autoscaler flips it to *draining*; the
/// member's cores poll it between tasks and exit gracefully, and the last
/// core out freezes the instance's billing window.
#[derive(Debug, Clone)]
pub struct DrainSignal(Rc<DrainShared>);

impl DrainSignal {
    /// A fresh signal for an instance with `cores` cores.
    pub fn new(instance: InstanceId, cores: usize) -> DrainSignal {
        DrainSignal(Rc::new(DrainShared {
            instance,
            draining: Cell::new(false),
            live_cores: Cell::new(cores),
        }))
    }

    /// The instance this signal controls.
    pub fn instance(&self) -> InstanceId {
        self.0.instance
    }

    /// Asks the instance's cores to stop receiving new work. Leased
    /// messages are finished first — draining never abandons a lease.
    pub fn drain(&self) {
        self.0.draining.set(true);
    }

    /// True once [`DrainSignal::drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.0.draining.get()
    }

    /// Cores still running on the instance.
    pub fn live_cores(&self) -> usize {
        self.0.live_cores.get()
    }

    /// Called by a core as it exits (drained, or out of work): bills the
    /// instance to `now`, and the last core out stops the instance so the
    /// billing window is frozen at its final useful instant.
    pub fn core_exited(&self, world: &mut World, now: SimTime) {
        world.ec2.extend(self.0.instance, now);
        let left = self.0.live_cores.get().saturating_sub(1);
        self.0.live_cores.set(left);
        if left == 0 {
            world.ec2.stop(self.0.instance, now);
        }
    }
}

/// Which way a scaling action went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// A new instance was launched.
    Out,
    /// An instance was told to drain.
    In,
}

/// One autoscaler decision, for reports and the `repro scale` artifact.
#[derive(Debug, Clone, Copy)]
pub struct ScaleEvent {
    /// When the decision was made (the depth sample's response time).
    pub at: SimTime,
    /// Out (launch) or in (drain).
    pub direction: ScaleDirection,
    /// The instance launched or drained.
    pub instance: InstanceId,
    /// The sampled queue depth that triggered the decision.
    pub depth: usize,
    /// Active (non-draining) pool size after the action.
    pub pool_size: usize,
}

/// Scaling decisions shared between a controller and the warehouse.
pub type ScaleEvents = Rc<RefCell<Vec<ScaleEvent>>>;

/// Launches one pool instance and its core actors: called with the world,
/// the launch time and the boot latency (zero for the up-front `min`
/// pool), it must bill the instance from the launch time, schedule the
/// cores at `launch + boot`, and return the instance's drain signal.
pub type Launcher<'a> =
    Box<dyn FnMut(&mut World, SimTime, amada_cloud::SimDuration) -> DrainSignal + 'a>;

/// The deterministic, virtual-time autoscaling controller (one per
/// elastic pool per phase). See the module docs for the control loop.
pub struct AutoscaleController<'a> {
    queue: &'static str,
    policy: AutoscalePolicy,
    phase: Phase,
    tag: ActorTag,
    retry: RetryPolicy,
    launcher: Launcher<'a>,
    /// Active (non-draining) members, in launch order; scale-in drains
    /// from the back (newest first).
    members: Vec<DrainSignal>,
    events: ScaleEvents,
    /// Consecutive throttles of the depth probe.
    attempt: u32,
}

impl<'a> AutoscaleController<'a> {
    /// A controller over `queue` with no members yet; call
    /// [`AutoscaleController::provision`] before spawning it.
    pub fn new(
        queue: &'static str,
        policy: AutoscalePolicy,
        phase: Phase,
        tag: ActorTag,
        retry: RetryPolicy,
        launcher: Launcher<'a>,
        events: ScaleEvents,
    ) -> AutoscaleController<'a> {
        policy.validate();
        AutoscaleController {
            queue,
            policy,
            phase,
            tag,
            retry,
            launcher,
            members: Vec::new(),
            events,
            attempt: 0,
        }
    }

    /// Launches the `min` pool up-front (no boot latency — like a static
    /// pool, the floor is provisioned before the phase starts).
    pub fn provision(&mut self, world: &mut World, now: SimTime) {
        for _ in 0..self.policy.min {
            let sig = (self.launcher)(world, now, amada_cloud::SimDuration::ZERO);
            self.members.push(sig);
        }
    }

    /// Active (non-draining) pool size.
    pub fn pool_size(&self) -> usize {
        self.members.len()
    }

    fn record_event(&self, world: &mut World, event: ScaleEvent) {
        // The launcher tags boot spans with the new instance's lane;
        // re-assert the controller's own lane for the decision span.
        world.obs.with_ctx(|c| c.actor = Some(self.tag));
        self.events.borrow_mut().push(event);
        let op = match event.direction {
            ScaleDirection::Out => "scale-out",
            ScaleDirection::In => "scale-in",
        };
        world.obs.record(|_, ctx| {
            Span::new(ServiceKind::Actor, op, event.at, event.at, ctx).units(event.depth as f64)
        });
    }
}

impl Actor for AutoscaleController<'_> {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        world.obs.with_ctx(|c| {
            c.phase = self.phase;
            c.query = None;
            c.doc = None;
            c.actor = Some(self.tag);
        });
        // The members exit by themselves once the queue is drained (same
        // unbilled host probe the static pools use); the controller's job
        // is over then too.
        if world.sqs.drained(self.queue).expect("pool queue exists") {
            return StepResult::Done;
        }
        let (depth, t) = match world.sqs.depth(now, self.queue) {
            Ok(out) => out,
            Err(SqsError::Throttled { available_at }) => {
                self.attempt = (self.attempt + 1).min(self.retry.max_attempts);
                return StepResult::NextAt(available_at + self.retry.backoff_linear(self.attempt));
            }
            Err(e) => panic!("pool queue exists: {e}"),
        };
        self.attempt = 0;
        let desired = self.policy.desired(depth);
        while self.members.len() < desired {
            let sig = (self.launcher)(world, t, self.policy.boot_latency);
            self.members.push(sig);
            self.record_event(
                world,
                ScaleEvent {
                    at: t,
                    direction: ScaleDirection::Out,
                    instance: self.members.last().expect("just pushed").instance(),
                    depth,
                    pool_size: self.members.len(),
                },
            );
        }
        while self.members.len() > desired {
            let victim = self.members.pop().expect("len > desired >= min >= 1");
            victim.drain();
            self.record_event(
                world,
                ScaleEvent {
                    at: t,
                    direction: ScaleDirection::In,
                    instance: victim.instance(),
                    depth,
                    pool_size: self.members.len(),
                },
            );
        }
        StepResult::NextAt(t + self.policy.sample_interval)
    }
}

/// A front-end actor that releases query messages in timed bursts (the
/// `repro scale` workload): each burst's messages are sent back-to-back
/// at their scheduled instant, and the queue is closed after the last
/// send so the pool (and its controller) can wind down.
pub struct BurstSender {
    queue: &'static str,
    /// `(send at, query name, message body)`, in send order.
    pending: VecDeque<(SimTime, String, String)>,
    retry: RetryPolicy,
    tag: ActorTag,
}

impl BurstSender {
    /// A sender for a prepared schedule (must be non-decreasing in time).
    pub fn new(
        queue: &'static str,
        pending: VecDeque<(SimTime, String, String)>,
        retry: RetryPolicy,
        tag: ActorTag,
    ) -> BurstSender {
        BurstSender {
            queue,
            pending,
            retry,
            tag,
        }
    }

    /// When the first message is due (spawn the actor there).
    pub fn first_send(&self) -> Option<SimTime> {
        self.pending.front().map(|(at, _, _)| *at)
    }
}

impl Actor for BurstSender {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let Some((_, name, body)) = self.pending.pop_front() else {
            world.sqs.close(self.queue);
            return StepResult::Done;
        };
        world.obs.with_ctx(|c| {
            c.phase = Phase::Query;
            c.query = Some(name.into());
            c.doc = None;
            c.actor = Some(self.tag);
        });
        let t = crate::retry::frontend_send(&mut world.sqs, &self.retry, now, self.queue, body);
        match self.pending.front() {
            Some((at, _, _)) => StepResult::NextAt(t.max(*at)),
            // One more wake-up to close the queue, at the time the last
            // send completed.
            None => StepResult::NextAt(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_signal_stops_instance_when_last_core_exits() {
        let mut world = World::new(amada_cloud::KvBackend::default());
        let id = world
            .ec2
            .launch(amada_cloud::InstanceType::Large, SimTime::ZERO);
        let sig = DrainSignal::new(id, 2);
        assert!(!sig.is_draining());
        sig.drain();
        assert!(sig.is_draining());
        sig.core_exited(&mut world, SimTime(1_000_000));
        assert!(!world.ec2.is_stopped(id), "one core still running");
        assert_eq!(sig.live_cores(), 1);
        sig.core_exited(&mut world, SimTime(2_000_000));
        assert!(world.ec2.is_stopped(id), "last core out stops the clock");
        assert_eq!(world.ec2.record(id).end, SimTime(2_000_000));
        // Later phase-end extensions cannot resurrect the window.
        world.ec2.extend(id, SimTime(9_000_000));
        assert_eq!(world.ec2.record(id).end, SimTime(2_000_000));
    }
}
