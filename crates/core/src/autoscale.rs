//! Queue-depth autoscaling for the warehouse's instance pools.
//!
//! The paper provisions fixed pools per experiment and bills
//! `VM$_h × t_phase`; a deployed warehouse serving bursty traffic must
//! instead grow and shrink the loader and query-processor pools at
//! runtime. [`AutoscaleController`] is a control-plane actor (it runs on
//! the front end — no EC2 instance of its own) that every
//! `sample_interval`:
//!
//! 1. issues a **billed** SQS depth probe ([`amada_cloud::Sqs::depth`]) —
//!    sampling the backlog costs real requests, and those requests land
//!    in the cost ledger and the span recorder like any other;
//! 2. computes the desired pool size
//!    `ceil(depth / backlog_per_instance)`, clamped to the policy's
//!    `min..=max`;
//! 3. **scales out** by launching instances whose billing window opens at
//!    the decision instant while their cores start polling only
//!    `boot_latency` later (you pay for the boot, as on real EC2); or
//! 4. **scales in** by draining the newest instances: a drained core
//!    finishes the message it holds a lease on, stops receiving, and the
//!    last core to exit freezes the instance's billing window with
//!    [`amada_cloud::Ec2::stop`] — so a scale-in victim is billed
//!    launch → last useful work, not to the end of the phase.
//!
//! Everything is deterministic: the controller is an ordinary engine
//! actor woken at virtual times, new cores are adopted through the
//! engine's FIFO spawn queue, and scale-in picks victims in LIFO launch
//! order. With the policy absent (`None` in the config) none of this
//! code runs and the warehouse is bit-identical to the static-pool
//! version — asserted by `tests/autoscale.rs`.
//!
//! Correctness under drain leans entirely on the queue's at-least-once
//! contract: a drained core never abandons a lease (it completes the
//! in-flight message first), and a core that dies mid-lease anyway — a
//! crash racing the drain — simply stops renewing, so the message
//! reappears and another member processes it exactly once.

use crate::config::AutoscalePolicy;
use crate::retry::RetryPolicy;
use amada_cloud::{
    Actor, ActorTag, InstanceId, Phase, ServiceKind, SimDuration, SimTime, Span, SqsError,
    StepResult, World,
};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Shared drain/termination state of one pool instance, cloned into each
/// of its cores and held by the controller.
#[derive(Debug)]
struct DrainShared {
    instance: InstanceId,
    draining: Cell<bool>,
    live_cores: Cell<usize>,
}

/// Handle to one pool member: the autoscaler flips it to *draining*; the
/// member's cores poll it between tasks and exit gracefully, and the last
/// core out freezes the instance's billing window.
#[derive(Debug, Clone)]
pub struct DrainSignal(Rc<DrainShared>);

impl DrainSignal {
    /// A fresh signal for an instance with `cores` cores.
    pub fn new(instance: InstanceId, cores: usize) -> DrainSignal {
        DrainSignal(Rc::new(DrainShared {
            instance,
            draining: Cell::new(false),
            live_cores: Cell::new(cores),
        }))
    }

    /// The instance this signal controls.
    pub fn instance(&self) -> InstanceId {
        self.0.instance
    }

    /// Asks the instance's cores to stop receiving new work. Leased
    /// messages are finished first — draining never abandons a lease.
    pub fn drain(&self) {
        self.0.draining.set(true);
    }

    /// True once [`DrainSignal::drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.0.draining.get()
    }

    /// Cores still running on the instance.
    pub fn live_cores(&self) -> usize {
        self.0.live_cores.get()
    }

    /// Called by a core as it exits (drained, or out of work): bills the
    /// instance to `now`, and the last core out stops the instance so the
    /// billing window is frozen at its final useful instant.
    pub fn core_exited(&self, world: &mut World, now: SimTime) {
        world.ec2.extend(self.0.instance, now);
        let left = self.0.live_cores.get().saturating_sub(1);
        self.0.live_cores.set(left);
        if left == 0 {
            world.ec2.stop(self.0.instance, now);
        }
    }
}

/// Which way a scaling action went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// A new instance was launched.
    Out,
    /// An instance was told to drain.
    In,
}

/// One autoscaler decision, for reports and the `repro scale` artifact.
#[derive(Debug, Clone, Copy)]
pub struct ScaleEvent {
    /// When the decision was made (the depth sample's response time).
    pub at: SimTime,
    /// Out (launch) or in (drain).
    pub direction: ScaleDirection,
    /// The instance launched or drained.
    pub instance: InstanceId,
    /// The sampled queue depth that triggered the decision.
    pub depth: usize,
    /// Active (non-draining) pool size after the action.
    pub pool_size: usize,
}

/// Scaling decisions shared between a controller and the warehouse.
pub type ScaleEvents = Rc<RefCell<Vec<ScaleEvent>>>;

/// Launches one pool instance and its core actors: called with the world,
/// the launch time and the boot latency (zero for the up-front `min`
/// pool), it must bill the instance from the launch time, schedule the
/// cores at `launch + boot`, and return the instance's drain signal.
pub type Launcher<'a> =
    Box<dyn FnMut(&mut World, SimTime, amada_cloud::SimDuration) -> DrainSignal + 'a>;

/// The deterministic, virtual-time autoscaling controller (one per
/// elastic pool per phase). See the module docs for the control loop.
pub struct AutoscaleController<'a> {
    queue: &'static str,
    policy: AutoscalePolicy,
    phase: Phase,
    tag: ActorTag,
    retry: RetryPolicy,
    launcher: Launcher<'a>,
    /// Active (non-draining) members, in launch order; scale-in drains
    /// from the back (newest first).
    members: Vec<DrainSignal>,
    events: ScaleEvents,
    /// Consecutive throttles of the depth probe.
    attempt: u32,
}

impl<'a> AutoscaleController<'a> {
    /// A controller over `queue` with no members yet; call
    /// [`AutoscaleController::provision`] before spawning it.
    pub fn new(
        queue: &'static str,
        policy: AutoscalePolicy,
        phase: Phase,
        tag: ActorTag,
        retry: RetryPolicy,
        launcher: Launcher<'a>,
        events: ScaleEvents,
    ) -> AutoscaleController<'a> {
        policy.validate();
        AutoscaleController {
            queue,
            policy,
            phase,
            tag,
            retry,
            launcher,
            members: Vec::new(),
            events,
            attempt: 0,
        }
    }

    /// Launches the `min` pool up-front (no boot latency — like a static
    /// pool, the floor is provisioned before the phase starts).
    pub fn provision(&mut self, world: &mut World, now: SimTime) {
        for _ in 0..self.policy.min {
            let sig = (self.launcher)(world, now, amada_cloud::SimDuration::ZERO);
            self.members.push(sig);
        }
    }

    /// Active (non-draining) pool size.
    pub fn pool_size(&self) -> usize {
        self.members.len()
    }

    fn record_event(&self, world: &mut World, event: ScaleEvent) {
        // The launcher tags boot spans with the new instance's lane;
        // re-assert the controller's own lane for the decision span.
        world.obs.with_ctx(|c| c.actor = Some(self.tag));
        self.events.borrow_mut().push(event);
        let op = match event.direction {
            ScaleDirection::Out => "scale-out",
            ScaleDirection::In => "scale-in",
        };
        world.obs.record(|_, ctx| {
            Span::new(ServiceKind::Actor, op, event.at, event.at, ctx).units(event.depth as f64)
        });
    }
}

impl Actor for AutoscaleController<'_> {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        world.obs.with_ctx(|c| {
            c.phase = self.phase;
            c.query = None;
            c.doc = None;
            c.actor = Some(self.tag);
        });
        // The members exit by themselves once the queue is drained (same
        // unbilled host probe the static pools use); the controller's job
        // is over then too.
        if world.sqs.drained(self.queue).expect("pool queue exists") {
            return StepResult::Done;
        }
        let (depth, t) = match world.sqs.depth(now, self.queue) {
            Ok(out) => out,
            Err(SqsError::Throttled { available_at }) => {
                self.attempt = (self.attempt + 1).min(self.retry.max_attempts);
                return StepResult::NextAt(available_at + self.retry.backoff_linear(self.attempt));
            }
            Err(e) => panic!("pool queue exists: {e}"),
        };
        self.attempt = 0;
        let desired = self.policy.desired(depth);
        while self.members.len() < desired {
            let sig = (self.launcher)(world, t, self.policy.boot_latency);
            self.members.push(sig);
            self.record_event(
                world,
                ScaleEvent {
                    at: t,
                    direction: ScaleDirection::Out,
                    instance: self.members.last().expect("just pushed").instance(),
                    depth,
                    pool_size: self.members.len(),
                },
            );
        }
        while self.members.len() > desired {
            let victim = self.members.pop().expect("len > desired >= min >= 1");
            victim.drain();
            self.record_event(
                world,
                ScaleEvent {
                    at: t,
                    direction: ScaleDirection::In,
                    instance: victim.instance(),
                    depth,
                    pool_size: self.members.len(),
                },
            );
        }
        StepResult::NextAt(t + self.policy.sample_interval)
    }
}

/// A front-end actor that releases query messages in timed bursts (the
/// `repro scale` workload): each burst's messages are sent back-to-back
/// at their scheduled instant, and the queue is closed after the last
/// send so the pool (and its controller) can wind down.
pub struct BurstSender {
    queue: &'static str,
    /// `(send at, query name, message body)`, in send order.
    pending: VecDeque<(SimTime, String, String)>,
    retry: RetryPolicy,
    tag: ActorTag,
}

impl BurstSender {
    /// A sender for a prepared schedule (must be non-decreasing in time).
    pub fn new(
        queue: &'static str,
        pending: VecDeque<(SimTime, String, String)>,
        retry: RetryPolicy,
        tag: ActorTag,
    ) -> BurstSender {
        BurstSender {
            queue,
            pending,
            retry,
            tag,
        }
    }

    /// When the first message is due (spawn the actor there).
    pub fn first_send(&self) -> Option<SimTime> {
        self.pending.front().map(|(at, _, _)| *at)
    }
}

impl Actor for BurstSender {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let Some((_, name, body)) = self.pending.pop_front() else {
            // Empty schedule (zero bursts / empty workload) or the final
            // wake-up after the last send: close the queue so consumers
            // stop polling instead of waiting forever.
            world.sqs.close(self.queue);
            return StepResult::Done;
        };
        world.obs.with_ctx(|c| {
            c.phase = Phase::Query;
            c.query = Some(name.into());
            c.doc = None;
            c.actor = Some(self.tag);
        });
        let t = crate::retry::frontend_send(&mut world.sqs, &self.retry, now, self.queue, body);
        match self.pending.front() {
            Some((at, _, _)) => StepResult::NextAt(t.max(*at)),
            // One more wake-up to close the queue, at the time the last
            // send completed.
            None => StepResult::NextAt(t),
        }
    }
}

/// A seeded open-loop arrival process: inter-arrival gaps are exponential
/// around a time-varying rate (diurnal sinusoid × periodic burst factor),
/// and each arrival picks its query by a Zipf draw over the workload —
/// the hot-key skew that drives one index shard much harder than the
/// rest. Open-loop means the release times are fixed up-front: arrivals
/// never wait for completions, so queue growth under saturation is real,
/// not throttled by the sender.
///
/// Everything is derived from `seed` through the project RNG — no host
/// randomness, no wall clock — so a process generates the identical
/// schedule on every run and every thread count.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// RNG seed for gaps and query picks.
    pub seed: u64,
    /// Total arrivals to release.
    pub arrivals: usize,
    /// Mean arrival rate (queries/sec) before modulation.
    pub base_rate_per_sec: f64,
    /// Diurnal swing as a fraction of the base rate (`0.0..=1.0`); the
    /// instantaneous rate is `base · (1 + amplitude · sin(2πt/period))`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid.
    pub diurnal_period: SimDuration,
    /// A burst starts every `burst_every` of virtual time…
    pub burst_every: SimDuration,
    /// …lasts `burst_len`…
    pub burst_len: SimDuration,
    /// …and multiplies the instantaneous rate while it lasts.
    pub burst_factor: f64,
    /// Zipf exponent of the query pick (0 = uniform; ≥ 1 concentrates
    /// almost all arrivals on the first queries).
    pub zipf_exponent: f64,
}

impl ArrivalProcess {
    /// A steady process: no diurnal swing, no bursts, uniform picks.
    pub fn steady(seed: u64, arrivals: usize, rate_per_sec: f64) -> ArrivalProcess {
        ArrivalProcess {
            seed,
            arrivals,
            base_rate_per_sec: rate_per_sec,
            diurnal_amplitude: 0.0,
            diurnal_period: amada_cloud::SimDuration::from_secs(3600),
            burst_every: amada_cloud::SimDuration::from_secs(3600),
            burst_len: amada_cloud::SimDuration::ZERO,
            burst_factor: 1.0,
            zipf_exponent: 0.0,
        }
    }

    /// The instantaneous arrival rate at offset `t` from the start.
    pub fn rate_at(&self, t: amada_cloud::SimDuration) -> f64 {
        let secs = t.as_secs_f64();
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * secs / self.diurnal_period.as_secs_f64()).sin();
        let in_burst = self.burst_len > amada_cloud::SimDuration::ZERO
            && t.micros() % self.burst_every.micros().max(1) < self.burst_len.micros();
        let burst = if in_burst { self.burst_factor } else { 1.0 };
        (self.base_rate_per_sec * diurnal * burst).max(1e-9)
    }

    /// The seeded schedule: `arrivals` pairs of (offset from start, index
    /// of the picked query in a workload of `queries` entries), in
    /// arrival order. Gaps are exponential at the rate current when each
    /// gap starts; picks are Zipf over `0..queries`.
    pub fn offsets(&self, queries: usize) -> Vec<(amada_cloud::SimDuration, usize)> {
        assert!(queries > 0, "an arrival process needs a workload");
        let mut rng = amada_rng::StdRng::seed_from_u64(self.seed);
        // Zipf CDF over query ranks (uniform when the exponent is 0).
        let weights: Vec<f64> = (0..queries)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(queries);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let mut out = Vec::with_capacity(self.arrivals);
        let mut t_micros: u64 = 0;
        for _ in 0..self.arrivals {
            let rate = self.rate_at(amada_cloud::SimDuration::from_micros(t_micros));
            let u = rng.next_f64();
            let gap_secs = -(1.0 - u).ln() / rate;
            t_micros += (gap_secs * 1e6) as u64;
            let pick = rng.next_f64();
            let idx = cdf.partition_point(|&c| c < pick).min(queries - 1);
            out.push((amada_cloud::SimDuration::from_micros(t_micros), idx));
        }
        out
    }
}

/// An open-loop front-end actor: generalizes [`BurstSender`] from "all
/// messages of a burst at one instant" to an arbitrary pre-computed
/// arrival schedule. Release times come from an [`ArrivalProcess`], so
/// sends never wait for completions; the queue is closed after the last
/// arrival (inheriting the empty-schedule close from `BurstSender`).
pub struct OpenLoopSender {
    inner: BurstSender,
}

impl OpenLoopSender {
    /// A sender over a prepared `(send at, query name, body)` schedule
    /// (non-decreasing in time — [`ArrivalProcess::offsets`] output is).
    pub fn new(
        queue: &'static str,
        schedule: VecDeque<(SimTime, String, String)>,
        retry: RetryPolicy,
        tag: ActorTag,
    ) -> OpenLoopSender {
        OpenLoopSender {
            inner: BurstSender::new(queue, schedule, retry, tag),
        }
    }

    /// When the first arrival is due (spawn the actor there).
    pub fn first_send(&self) -> Option<SimTime> {
        self.inner.first_send()
    }
}

impl Actor for OpenLoopSender {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        self.inner.step(now, world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_signal_stops_instance_when_last_core_exits() {
        let mut world = World::new(amada_cloud::KvBackend::default());
        let id = world
            .ec2
            .launch(amada_cloud::InstanceType::Large, SimTime::ZERO);
        let sig = DrainSignal::new(id, 2);
        assert!(!sig.is_draining());
        sig.drain();
        assert!(sig.is_draining());
        sig.core_exited(&mut world, SimTime(1_000_000));
        assert!(!world.ec2.is_stopped(id), "one core still running");
        assert_eq!(sig.live_cores(), 1);
        sig.core_exited(&mut world, SimTime(2_000_000));
        assert!(world.ec2.is_stopped(id), "last core out stops the clock");
        assert_eq!(world.ec2.record(id).end, SimTime(2_000_000));
        // Later phase-end extensions cannot resurrect the window.
        world.ec2.extend(id, SimTime(9_000_000));
        assert_eq!(world.ec2.record(id).end, SimTime(2_000_000));
    }
}
