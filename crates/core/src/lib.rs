//! # amada-core
//!
//! The end-to-end warehouse of the paper's Figure 1: a front end, an
//! indexing module and a query-processor module running on simulated cloud
//! instances, glued by queues, storing documents in a file store and the
//! index in a key-value store — plus the Section 7 monetary cost model,
//! the index amortization analysis (Figure 13), and the strategy advisor
//! sketched as future work in the paper's conclusion.

pub mod actors;
pub mod adaptive;
pub mod advisor;
pub mod amortization;
pub mod autoscale;
pub mod config;
pub mod cost;
pub mod metrics;
pub mod retry;
pub mod warehouse;

pub use actors::RetractionRegistry;
pub use adaptive::{
    advise_adaptive, estimate_plan, observed_families, AdaptiveAdvice, FamilyLoad, Horizon,
    PlanEstimate, ESTIMATE_TOLERANCE,
};
pub use advisor::{advise, advise_churn, advise_queries, Advice, AdviseError, StrategyEstimate};
pub use amortization::{Amortization, AmortizationPoint};
pub use autoscale::{
    ArrivalProcess, AutoscaleController, BurstSender, DrainSignal, OpenLoopSender, ScaleDirection,
    ScaleEvent,
};
pub use config::{AutoscalePolicy, Pool, WarehouseConfig};
pub use config::{
    DEAD_LETTER_QUEUE, DOC_BUCKET, LOADER_QUEUE, QUERY_QUEUE, RESPONSE_QUEUE, RESULT_BUCKET,
};
pub use cost::CostModel;
pub use metrics::{CostedQuery, IndexBuildReport, QueryExecution, QueryPhases, WorkloadReport};
pub use retry::{Lease, RetryPolicy};
pub use warehouse::{DeleteReport, Readvice, UploadReport, Warehouse};
