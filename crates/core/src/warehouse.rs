//! The warehouse façade: the full architecture of the paper's Figure 1,
//! steps 1–18, over the simulated cloud.

use crate::actors::{DocCache, LoaderCore, LoaderTotals, QueryCore};
use crate::config::{
    WarehouseConfig, DEAD_LETTER_QUEUE, DOC_BUCKET, LOADER_QUEUE, QUERY_QUEUE, RESPONSE_QUEUE,
    RESULT_BUCKET,
};
use crate::metrics::{CostedQuery, IndexBuildReport, QueryExecution, WorkloadReport};
use crate::retry::{
    frontend_delete, frontend_get_object, frontend_put_object, frontend_receive, frontend_send,
};
use amada_cloud::{
    ActorTag, CostReport, CostSnapshot, Engine, Money, Phase, SimDuration, SimTime, Span,
    StorageCost, World,
};
use amada_index::{CacheStats, ExtractCache, PrewarmReport};
use amada_pattern::Query;
use std::cell::RefCell;
use std::rc::Rc;

/// A cloud-hosted XML warehouse (one simulated deployment).
pub struct Warehouse {
    cfg: WarehouseConfig,
    engine: Engine,
    cache: DocCache,
    doc_uris: Vec<String>,
    corpus_bytes: u64,
}

/// Fault-visibility deltas since a snapshot: (throttled billed requests
/// across all services, lease renewals, redeliveries).
fn fault_deltas(world: &World, before: &CostSnapshot) -> (u64, u64, u64) {
    let s3 = world.s3.stats();
    let kv = world.kv.stats();
    let sqs = world.sqs.stats();
    (
        (s3.throttled - before.s3.throttled)
            + (kv.throttled - before.kv.throttled)
            + (sqs.throttled - before.sqs.throttled),
        sqs.renewals - before.sqs.renewals,
        sqs.redelivered - before.sqs.redelivered,
    )
}

/// Outcome of uploading a batch of documents (front-end steps 1–3).
#[derive(Debug, Clone, Copy)]
pub struct UploadReport {
    /// Documents uploaded.
    pub documents: u64,
    /// Bytes uploaded.
    pub bytes: u64,
    /// Charges for the upload (the paper's `ud$(D)`).
    pub cost: Money,
}

impl Warehouse {
    /// Provisions a warehouse: buckets, queues and index tables.
    pub fn new(cfg: WarehouseConfig) -> Warehouse {
        let mut world = World::new(cfg.backend.clone());
        if cfg.kv_tuning.is_active() {
            let inner =
                std::mem::replace(&mut world.kv, Box::new(amada_cloud::DynamoDb::default()));
            world.kv = Box::new(amada_cloud::TunedKvStore::new(inner, cfg.kv_tuning));
        }
        world.prices = cfg.prices.clone();
        world.work = cfg.work.clone();
        world.s3.create_bucket(DOC_BUCKET);
        world.s3.create_bucket(RESULT_BUCKET);
        world.sqs.create_queue(LOADER_QUEUE);
        world.sqs.create_queue(QUERY_QUEUE);
        world.sqs.create_queue(RESPONSE_QUEUE);
        world.sqs.create_queue(DEAD_LETTER_QUEUE);
        for table in cfg.strategy.tables() {
            world.kv.ensure_table(table);
        }
        world.install_faults(&cfg.faults);
        if cfg.host.record {
            world.enable_recording();
        }
        Warehouse {
            cfg,
            engine: Engine::new(world),
            cache: ExtractCache::shared(),
            doc_uris: Vec::new(),
            corpus_bytes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WarehouseConfig {
        &self.cfg
    }

    /// Reconfigures the query-processor pool (the experiments vary
    /// instance count and flavor between runs; the index is unaffected).
    pub fn set_query_pool(&mut self, pool: crate::config::Pool) {
        self.cfg.query_pool = pool;
    }

    /// The simulated cloud (for inspection and cost reporting).
    pub fn world(&self) -> &World {
        &self.engine.world
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// URIs of all uploaded documents.
    pub fn documents(&self) -> &[String] {
        &self.doc_uris
    }

    /// Total corpus size in bytes (`s(D)`).
    pub fn corpus_bytes(&self) -> u64 {
        self.corpus_bytes
    }

    /// Front end, steps 1–3: store each document in the file store and
    /// enqueue a loading request. May be called repeatedly — the warehouse
    /// is incremental; follow each batch with [`Warehouse::build_index`].
    ///
    /// Re-uploading an existing URI replaces the stored document and
    /// re-indexes it (deterministic range keys make that idempotent per
    /// key); index entries for keys that no longer occur in the new
    /// version are *not* retracted — they are conservative false
    /// positives that evaluation filters out. Update/deletion retraction
    /// is out of scope, as in the paper.
    pub fn upload_documents<I, S>(&mut self, docs: I) -> UploadReport
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        let before = self.engine.world.snapshot();
        let mut t = self.engine.now();
        let mut n = 0u64;
        let mut bytes = 0u64;
        for (uri, xml) in docs {
            let (uri, xml) = (uri.into(), xml.into());
            let body = xml.into_bytes();
            bytes += body.len() as u64;
            self.engine.world.obs.with_ctx(|c| {
                c.phase = Phase::Upload;
                c.doc = Some(uri.as_str().into());
                c.actor = Some(ActorTag {
                    kind: "frontend",
                    instance: 0,
                });
            });
            // Hash the content once, here; every later cache probe for
            // this URI compares against the recorded hash instead of
            // re-hashing megabytes of XML per loader step.
            self.cache.note_upload(&uri, &body);
            // Re-uploading an existing URI replaces the object: account
            // for the replaced bytes and keep the URI listed once.
            let replaced = self.engine.world.s3.object_size(DOC_BUCKET, &uri);
            t = frontend_put_object(
                &mut self.engine.world.s3,
                &self.cfg.retry,
                t,
                DOC_BUCKET,
                &uri,
                body,
            );
            t = frontend_send(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t,
                LOADER_QUEUE,
                uri.clone(),
            );
            match replaced {
                Some(old) => self.corpus_bytes -= old,
                None => self.doc_uris.push(uri),
            }
            n += 1;
        }
        self.corpus_bytes += bytes;
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        let cost = self.engine.world.cost_since(&before).total();
        UploadReport {
            documents: n,
            bytes,
            cost,
        }
    }

    /// Parses and extracts every stored document across all host cores,
    /// filling the host cache so the engine's loader steps become cache
    /// hits. Wall-clock only: reads the file store without billing and
    /// advances no virtual time — the engine still charges each core the
    /// full parse + extract cost at its own virtual arrival time.
    /// Idempotent; called automatically by [`Warehouse::build_index`] and
    /// the query paths when `cfg.host.prewarm` is set.
    pub fn prewarm(&self) -> PrewarmReport {
        let docs = self.engine.world.s3.peek_all(DOC_BUCKET);
        let combos = [(self.cfg.strategy, self.cfg.extract)];
        amada_index::parallel::prewarm(&self.cache, &docs, &combos)
    }

    /// Like [`Warehouse::prewarm`] but parses only — what the query path
    /// needs (it evaluates patterns on parsed trees, never extracts).
    pub fn prewarm_parses(&self) -> PrewarmReport {
        let docs = self.engine.world.s3.peek_all(DOC_BUCKET);
        amada_index::parallel::prewarm(&self.cache, &docs, &[])
    }

    /// Host-cache effectiveness counters (wall-clock diagnostics).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs the indexing module over everything currently queued
    /// (steps 4–6), with the configured loader pool.
    pub fn build_index(&mut self) -> IndexBuildReport {
        if self.cfg.host.prewarm {
            self.prewarm();
        }
        let before = self.engine.world.snapshot();
        let start = self.engine.now();
        let totals = Rc::new(RefCell::new(LoaderTotals::default()));
        self.engine.world.sqs.close(LOADER_QUEUE);
        let first_instance = self.engine.world.ec2.records().len();
        let cores = LoaderCore::pool(
            &self.cfg,
            &mut self.engine.world,
            start,
            &totals,
            &self.cache,
        );
        for core in cores {
            self.engine.spawn(Box::new(core), start);
        }
        let end = self.engine.run();
        // Instances are released when the whole indexing phase completes
        // (the paper's `VM$_h × t_idx` bills the pool for the phase).
        for i in first_instance..self.engine.world.ec2.records().len() {
            self.engine
                .world
                .ec2
                .extend(amada_cloud::InstanceId(i), end);
        }
        self.engine.world.sqs.open(LOADER_QUEUE);
        let totals = Rc::try_unwrap(totals)
            .expect("actors are gone")
            .into_inner();
        let cost = self.engine.world.cost_since(&before);
        let (throttled_requests, lease_renewals, redelivered) =
            fault_deltas(&self.engine.world, &before);
        let kv_after = self.engine.world.kv.stats();
        // Averages are per *core* (the unit that actually works): the pool
        // has count × cores workers whose busy times sum into the totals.
        let workers =
            (self.cfg.loader_pool.count * self.cfg.loader_pool.itype.cores()).max(1) as u64;
        let per_instance = |sum_micros: u64| SimDuration::from_micros(sum_micros / workers);
        IndexBuildReport {
            strategy: self.cfg.strategy,
            instances: self.cfg.loader_pool.count,
            itype: self.cfg.loader_pool.itype,
            documents: totals.docs,
            corpus_bytes: self.corpus_bytes,
            entries: totals.entries,
            items: totals.items,
            entry_bytes: totals.entry_bytes,
            avg_extraction_time: per_instance(totals.extraction_micros),
            avg_upload_time: per_instance(totals.upload_micros),
            total_time: end - start,
            cost,
            index_raw_bytes: kv_after.raw_bytes - before.kv.raw_bytes,
            index_overhead_bytes: kv_after.overhead_bytes - before.kv.overhead_bytes,
            storage: self.engine.world.storage_cost_per_month(),
            throttled_requests,
            lease_renewals,
            redelivered,
        }
    }

    /// Runs one query through the full pipeline (steps 7–18) on the
    /// configured query pool, using the index.
    pub fn run_query(&mut self, query: &Query) -> CostedQuery {
        self.run_one(query, Some(self.cfg.strategy))
    }

    /// Runs one query without any index: the processor fetches and
    /// evaluates the entire corpus (the paper's no-index baseline).
    pub fn run_query_no_index(&mut self, query: &Query) -> CostedQuery {
        self.run_one(query, None)
    }

    fn run_one(&mut self, query: &Query, strategy: Option<amada_index::Strategy>) -> CostedQuery {
        let before = self.engine.world.snapshot();
        let report = self.run_batch(std::slice::from_ref(query), 1, strategy);
        let mut executions = report.executions;
        assert_eq!(executions.len(), 1, "one query in, one execution out");
        CostedQuery {
            exec: executions.remove(0),
            cost: self.engine.world.cost_since(&before),
        }
    }

    /// Runs a workload of queries, each repeated `repeats` times
    /// (sent in round-robin order: q1…qn, q1…qn, …), across the query
    /// pool. Used for the paper's Figure 10 scaling experiment.
    pub fn run_workload(&mut self, queries: &[Query], repeats: usize) -> WorkloadReport {
        self.run_batch(queries, repeats, Some(self.cfg.strategy))
    }

    /// Like [`Warehouse::run_workload`] but without any index.
    pub fn run_workload_no_index(&mut self, queries: &[Query], repeats: usize) -> WorkloadReport {
        self.run_batch(queries, repeats, None)
    }

    fn run_batch(
        &mut self,
        queries: &[Query],
        repeats: usize,
        strategy: Option<amada_index::Strategy>,
    ) -> WorkloadReport {
        if self.cfg.host.prewarm {
            // Queries parse candidate documents; after an indexed build
            // these are already cached, and the no-index baseline (which
            // fetches the whole corpus) benefits the most.
            self.prewarm_parses();
        }
        let before = self.engine.world.snapshot();
        let start = self.engine.now();
        // Front end, steps 7–8: enqueue the query messages. The sends are
        // tagged per query so Figure-12-style attribution charges each
        // query its own request.
        let mut t = start;
        for r in 0..repeats {
            for (i, q) in queries.iter().enumerate() {
                let name = q
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("query-{}", r * queries.len() + i));
                self.engine.world.obs.with_ctx(|c| {
                    c.phase = Phase::Query;
                    c.query = Some(name.as_str().into());
                    c.actor = Some(ActorTag {
                        kind: "frontend",
                        instance: 0,
                    });
                });
                t = frontend_send(
                    &mut self.engine.world.sqs,
                    &self.cfg.retry,
                    t,
                    QUERY_QUEUE,
                    format!("{name}\n{q}"),
                );
            }
        }
        self.engine.world.sqs.close(QUERY_QUEUE);
        // Steps 9–15: the query-processor pool.
        let executions: Rc<RefCell<Vec<QueryExecution>>> = Rc::new(RefCell::new(Vec::new()));
        let first_instance = self.engine.world.ec2.records().len();
        for core in QueryCore::pool(
            &self.cfg,
            &mut self.engine.world,
            start,
            strategy,
            &executions,
            &self.cache,
        ) {
            self.engine.spawn(Box::new(core), start);
        }
        let end = self.engine.run();
        for i in first_instance..self.engine.world.ec2.records().len() {
            self.engine
                .world
                .ec2
                .extend(amada_cloud::InstanceId(i), end);
        }
        self.engine.world.sqs.open(QUERY_QUEUE);
        // Front end, steps 16–18: fetch each response, download the
        // results out of the cloud.
        self.engine.world.obs.with_ctx(|c| {
            *c = Default::default();
            c.phase = Phase::Frontend;
            c.actor = Some(ActorTag {
                kind: "frontend",
                instance: 0,
            });
        });
        let mut t = end;
        loop {
            let (msg, t2) = frontend_receive(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t,
                RESPONSE_QUEUE,
                self.cfg.visibility,
            );
            let Some(msg) = msg else { break };
            let (data, t3) = frontend_get_object(
                &mut self.engine.world.s3,
                &self.cfg.retry,
                t2,
                RESULT_BUCKET,
                &msg.body,
            );
            self.engine.world.egress(t3, data.len() as u64);
            t = frontend_delete(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t3,
                RESPONSE_QUEUE,
                msg.id,
            );
        }
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        let executions = Rc::try_unwrap(executions)
            .expect("actors are gone")
            .into_inner();
        let (throttled_requests, lease_renewals, redelivered) =
            fault_deltas(&self.engine.world, &before);
        WorkloadReport {
            executions,
            total_time: end - start,
            cost: self.engine.world.cost_since(&before),
            throttled_requests,
            lease_renewals,
            redelivered,
        }
    }

    /// Monthly storage charges for the current warehouse contents
    /// (`st$_m(D, I)`).
    pub fn storage_cost(&self) -> StorageCost {
        self.engine.world.storage_cost_per_month()
    }

    /// Charges accumulated since provisioning.
    pub fn total_cost(&self) -> CostReport {
        self.engine.world.cost_report()
    }

    /// Every span recorded so far (empty unless `cfg.host.record` was
    /// set when the warehouse was provisioned).
    pub fn spans(&self) -> Vec<Span> {
        self.engine.world.obs.spans()
    }

    /// Test access to the engine (fault injection, custom actors).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Shared host-side parse cache.
    pub fn cache(&self) -> &DocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_index::Strategy;
    use amada_xmark::{generate_corpus, workload_query, CorpusConfig};

    fn small_corpus() -> Vec<(String, String)> {
        let cfg = CorpusConfig {
            num_documents: 30,
            target_doc_bytes: 1200,
            ..Default::default()
        };
        generate_corpus(&cfg)
            .into_iter()
            .map(|d| (d.uri, d.xml))
            .collect()
    }

    fn warehouse(strategy: Strategy) -> Warehouse {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
        let up = w.upload_documents(small_corpus());
        assert_eq!(up.documents, 30);
        assert!(up.cost > Money::ZERO);
        w
    }

    #[test]
    fn build_index_processes_every_document() {
        let mut w = warehouse(Strategy::Lu);
        let report = w.build_index();
        assert_eq!(report.documents, 30);
        assert!(report.entries > 0);
        assert!(report.total_time > SimDuration::ZERO);
        assert!(report.cost.total() > Money::ZERO);
        assert!(report.index_raw_bytes > 0);
        // The loader queue is drained.
        assert!(w.world().sqs.is_empty(LOADER_QUEUE).unwrap());
    }

    #[test]
    fn indexed_query_round_trip() {
        let mut w = warehouse(Strategy::Lup);
        w.build_index();
        let q = workload_query("q2").unwrap();
        let run = w.run_query(&q);
        assert_eq!(run.exec.name, "q2");
        assert!(!run.exec.results.is_empty());
        assert!(run.exec.docs_from_index > 0);
        assert!(run.exec.docs_fetched <= 30);
        assert!(run.exec.response_time > SimDuration::ZERO);
        assert!(run.cost.total() > Money::ZERO);
        // Results were egressed.
        assert!(w.world().egress_bytes > 0);
    }

    #[test]
    fn indexed_results_equal_no_index_results() {
        for strategy in Strategy::ALL {
            let mut w = warehouse(strategy);
            w.build_index();
            for qname in ["q1", "q3", "q4", "q8"] {
                let q = workload_query(qname).unwrap();
                let with = w.run_query(&q);
                let without = w.run_query_no_index(&q);
                let mut a = with.exec.results.clone();
                let mut b = without.exec.results.clone();
                a.sort_by(|x, y| x.columns.cmp(&y.columns));
                b.sort_by(|x, y| x.columns.cmp(&y.columns));
                assert_eq!(a, b, "{qname} under {strategy}");
            }
        }
    }

    #[test]
    fn index_reduces_time_and_cost() {
        let mut w = warehouse(Strategy::Lup);
        w.build_index();
        let q = workload_query("q1").unwrap();
        let with = w.run_query(&q);
        let without = w.run_query_no_index(&q);
        assert!(
            with.exec.response_time < without.exec.response_time,
            "indexed {} vs baseline {}",
            with.exec.response_time,
            without.exec.response_time
        );
        assert!(with.cost.total() < without.cost.total());
        assert!(with.exec.docs_fetched < without.exec.docs_fetched);
    }

    #[test]
    fn workload_runs_on_multiple_instances() {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
        cfg.query_pool.count = 4;
        let mut w = Warehouse::new(cfg);
        w.upload_documents(small_corpus());
        w.build_index();
        let queries: Vec<_> = ["q2", "q4", "q6"]
            .iter()
            .map(|n| workload_query(n).unwrap())
            .collect();
        let report = w.run_workload(&queries, 2);
        assert_eq!(report.executions.len(), 6);
        assert!(report.total_time > SimDuration::ZERO);
    }

    #[test]
    fn more_instances_reduce_workload_time() {
        let run = |instances: usize| {
            let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
            cfg.query_pool.count = instances;
            let mut w = Warehouse::new(cfg);
            w.upload_documents(small_corpus());
            w.build_index();
            let queries: Vec<_> = ["q2", "q5", "q6", "q7"]
                .iter()
                .map(|n| workload_query(n).unwrap())
                .collect();
            w.run_workload(&queries, 4).total_time
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.micros() * 2 < one.micros(),
            "4 instances {four} vs 1 instance {one}"
        );
    }

    #[test]
    fn incremental_uploads_extend_the_index() {
        let mut w = warehouse(Strategy::Lui);
        w.build_index();
        let q = workload_query("q6").unwrap();
        let before = w.run_query(&q).exec.results.len();
        // Add 10 more documents and re-index incrementally.
        let cfg = CorpusConfig {
            num_documents: 40,
            target_doc_bytes: 1200,
            ..Default::default()
        };
        let extra: Vec<(String, String)> = generate_corpus(&cfg)
            .into_iter()
            .skip(30)
            .map(|d| (d.uri, d.xml))
            .collect();
        w.upload_documents(extra);
        let r = w.build_index();
        assert_eq!(r.documents, 10);
        let after = w.run_query(&q).exec.results.len();
        assert!(after >= before);
    }
}
