//! The warehouse façade: the full architecture of the paper's Figure 1,
//! steps 1–18, over the simulated cloud.

use crate::actors::{
    DocCache, LoaderCore, LoaderTotals, QueryCore, RetractionRegistry, LOADER_RNG_TAG,
    QUERY_RNG_TAG,
};
use crate::autoscale::{
    ArrivalProcess, AutoscaleController, BurstSender, DrainSignal, OpenLoopSender, ScaleEvents,
};
use crate::config::{
    AutoscalePolicy, WarehouseConfig, DEAD_LETTER_QUEUE, DOC_BUCKET, LOADER_QUEUE, QUERY_QUEUE,
    RESPONSE_QUEUE, RESULT_BUCKET,
};
use crate::metrics::{CostedQuery, IndexBuildReport, QueryExecution, WorkloadReport};
use crate::retry::{
    frontend_batch_delete, frontend_delete, frontend_delete_object, frontend_get_object,
    frontend_put_object, frontend_receive, frontend_send,
};
use amada_cloud::{
    ActorTag, CostReport, CostSnapshot, Engine, Money, Phase, ServiceKind, SimDuration, SimTime,
    Span, StorageCost, World,
};
use amada_index::{
    entry_item_keys, partition_of, retarget_entries, CacheStats, ExtractCache, ItemKey, MixedPlan,
    PrewarmReport, Strategy,
};
use amada_pattern::Query;
use amada_rng::StdRng;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// A cloud-hosted XML warehouse (one simulated deployment).
pub struct Warehouse {
    cfg: WarehouseConfig,
    engine: Engine,
    cache: DocCache,
    doc_uris: Vec<String>,
    corpus_bytes: u64,
    /// The front end's span lane (one logical front-end machine).
    frontend: ActorTag,
    /// Autoscale controllers spawned so far (numbers their span lanes).
    controllers: usize,
    /// Item keys of replaced document versions awaiting index
    /// retraction, shared with the loader cores (see
    /// [`RetractionRegistry`]).
    retractions: RetractionRegistry,
    /// The per-partition routing plan shared with the module cores
    /// (mirrors `cfg.mixed_plan`; `None` keeps the flat layout).
    plan: Option<Rc<MixedPlan>>,
    /// Recorded-span index of the last [`Warehouse::readvise`]: each
    /// cadence step advises from the traffic observed *since the
    /// previous one* (the observation window), so a drifting workload
    /// re-plans from what changed, not a stale average.
    advise_span_base: usize,
    /// URIs with a loader message enqueued but not yet processed (a
    /// pending rebuild). [`Warehouse::apply_plan`] piggybacks placement
    /// changes on these: the loader reads the routing plan at processing
    /// time, so a document already awaiting a rebuild migrates without a
    /// second message or a second key sweep — which makes re-planning a
    /// churning partition nearly free when timed with its churn.
    pending_load: BTreeSet<String>,
}

/// Outcome of one [`Warehouse::readvise`] cadence step.
#[derive(Debug, Clone)]
pub struct Readvice {
    /// The adaptive advisor's full output (chosen plan, ranked
    /// comparison table, budget verdict).
    pub advice: crate::adaptive::AdaptiveAdvice,
    /// Documents re-enqueued to migrate to the chosen plan (0 when the
    /// recommendation confirms the current placement).
    pub migrated: u64,
}

/// How a workload run releases its query messages.
enum SendPlan<'a> {
    /// All messages enqueued before the engine starts (the paper's
    /// batch experiments).
    Inline,
    /// Timed bursts released inside the engine by a [`BurstSender`].
    Bursts { bursts: usize, gap: SimDuration },
    /// A seeded open-loop arrival schedule released by an
    /// [`OpenLoopSender`].
    OpenLoop(&'a ArrivalProcess),
}

/// Fault-visibility deltas since a snapshot: (throttled billed requests
/// across all services, lease renewals, redeliveries).
fn fault_deltas(world: &World, before: &CostSnapshot) -> (u64, u64, u64) {
    let s3 = world.s3.stats();
    let kv = world.kv.stats();
    let sqs = world.sqs.stats();
    (
        (s3.throttled - before.s3.throttled)
            + (kv.throttled - before.kv.throttled)
            + (sqs.throttled - before.sqs.throttled),
        sqs.renewals - before.sqs.renewals,
        sqs.redelivered - before.sqs.redelivered,
    )
}

/// Outcome of uploading a batch of documents (front-end steps 1–3).
#[derive(Debug, Clone, Copy)]
pub struct UploadReport {
    /// Documents uploaded.
    pub documents: u64,
    /// Bytes uploaded.
    pub bytes: u64,
    /// Charges for the upload (the paper's `ud$(D)`).
    pub cost: Money,
}

/// Outcome of deleting documents (front-end churn maintenance).
#[derive(Debug, Clone, Copy)]
pub struct DeleteReport {
    /// Documents actually removed (URIs that were stored).
    pub documents: u64,
    /// Stored bytes freed.
    pub bytes: u64,
    /// Index item keys retracted (including keys of replaced versions
    /// that were still awaiting retraction).
    pub index_items_removed: u64,
    /// Charges for the deletion: S3 DELETEs are free, so this is the
    /// index-store write capacity the retraction consumed.
    pub cost: Money,
}

impl Warehouse {
    /// Provisions a warehouse: buckets, queues and index tables.
    pub fn new(cfg: WarehouseConfig) -> Warehouse {
        let mut world = World::new(cfg.backend.clone());
        if cfg.kv_tuning.is_active() {
            let inner =
                std::mem::replace(&mut world.kv, Box::new(amada_cloud::DynamoDb::default()));
            world.kv = Box::new(amada_cloud::TunedKvStore::new(inner, cfg.kv_tuning));
        }
        world.prices = cfg.prices.clone();
        world.work = cfg.work.clone();
        world.ec2.set_granularity(cfg.ec2_billing);
        world.s3.create_bucket(DOC_BUCKET);
        world.s3.create_bucket(RESULT_BUCKET);
        world.sqs.create_queue(LOADER_QUEUE);
        world.sqs.create_queue(QUERY_QUEUE);
        world.sqs.create_queue(RESPONSE_QUEUE);
        world.sqs.create_queue(DEAD_LETTER_QUEUE);
        if let Some(plan) = &cfg.shard_plan {
            world.kv.set_shard_plan(plan.clone());
        }
        match &cfg.mixed_plan {
            // Named partitions' tables are known up-front; unnamed ones
            // are discovered at write time and ensured on demand by the
            // loader cores.
            Some(plan) => {
                for table in plan.known_tables() {
                    world.kv.ensure_table(table);
                }
            }
            None => {
                for table in cfg.strategy.tables() {
                    world.kv.ensure_table(table);
                }
            }
        }
        world.install_faults(&cfg.faults);
        if cfg.host.record {
            world.enable_recording();
        }
        let plan = cfg.mixed_plan.clone().map(Rc::new);
        Warehouse {
            cfg,
            engine: Engine::new(world),
            cache: ExtractCache::shared(),
            doc_uris: Vec::new(),
            corpus_bytes: 0,
            frontend: ActorTag {
                kind: "frontend",
                instance: 0,
            },
            controllers: 0,
            retractions: Rc::default(),
            plan,
            advise_span_base: 0,
            pending_load: BTreeSet::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WarehouseConfig {
        &self.cfg
    }

    /// Reconfigures the query-processor pool (the experiments vary
    /// instance count and flavor between runs; the index is unaffected).
    pub fn set_query_pool(&mut self, pool: crate::config::Pool) {
        self.cfg.query_pool = pool;
    }

    /// Re-partitions the index store for subsequent runs: `Some(plan)`
    /// gives every table per-shard provisioned capacity routed by hash
    /// key, `None` restores the single table-level queue. Contents,
    /// answers and billed units are unaffected — only queueing changes.
    pub fn set_shard_plan(&mut self, plan: Option<amada_cloud::ShardPlan>) {
        self.engine
            .world
            .kv
            .set_shard_plan(plan.clone().unwrap_or_else(amada_cloud::ShardPlan::single));
        self.cfg.shard_plan = plan;
    }

    /// Switches queue-depth autoscaling of the query-processor pool on
    /// (`Some(policy)`) or off (`None`) for subsequent workload runs.
    pub fn set_query_autoscale(&mut self, policy: Option<AutoscalePolicy>) {
        self.cfg.query_autoscale = policy;
    }

    /// Switches queue-depth autoscaling of the loader pool for subsequent
    /// [`Warehouse::build_index`] calls.
    pub fn set_loader_autoscale(&mut self, policy: Option<AutoscalePolicy>) {
        self.cfg.loader_autoscale = policy;
    }

    /// The simulated cloud (for inspection and cost reporting).
    pub fn world(&self) -> &World {
        &self.engine.world
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// URIs of all uploaded documents.
    pub fn documents(&self) -> &[String] {
        &self.doc_uris
    }

    /// The partitions currently holding live documents — the front end's
    /// own catalog, derived from its upload records (no cloud call). A
    /// fully indexed mixed plan's query processors fan their look-ups out
    /// over this instead of paying the billed per-query corpus LIST.
    fn partition_catalog(&self) -> Rc<std::collections::BTreeSet<String>> {
        Rc::new(
            self.doc_uris
                .iter()
                .map(|u| partition_of(u).to_string())
                .collect(),
        )
    }

    /// Total corpus size in bytes (`s(D)`).
    pub fn corpus_bytes(&self) -> u64 {
        self.corpus_bytes
    }

    /// Front end, steps 1–3: store each document in the file store and
    /// enqueue a loading request. May be called repeatedly — the warehouse
    /// is incremental; follow each batch with [`Warehouse::build_index`].
    ///
    /// Re-uploading an existing URI replaces the stored document and
    /// re-indexes it (deterministic range keys make that idempotent per
    /// key). Index entries for keys that no longer occur in the new
    /// version *are* retracted: the front end records the replaced
    /// version's item keys before overwriting the object, and the loader
    /// deletes the stale ones right after writing the new version — so a
    /// shrunk re-upload stops billing look-ups and document GETs for its
    /// removed keys as soon as the next [`Warehouse::build_index`]
    /// completes. See also [`Warehouse::delete_documents`].
    pub fn upload_documents<I, S>(&mut self, docs: I) -> UploadReport
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        let before = self.engine.world.snapshot();
        let mut t = self.engine.now();
        let mut n = 0u64;
        let mut bytes = 0u64;
        for (uri, xml) in docs {
            let (uri, xml) = (uri.into(), xml.into());
            let body = xml.into_bytes();
            bytes += body.len() as u64;
            let frontend = self.frontend;
            self.engine.world.obs.with_ctx(|c| {
                c.phase = Phase::Upload;
                c.query = None;
                c.doc = Some(uri.as_str().into());
                c.actor = Some(frontend);
            });
            // Re-uploading an existing URI replaces the object: record
            // the replaced version's item keys for retraction *before*
            // the overwrite destroys the only copy of its bytes (the
            // registry unions across repeated replaces, so intermediate
            // versions cannot leak entries), account for the replaced
            // bytes, and keep the URI listed once. Must happen before
            // `note_upload` rebinds the cache to the new content hash.
            let replaced = self.engine.world.s3.peek(DOC_BUCKET, &uri);
            if let Some(old) = &replaced {
                if **old != body {
                    let keys = self.item_keys_of(&uri, old);
                    self.retractions
                        .borrow_mut()
                        .entry(uri.clone())
                        .or_default()
                        .extend(keys);
                }
            }
            // Hash the content once, here; every later cache probe for
            // this URI compares against the recorded hash instead of
            // re-hashing megabytes of XML per loader step.
            self.cache.note_upload(&uri, &body);
            t = frontend_put_object(
                &mut self.engine.world.s3,
                &self.cfg.retry,
                t,
                DOC_BUCKET,
                &uri,
                body,
            );
            t = frontend_send(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t,
                LOADER_QUEUE,
                uri.clone(),
            );
            self.pending_load.insert(uri.clone());
            match replaced {
                Some(old) => self.corpus_bytes -= old.len() as u64,
                None => self.doc_uris.push(uri),
            }
            n += 1;
        }
        self.corpus_bytes += bytes;
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        let cost = self.engine.world.cost_since(&before).total();
        UploadReport {
            documents: n,
            bytes,
            cost,
        }
    }

    /// The index item keys the current configuration derives for this
    /// document content (host-side replay of the loader's deterministic
    /// encoding — no requests, no virtual time).
    fn item_keys_of(&self, uri: &str, bytes: &[u8]) -> Vec<ItemKey> {
        self.item_keys_under(self.cfg.mixed_plan.as_ref(), uri, bytes)
    }

    /// Like [`Warehouse::item_keys_of`] but under an explicit routing
    /// plan (`None` = the flat configured strategy into the global
    /// tables) — what [`Warehouse::apply_plan`] replays to find the *old*
    /// placement's keys before switching.
    fn item_keys_under(&self, plan: Option<&MixedPlan>, uri: &str, bytes: &[u8]) -> Vec<ItemKey> {
        let strategy = match plan {
            Some(p) => match p.strategy_for_uri(uri) {
                Some(s) => s,
                // An unindexed partition holds nothing to replay.
                None => return Vec::new(),
            },
            None => self.cfg.strategy,
        };
        let (_doc, entries) = self.cache.extracted(uri, bytes, strategy, self.cfg.extract);
        let profile = self.engine.world.kv.profile();
        if plan.is_some() {
            let mut routed = (*entries).clone();
            retarget_entries(&mut routed, partition_of(uri));
            entry_item_keys(&routed, &profile, uri)
        } else {
            entry_item_keys(&entries, &profile, uri)
        }
    }

    /// Front end, churn maintenance: removes documents from the file
    /// store and retracts their index entries. The S3 DELETEs are free
    /// requests (real S3 bills nothing for them); the index retraction
    /// consumes write capacity like any other delete. Unknown URIs are
    /// skipped. Retraction covers the current version's keys *plus* any
    /// keys of replaced versions still awaiting retraction, so deleting a
    /// document is safe at any point of the upload → build cycle — a
    /// loader message that later finds the object gone simply commits
    /// (the front end already cleaned the index).
    pub fn delete_documents<I, S>(&mut self, uris: I) -> DeleteReport
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let before = self.engine.world.snapshot();
        let mut t = self.engine.now();
        let mut n = 0u64;
        let mut bytes = 0u64;
        let mut removed = 0u64;
        for uri in uris {
            let uri = uri.into();
            let frontend = self.frontend;
            self.engine.world.obs.with_ctx(|c| {
                c.phase = Phase::Upload;
                c.query = None;
                c.doc = Some(uri.as_str().into());
                c.actor = Some(frontend);
            });
            // Everything any version of this document may still hold in
            // the index: pending retractions from earlier replaces, plus
            // the stored version's keys.
            let mut keys: BTreeSet<ItemKey> = self
                .retractions
                .borrow_mut()
                .remove(&uri)
                .unwrap_or_default();
            if let Some(old) = self.engine.world.s3.peek(DOC_BUCKET, &uri) {
                keys.extend(self.item_keys_of(&uri, &old));
                bytes += old.len() as u64;
                self.corpus_bytes -= old.len() as u64;
                self.doc_uris.retain(|u| u != &uri);
                n += 1;
                t = frontend_delete_object(
                    &mut self.engine.world.s3,
                    &self.cfg.retry,
                    t,
                    DOC_BUCKET,
                    &uri,
                );
            }
            removed += keys.len() as u64;
            let limit = self.engine.world.kv.profile().batch_put_limit;
            let mut per_table: BTreeMap<&'static str, Vec<(String, String)>> = BTreeMap::new();
            for (table, hash, range) in keys {
                per_table.entry(table).or_default().push((hash, range));
            }
            for (table, table_keys) in per_table {
                self.engine.world.kv.ensure_table(table);
                for chunk in table_keys.chunks(limit) {
                    t = frontend_batch_delete(
                        self.engine.world.kv.as_mut(),
                        &self.cfg.retry,
                        t,
                        table,
                        chunk,
                    );
                }
            }
        }
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        DeleteReport {
            documents: n,
            bytes,
            index_items_removed: removed,
            cost: self.engine.world.cost_since(&before).total(),
        }
    }

    /// Front end, plan maintenance: switches the warehouse to a new
    /// per-partition routing plan (`None` restores the flat configured
    /// strategy) *incrementally*. Every stored document whose placement —
    /// effective strategy or partition tables — changes has its current
    /// placement's item keys recorded in the retraction registry and its
    /// loading message re-enqueued; the next [`Warehouse::build_index`]
    /// rewrites those documents under the new plan and then deletes the
    /// old entries (write-new-then-delete-stale, the exact machinery
    /// churn replaces use, so a crash mid-migration retries idempotently
    /// on redelivery). Documents whose placement is unchanged are not
    /// touched, re-sent or re-billed; documents that already have a
    /// rebuild pending (an unprocessed loader message — churn, typically)
    /// piggyback on it, since the loader reads the plan at processing
    /// time. Returns the number of documents migrating (piggybacked ones
    /// included).
    pub fn apply_plan(&mut self, new_plan: Option<MixedPlan>) -> u64 {
        let flat = self.cfg.strategy;
        // A URI's placement: (strategy, partition the tables belong to).
        // Without a plan everything lives in the root partition's global
        // tables; the root partition of a plan is physically identical.
        fn placement(
            plan: Option<&MixedPlan>,
            flat: Strategy,
            uri: &str,
        ) -> Option<(Strategy, String)> {
            match plan {
                Some(p) => p
                    .strategy_for_uri(uri)
                    .map(|s| (s, partition_of(uri).to_string())),
                None => Some((flat, String::new())),
            }
        }
        let old_plan = self.cfg.mixed_plan.clone();
        let mut migrated = 0u64;
        let mut t = self.engine.now();
        let uris: Vec<String> = self.doc_uris.clone();
        for uri in uris {
            if placement(old_plan.as_ref(), flat, &uri) == placement(new_plan.as_ref(), flat, &uri)
            {
                continue;
            }
            let Some(bytes) = self.engine.world.s3.peek(DOC_BUCKET, &uri) else {
                continue;
            };
            if self.pending_load.contains(&uri) {
                // A rebuild is already queued (churn, typically): the
                // loader reads the routing plan at processing time, so the
                // pending message rebuilds under the *new* placement — no
                // second message needed. Stale keys: whoever enqueued the
                // pending rebuild recorded the replaced version's exact
                // key set; when the registry holds nothing the stored
                // entries match the current bytes, so replaying them under
                // the old placement retracts precisely what exists.
                if !self.retractions.borrow().contains_key(&uri) {
                    let keys = self.item_keys_under(old_plan.as_ref(), &uri, &bytes);
                    if !keys.is_empty() {
                        self.retractions
                            .borrow_mut()
                            .entry(uri.clone())
                            .or_default()
                            .extend(keys);
                    }
                }
                migrated += 1;
                continue;
            }
            // Record the old placement's keys *before* the switch makes
            // them unreachable; the registry unions with any retraction
            // already pending for this URI.
            let keys = self.item_keys_under(old_plan.as_ref(), &uri, &bytes);
            if !keys.is_empty() {
                self.retractions
                    .borrow_mut()
                    .entry(uri.clone())
                    .or_default()
                    .extend(keys);
            }
            let frontend = self.frontend;
            self.engine.world.obs.with_ctx(|c| {
                c.phase = Phase::Build;
                c.query = None;
                c.doc = Some(uri.as_str().into());
                c.actor = Some(frontend);
            });
            t = frontend_send(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t,
                LOADER_QUEUE,
                uri.clone(),
            );
            migrated += 1;
        }
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        if let Some(p) = &new_plan {
            for table in p.known_tables() {
                self.engine.world.kv.ensure_table(table);
            }
        }
        self.cfg.mixed_plan = new_plan;
        self.plan = self.cfg.mixed_plan.clone().map(Rc::new);
        migrated
    }

    /// The routing plan in force (`None` = the flat configured strategy).
    pub fn mixed_plan(&self) -> Option<&MixedPlan> {
        self.cfg.mixed_plan.as_ref()
    }

    /// Front end, adaptive switching: re-advises from **live
    /// attribution** and migrates to the recommendation incrementally —
    /// the cadence step of the adaptive advisor (call it periodically;
    /// each call is host-side analysis plus only the migration's own
    /// billed writes).
    ///
    /// The observed workload comes from the warehouse's recorded spans
    /// ([`amada_obs::Attribution::query_families`] collapses open-loop
    /// arrival names onto their base query), so `cfg.host.record` must be
    /// on for traffic to register — with recording off the advisor sees a
    /// scan-only future and honestly recommends not indexing. Each call
    /// reads only the spans recorded *since the previous call* (the
    /// observation window), so `horizon.expected_runs` means "windows
    /// like the one just observed" and a drifting workload re-plans from
    /// what changed. The sample is the live corpus itself (host-side
    /// peek, free). The chosen plan is applied via
    /// [`Warehouse::apply_plan`]: only documents whose placement changes
    /// are re-enqueued, so a re-advise that confirms the current plan
    /// migrates nothing and costs nothing.
    pub fn readvise(
        &mut self,
        catalog: &[Query],
        churn: &std::collections::BTreeMap<String, u64>,
        horizon: &crate::adaptive::Horizon,
    ) -> Readvice {
        let spans = self.spans();
        let base = self.advise_span_base.min(spans.len());
        self.advise_span_base = spans.len();
        let attr = amada_obs::Attribution::attribute(&spans[base..]);
        let families = crate::adaptive::observed_families(&attr, catalog);
        let sample: Vec<(String, String)> = self
            .engine
            .world
            .s3
            .peek_all(DOC_BUCKET)
            .into_iter()
            .map(|(uri, bytes)| {
                let xml = String::from_utf8(bytes.as_ref().clone())
                    .expect("stored documents are UTF-8 XML");
                (uri, xml)
            })
            .collect();
        let advice =
            crate::adaptive::advise_adaptive(&sample, &families, churn, horizon, &self.cfg);
        let migrated = self.apply_plan(Some(advice.chosen.plan.clone()));
        Readvice { advice, migrated }
    }

    /// Parses and extracts every stored document across all host cores,
    /// filling the host cache so the engine's loader steps become cache
    /// hits. Wall-clock only: reads the file store without billing and
    /// advances no virtual time — the engine still charges each core the
    /// full parse + extract cost at its own virtual arrival time.
    /// Idempotent; called automatically by [`Warehouse::build_index`] and
    /// the query paths when `cfg.host.prewarm` is set.
    pub fn prewarm(&self) -> PrewarmReport {
        let docs = self.engine.world.s3.peek_all(DOC_BUCKET);
        let combos: Vec<(Strategy, amada_index::ExtractOptions)> = match &self.cfg.mixed_plan {
            Some(plan) => plan
                .indexed_strategies()
                .into_iter()
                .map(|s| (s, self.cfg.extract))
                .collect(),
            None => vec![(self.cfg.strategy, self.cfg.extract)],
        };
        amada_index::parallel::prewarm(&self.cache, &docs, &combos)
    }

    /// Like [`Warehouse::prewarm`] but parses only — what the query path
    /// needs (it evaluates patterns on parsed trees, never extracts).
    pub fn prewarm_parses(&self) -> PrewarmReport {
        let docs = self.engine.world.s3.peek_all(DOC_BUCKET);
        amada_index::parallel::prewarm(&self.cache, &docs, &[])
    }

    /// Host-cache effectiveness counters (wall-clock diagnostics).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A [`crate::autoscale::Launcher`] for loader instances: launches
    /// the instance at the decision time, records the boot as a span on
    /// the instance's own lane, and schedules one [`LoaderCore`] per core
    /// at `launch + boot` through the engine's deferred-spawn queue. The
    /// closure owns the core counter, so RNG streams continue the exact
    /// numbering the static pool uses — a `min == max` autoscaled pool
    /// draws the same backoff jitter as a static one.
    fn loader_launcher(
        &self,
        totals: &Rc<RefCell<LoaderTotals>>,
    ) -> crate::autoscale::Launcher<'static> {
        let pool = self.cfg.loader_pool;
        let strategy = self.cfg.strategy;
        let extract = self.cfg.extract;
        let visibility = self.cfg.visibility;
        let poll = self.cfg.poll_interval;
        let retry = self.cfg.retry;
        let seed = self.cfg.faults.seed;
        let totals = totals.clone();
        let cache = self.cache.clone();
        let retractions = self.retractions.clone();
        let plan = self.plan.clone();
        let mut next_core: u64 = 0;
        Box::new(move |world: &mut World, t: SimTime, boot: SimDuration| {
            let id = world.ec2.launch(pool.itype, t);
            if boot > SimDuration::ZERO {
                world.obs.with_ctx(|c| {
                    c.actor = Some(ActorTag {
                        kind: "loader",
                        instance: id.0,
                    });
                });
                world
                    .obs
                    .record(|_, ctx| Span::new(ServiceKind::Actor, "boot", t, t + boot, ctx));
            }
            let sig = DrainSignal::new(id, pool.itype.cores());
            for _ in 0..pool.itype.cores() {
                let idx = next_core;
                next_core += 1;
                let mut core = LoaderCore::new(
                    id,
                    pool.itype.ecu_per_core(),
                    strategy,
                    extract,
                    totals.clone(),
                    cache.clone(),
                    visibility,
                    poll,
                    retry,
                    seed ^ (LOADER_RNG_TAG + idx),
                );
                core.drain = Some(sig.clone());
                core.retractions = retractions.clone();
                core.plan = plan.clone();
                world.spawn_actor(t + boot, Box::new(core));
            }
            sig
        })
    }

    /// A [`crate::autoscale::Launcher`] for query-processor instances
    /// (one actor per instance, so the drain signal counts one core).
    fn query_launcher(
        &self,
        strategy: Option<amada_index::Strategy>,
        executions: &Rc<RefCell<Vec<QueryExecution>>>,
    ) -> crate::autoscale::Launcher<'static> {
        let pool = self.cfg.query_pool;
        let extract = self.cfg.extract;
        let visibility = self.cfg.visibility;
        let poll = self.cfg.poll_interval;
        let retry = self.cfg.retry;
        let seed = self.cfg.faults.seed;
        let executions = executions.clone();
        let cache = self.cache.clone();
        // The no-index baseline bypasses routing, so the plan rides along
        // only when the pool queries the index at all.
        let plan = strategy.and(self.plan.clone());
        let partitions = self.partition_catalog();
        let mut next: u64 = 0;
        Box::new(move |world: &mut World, t: SimTime, boot: SimDuration| {
            let id = world.ec2.launch(pool.itype, t);
            if boot > SimDuration::ZERO {
                world.obs.with_ctx(|c| {
                    c.actor = Some(ActorTag {
                        kind: "query",
                        instance: id.0,
                    });
                });
                world
                    .obs
                    .record(|_, ctx| Span::new(ServiceKind::Actor, "boot", t, t + boot, ctx));
            }
            let sig = DrainSignal::new(id, 1);
            let i = next;
            next += 1;
            let core = QueryCore {
                instance: id,
                cores: pool.itype.cores(),
                ecu: pool.itype.ecu_per_core(),
                strategy,
                plan: plan.clone(),
                partitions: partitions.clone(),
                opts: extract,
                cache: cache.clone(),
                visibility,
                poll,
                executions: executions.clone(),
                policy: retry,
                rng: StdRng::seed_from_u64(seed ^ (QUERY_RNG_TAG + i)),
                crash_after: None,
                processed: 0,
                attempt: 0,
                drain: Some(sig.clone()),
            };
            world.spawn_actor(t + boot, Box::new(core));
            sig
        })
    }

    /// The autoscaler's span lane for the next controller.
    fn controller_tag(&mut self) -> ActorTag {
        let tag = ActorTag {
            kind: "autoscaler",
            instance: self.controllers,
        };
        self.controllers += 1;
        tag
    }

    /// Runs the indexing module over everything currently queued
    /// (steps 4–6), with the configured loader pool — static, or elastic
    /// when `cfg.loader_autoscale` is set.
    pub fn build_index(&mut self) -> IndexBuildReport {
        if self.cfg.host.prewarm {
            self.prewarm();
        }
        let before = self.engine.world.snapshot();
        let start = self.engine.now();
        let totals = Rc::new(RefCell::new(LoaderTotals::default()));
        self.engine.world.sqs.close(LOADER_QUEUE);
        let first_instance = self.engine.world.ec2.records().len();
        let scale_events: ScaleEvents = Rc::new(RefCell::new(Vec::new()));
        match self.cfg.loader_autoscale {
            None => {
                let cores = LoaderCore::pool(
                    &self.cfg,
                    &mut self.engine.world,
                    start,
                    &totals,
                    &self.cache,
                );
                for mut core in cores {
                    core.retractions = self.retractions.clone();
                    core.plan = self.plan.clone();
                    self.engine.spawn(Box::new(core), start);
                }
            }
            Some(policy) => {
                let tag = self.controller_tag();
                let mut ctrl = AutoscaleController::new(
                    LOADER_QUEUE,
                    policy,
                    Phase::Build,
                    tag,
                    self.cfg.retry,
                    self.loader_launcher(&totals),
                    scale_events.clone(),
                );
                ctrl.provision(&mut self.engine.world, start);
                self.engine
                    .spawn(Box::new(ctrl), start + policy.sample_interval);
            }
        }
        let end = self.engine.run();
        // Instances are released when the whole indexing phase completes
        // (the paper's `VM$_h × t_idx` bills the pool for the phase).
        for i in first_instance..self.engine.world.ec2.records().len() {
            self.engine
                .world
                .ec2
                .extend(amada_cloud::InstanceId(i), end);
        }
        self.engine.world.sqs.open(LOADER_QUEUE);
        // The loader queue is drained: every pending rebuild has been
        // processed under the plan in force.
        self.pending_load.clear();
        let totals = Rc::try_unwrap(totals)
            .expect("actors are gone")
            .into_inner();
        let cost = self.engine.world.cost_since(&before);
        let (throttled_requests, lease_renewals, redelivered) =
            fault_deltas(&self.engine.world, &before);
        let kv_after = self.engine.world.kv.stats();
        // Averages are per core *that did work*: a corpus smaller than
        // the pool leaves cores idle, and dividing by the configured
        // count would understate the per-worker times the paper's
        // Table 4 reports. Round half-up — truncation biased every
        // average down by up to a microsecond.
        let workers = totals.active_cores.max(1);
        let per_core =
            |sum_micros: u64| SimDuration::from_micros((sum_micros + workers / 2) / workers);
        let instances = self.engine.world.ec2.records().len() - first_instance;
        IndexBuildReport {
            strategy: self.cfg.strategy,
            instances,
            itype: self.cfg.loader_pool.itype,
            documents: totals.docs,
            corpus_bytes: self.corpus_bytes,
            entries: totals.entries,
            items: totals.items,
            entry_bytes: totals.entry_bytes,
            avg_extraction_time: per_core(totals.extraction_micros),
            avg_upload_time: per_core(totals.upload_micros),
            retracted_items: totals.retracted_items,
            total_time: end - start,
            cost,
            // Saturating: a churn build that retracts more than it writes
            // shrinks the index, and a negative delta reports as zero.
            index_raw_bytes: kv_after.raw_bytes.saturating_sub(before.kv.raw_bytes),
            index_overhead_bytes: kv_after
                .overhead_bytes
                .saturating_sub(before.kv.overhead_bytes),
            storage: self.engine.world.storage_cost_per_month(),
            throttled_requests,
            lease_renewals,
            redelivered,
            scale_events: Rc::try_unwrap(scale_events)
                .expect("controller is gone")
                .into_inner(),
        }
    }

    /// Runs one query through the full pipeline (steps 7–18) on the
    /// configured query pool, using the index.
    pub fn run_query(&mut self, query: &Query) -> CostedQuery {
        self.run_one(query, Some(self.cfg.strategy))
    }

    /// Runs one query without any index: the processor fetches and
    /// evaluates the entire corpus (the paper's no-index baseline).
    pub fn run_query_no_index(&mut self, query: &Query) -> CostedQuery {
        self.run_one(query, None)
    }

    fn run_one(&mut self, query: &Query, strategy: Option<amada_index::Strategy>) -> CostedQuery {
        let before = self.engine.world.snapshot();
        let report = self.run_batch(std::slice::from_ref(query), 1, strategy, SendPlan::Inline);
        let mut executions = report.executions;
        assert_eq!(executions.len(), 1, "one query in, one execution out");
        CostedQuery {
            exec: executions.remove(0),
            cost: self.engine.world.cost_since(&before),
        }
    }

    /// Runs a workload of queries, each repeated `repeats` times
    /// (sent in round-robin order: q1…qn, q1…qn, …), across the query
    /// pool. Used for the paper's Figure 10 scaling experiment.
    pub fn run_workload(&mut self, queries: &[Query], repeats: usize) -> WorkloadReport {
        self.run_batch(queries, repeats, Some(self.cfg.strategy), SendPlan::Inline)
    }

    /// Like [`Warehouse::run_workload`] but without any index.
    pub fn run_workload_no_index(&mut self, queries: &[Query], repeats: usize) -> WorkloadReport {
        self.run_batch(queries, repeats, None, SendPlan::Inline)
    }

    /// Releases queries open-loop from a seeded [`ArrivalProcess`]: each
    /// arrival Zipf-picks a query and is sent at its scheduled instant
    /// regardless of completions, so backlog under saturation is real.
    /// Arrival names are `{query}#{seq}` — unique per arrival, so
    /// recorded spans give exact per-arrival virtual latencies.
    pub fn run_workload_open_loop(
        &mut self,
        queries: &[Query],
        process: &ArrivalProcess,
    ) -> WorkloadReport {
        self.run_batch(
            queries,
            1,
            Some(self.cfg.strategy),
            SendPlan::OpenLoop(process),
        )
    }

    /// Runs `bursts` copies of the workload, released `gap` apart: each
    /// burst sends all `queries × repeats` messages back-to-back at its
    /// scheduled instant, and the queue closes after the last burst. This
    /// is the bursty-traffic scenario of the `repro scale` experiment — a
    /// static pool idle-polls (billed) through the gaps, an autoscaled
    /// one grows into each burst and drains back to its floor.
    pub fn run_workload_bursts(
        &mut self,
        queries: &[Query],
        repeats: usize,
        bursts: usize,
        gap: SimDuration,
    ) -> WorkloadReport {
        self.run_batch(
            queries,
            repeats,
            Some(self.cfg.strategy),
            SendPlan::Bursts { bursts, gap },
        )
    }

    fn run_batch(
        &mut self,
        queries: &[Query],
        repeats: usize,
        strategy: Option<amada_index::Strategy>,
        plan: SendPlan<'_>,
    ) -> WorkloadReport {
        if self.cfg.host.prewarm {
            // Queries parse candidate documents; after an indexed build
            // these are already cached, and the no-index baseline (which
            // fetches the whole corpus) benefits the most.
            self.prewarm_parses();
        }
        let before = self.engine.world.snapshot();
        let start = self.engine.now();
        // Front end, steps 7–8: enqueue the query messages. The sends are
        // tagged per query so Figure-12-style attribution charges each
        // query its own request.
        let frontend = self.frontend;
        match plan {
            SendPlan::Inline => {
                let mut t = start;
                for r in 0..repeats {
                    for (i, q) in queries.iter().enumerate() {
                        let name = q
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("query-{}", r * queries.len() + i));
                        self.engine.world.obs.with_ctx(|c| {
                            c.phase = Phase::Query;
                            c.query = Some(name.as_str().into());
                            c.doc = None;
                            c.actor = Some(frontend);
                        });
                        t = frontend_send(
                            &mut self.engine.world.sqs,
                            &self.cfg.retry,
                            t,
                            QUERY_QUEUE,
                            format!("{name}\n{q}"),
                        );
                    }
                }
                self.engine.world.sqs.close(QUERY_QUEUE);
            }
            SendPlan::Bursts { bursts, gap } => {
                // The sends happen inside the engine: a BurstSender actor
                // releases each burst at its scheduled instant and closes
                // the queue after the last one.
                let mut schedule = VecDeque::new();
                for b in 0..bursts {
                    let at = start + SimDuration::from_micros(gap.micros() * b as u64);
                    for r in 0..repeats {
                        for (i, q) in queries.iter().enumerate() {
                            let name = q.name.clone().unwrap_or_else(|| {
                                format!("query-{}", (b * repeats + r) * queries.len() + i)
                            });
                            let body = format!("{name}\n{q}");
                            schedule.push_back((at, name, body));
                        }
                    }
                }
                let sender = BurstSender::new(QUERY_QUEUE, schedule, self.cfg.retry, frontend);
                let first = sender.first_send().unwrap_or(start);
                self.engine.spawn(Box::new(sender), first);
            }
            SendPlan::OpenLoop(process) => {
                // Arrival names are unique per arrival (`{query}#{seq}`)
                // so per-arrival latency can be read back from spans even
                // when the same query is drawn many times.
                let mut schedule = VecDeque::new();
                for (seq, (offset, idx)) in process.offsets(queries.len()).into_iter().enumerate() {
                    let q = &queries[idx];
                    let base = q.name.clone().unwrap_or_else(|| format!("query-{idx}"));
                    let name = format!("{base}#{seq}");
                    let body = format!("{name}\n{q}");
                    schedule.push_back((start + offset, name, body));
                }
                let sender = OpenLoopSender::new(QUERY_QUEUE, schedule, self.cfg.retry, frontend);
                let first = sender.first_send().unwrap_or(start);
                self.engine.spawn(Box::new(sender), first);
            }
        }
        // Steps 9–15: the query-processor pool — static, or elastic when
        // `cfg.query_autoscale` is set.
        let executions: Rc<RefCell<Vec<QueryExecution>>> = Rc::new(RefCell::new(Vec::new()));
        let first_instance = self.engine.world.ec2.records().len();
        let scale_events: ScaleEvents = Rc::new(RefCell::new(Vec::new()));
        match self.cfg.query_autoscale {
            None => {
                for mut core in QueryCore::pool(
                    &self.cfg,
                    &mut self.engine.world,
                    start,
                    strategy,
                    &executions,
                    &self.cache,
                ) {
                    // The no-index baseline (strategy None) bypasses
                    // routing even under a mixed plan.
                    core.plan = strategy.and(self.plan.clone());
                    core.partitions = self.partition_catalog();
                    self.engine.spawn(Box::new(core), start);
                }
            }
            Some(policy) => {
                let tag = self.controller_tag();
                let mut ctrl = AutoscaleController::new(
                    QUERY_QUEUE,
                    policy,
                    Phase::Query,
                    tag,
                    self.cfg.retry,
                    self.query_launcher(strategy, &executions),
                    scale_events.clone(),
                );
                ctrl.provision(&mut self.engine.world, start);
                self.engine
                    .spawn(Box::new(ctrl), start + policy.sample_interval);
            }
        }
        let end = self.engine.run();
        for i in first_instance..self.engine.world.ec2.records().len() {
            self.engine
                .world
                .ec2
                .extend(amada_cloud::InstanceId(i), end);
        }
        self.engine.world.sqs.open(QUERY_QUEUE);
        // Front end, steps 16–18: fetch each response, download the
        // results out of the cloud.
        self.engine.world.obs.with_ctx(|c| {
            *c = Default::default();
            c.phase = Phase::Frontend;
            c.actor = Some(frontend);
        });
        let mut t = end;
        loop {
            let (msg, t2) = frontend_receive(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t,
                RESPONSE_QUEUE,
                self.cfg.visibility,
            );
            let Some(msg) = msg else { break };
            let (data, t3) = frontend_get_object(
                &mut self.engine.world.s3,
                &self.cfg.retry,
                t2,
                RESULT_BUCKET,
                &msg.body,
            );
            self.engine.world.egress(t3, data.len() as u64);
            t = frontend_delete(
                &mut self.engine.world.sqs,
                &self.cfg.retry,
                t3,
                RESPONSE_QUEUE,
                msg.id,
            );
        }
        self.engine.world.obs.with_ctx(|c| *c = Default::default());
        let executions = Rc::try_unwrap(executions)
            .expect("actors are gone")
            .into_inner();
        let (throttled_requests, lease_renewals, redelivered) =
            fault_deltas(&self.engine.world, &before);
        WorkloadReport {
            executions,
            total_time: end - start,
            cost: self.engine.world.cost_since(&before),
            throttled_requests,
            lease_renewals,
            redelivered,
            scale_events: Rc::try_unwrap(scale_events)
                .expect("controller is gone")
                .into_inner(),
        }
    }

    /// Monthly storage charges for the current warehouse contents
    /// (`st$_m(D, I)`).
    pub fn storage_cost(&self) -> StorageCost {
        self.engine.world.storage_cost_per_month()
    }

    /// Charges accumulated since provisioning.
    pub fn total_cost(&self) -> CostReport {
        self.engine.world.cost_report()
    }

    /// Every span recorded so far (empty unless `cfg.host.record` was
    /// set when the warehouse was provisioned).
    pub fn spans(&self) -> Vec<Span> {
        self.engine.world.obs.spans()
    }

    /// Test access to the engine (fault injection, custom actors).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Shared host-side parse cache.
    pub fn cache(&self) -> &DocCache {
        &self.cache
    }

    /// The shared retraction registry (test access — custom loader actors
    /// must share it to participate in update retraction).
    pub fn retraction_registry(&self) -> RetractionRegistry {
        self.retractions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_index::Strategy;
    use amada_xmark::{generate_corpus, workload_query, CorpusConfig};

    fn small_corpus() -> Vec<(String, String)> {
        let cfg = CorpusConfig {
            num_documents: 30,
            target_doc_bytes: 1200,
            ..Default::default()
        };
        generate_corpus(&cfg)
            .into_iter()
            .map(|d| (d.uri, d.xml))
            .collect()
    }

    fn warehouse(strategy: Strategy) -> Warehouse {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(strategy));
        let up = w.upload_documents(small_corpus());
        assert_eq!(up.documents, 30);
        assert!(up.cost > Money::ZERO);
        w
    }

    #[test]
    fn build_index_processes_every_document() {
        let mut w = warehouse(Strategy::Lu);
        let report = w.build_index();
        assert_eq!(report.documents, 30);
        assert!(report.entries > 0);
        assert!(report.total_time > SimDuration::ZERO);
        assert!(report.cost.total() > Money::ZERO);
        assert!(report.index_raw_bytes > 0);
        // The loader queue is drained.
        assert!(w.world().sqs.is_empty(LOADER_QUEUE).unwrap());
    }

    #[test]
    fn indexed_query_round_trip() {
        let mut w = warehouse(Strategy::Lup);
        w.build_index();
        let q = workload_query("q2").unwrap();
        let run = w.run_query(&q);
        assert_eq!(run.exec.name, "q2");
        assert!(!run.exec.results.is_empty());
        assert!(run.exec.docs_from_index > 0);
        assert!(run.exec.docs_fetched <= 30);
        assert!(run.exec.response_time > SimDuration::ZERO);
        assert!(run.cost.total() > Money::ZERO);
        // Results were egressed.
        assert!(w.world().egress_bytes > 0);
    }

    #[test]
    fn indexed_results_equal_no_index_results() {
        for strategy in Strategy::ALL.into_iter().chain([Strategy::LupPd]) {
            let mut w = warehouse(strategy);
            w.build_index();
            for qname in ["q1", "q3", "q4", "q8"] {
                let q = workload_query(qname).unwrap();
                let with = w.run_query(&q);
                let without = w.run_query_no_index(&q);
                let mut a = with.exec.results.clone();
                let mut b = without.exec.results.clone();
                a.sort_by(|x, y| x.columns.cmp(&y.columns));
                b.sort_by(|x, y| x.columns.cmp(&y.columns));
                assert_eq!(a, b, "{qname} under {strategy}");
            }
        }
    }

    #[test]
    fn index_reduces_time_and_cost() {
        let mut w = warehouse(Strategy::Lup);
        w.build_index();
        let q = workload_query("q1").unwrap();
        let with = w.run_query(&q);
        let without = w.run_query_no_index(&q);
        assert!(
            with.exec.response_time < without.exec.response_time,
            "indexed {} vs baseline {}",
            with.exec.response_time,
            without.exec.response_time
        );
        assert!(with.cost.total() < without.cost.total());
        assert!(with.exec.docs_fetched < without.exec.docs_fetched);
    }

    #[test]
    fn pushdown_queries_scan_instead_of_fetching() {
        let q = workload_query("q2").unwrap();
        let mut lup = warehouse(Strategy::Lup);
        lup.build_index();
        let lup_run = lup.run_query(&q);
        let mut pd = warehouse(Strategy::LupPd);
        pd.build_index();
        let gets_before = pd.world().s3.stats().get_requests;
        let pd_run = pd.run_query(&q);
        // Same candidates from the same index, same answers…
        assert_eq!(pd_run.exec.results, lup_run.exec.results);
        assert!(!pd_run.exec.results.is_empty());
        assert_eq!(pd_run.exec.docs_from_index, lup_run.exec.docs_from_index);
        // …but the documents themselves never travel: the query issued
        // scans, not GETs (the remaining GET is the front end collecting
        // the result object).
        let s3 = pd.world().s3.stats();
        assert!(s3.scan_requests > 0);
        assert!(s3.bytes_scanned > 0);
        assert!(s3.scan_returned_bytes < s3.bytes_scanned);
        assert_eq!(s3.get_requests - gets_before, 1);
    }

    #[test]
    fn workload_runs_on_multiple_instances() {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
        cfg.query_pool.count = 4;
        let mut w = Warehouse::new(cfg);
        w.upload_documents(small_corpus());
        w.build_index();
        let queries: Vec<_> = ["q2", "q4", "q6"]
            .iter()
            .map(|n| workload_query(n).unwrap())
            .collect();
        let report = w.run_workload(&queries, 2);
        assert_eq!(report.executions.len(), 6);
        assert!(report.total_time > SimDuration::ZERO);
    }

    #[test]
    fn more_instances_reduce_workload_time() {
        let run = |instances: usize| {
            let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
            cfg.query_pool.count = instances;
            let mut w = Warehouse::new(cfg);
            w.upload_documents(small_corpus());
            w.build_index();
            let queries: Vec<_> = ["q2", "q5", "q6", "q7"]
                .iter()
                .map(|n| workload_query(n).unwrap())
                .collect();
            w.run_workload(&queries, 4).total_time
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.micros() * 2 < one.micros(),
            "4 instances {four} vs 1 instance {one}"
        );
    }

    /// Regression for the pre-retraction behavior this comment block used
    /// to document: a shrunk re-upload left the removed keys' entries in
    /// the index, so every later query for them billed a look-up *and* a
    /// document GET just to filter a false positive. Retraction removes
    /// the entries at rebuild time; the stale key stops billing entirely.
    #[test]
    fn shrunk_reupload_stops_billing_for_removed_keys() {
        use amada_pattern::parse_query;
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
        w.upload_documents([
            ("a.xml", "<r><gone>x</gone><kept>y</kept></r>"),
            ("b.xml", "<r><kept>z</kept></r>"),
        ]);
        w.build_index();
        let mut q = parse_query("//r[/gone{val}]").unwrap();
        q.name = Some("gone".into());
        let before = w.run_query(&q);
        assert_eq!(before.exec.docs_from_index, 1);
        assert_eq!(before.exec.docs_fetched, 1);
        assert_eq!(before.exec.results.len(), 1);
        // Shrink a.xml: <gone> disappears; the rebuild retracts its keys.
        w.upload_documents([("a.xml", "<r><kept>y</kept></r>")]);
        let build = w.build_index();
        assert!(build.retracted_items > 0, "the shrink must retract items");
        let after = w.run_query(&q);
        assert_eq!(after.exec.docs_from_index, 0, "no look-up hits");
        assert_eq!(after.exec.docs_fetched, 0, "no GETs for removed keys");
        assert!(after.exec.results.is_empty());
    }

    /// The churned index must be *byte-identical* to a fresh build of the
    /// final corpus — replaces retract exactly their stale keys, nothing
    /// more, nothing less.
    #[test]
    fn reupload_retraction_matches_a_fresh_build() {
        for strategy in Strategy::ALL.into_iter().chain([Strategy::LupPd]) {
            let docs = small_corpus();
            let mut churned = Warehouse::new(WarehouseConfig::with_strategy(strategy));
            churned.upload_documents(docs.clone());
            churned.build_index();
            // Replace a third of the corpus with shrunk/grown versions:
            // swap contents pairwise so keys genuinely change.
            let replaced: Vec<(String, String)> = (0..10)
                .map(|i| (docs[i].0.clone(), docs[(i + 10) % 20].1.clone()))
                .collect();
            churned.upload_documents(replaced.clone());
            churned.build_index();

            let mut fresh = Warehouse::new(WarehouseConfig::with_strategy(strategy));
            let mut final_docs = docs;
            for (uri, xml) in &replaced {
                final_docs.iter_mut().find(|(u, _)| u == uri).unwrap().1 = xml.clone();
            }
            fresh.upload_documents(final_docs);
            fresh.build_index();
            assert_eq!(
                churned.world().kv.peek_all(),
                fresh.world().kv.peek_all(),
                "{strategy}: churned index != fresh build"
            );
            assert_eq!(churned.corpus_bytes(), fresh.corpus_bytes());
        }
    }

    #[test]
    fn deleting_documents_cleans_index_and_accounting() {
        let mut w = warehouse(Strategy::Lup);
        w.build_index();
        let victims: Vec<String> = w.documents()[..10].to_vec();
        let del = w.delete_documents(victims.clone());
        assert_eq!(del.documents, 10);
        assert!(del.index_items_removed > 0);
        assert!(del.bytes > 0);
        assert!(del.cost > Money::ZERO, "index retraction bills write units");
        assert_eq!(w.documents().len(), 20);
        // S3 DELETEs are themselves free requests.
        assert_eq!(w.world().s3.stats().delete_requests, 10);
        // Inventory reconciles: corpus bytes equal the stored bytes.
        let stored: u64 = w
            .world()
            .s3
            .peek_all(DOC_BUCKET)
            .iter()
            .map(|(_, b)| b.len() as u64)
            .sum();
        assert_eq!(w.corpus_bytes(), stored);
        // The index is byte-identical to a fresh build of the survivors.
        let survivors: Vec<(String, String)> = small_corpus()
            .into_iter()
            .filter(|(u, _)| !victims.contains(u))
            .collect();
        let mut fresh = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
        fresh.upload_documents(survivors);
        fresh.build_index();
        assert_eq!(w.world().kv.peek_all(), fresh.world().kv.peek_all());
    }

    /// Deleting a document whose loader message is still queued: the
    /// loader finds the object gone and simply commits; the front end
    /// already retracted the index entries at delete time.
    #[test]
    fn delete_before_build_leaves_no_trace() {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lui));
        w.upload_documents([("a.xml", "<r><x>1</x></r>"), ("b.xml", "<r><y>2</y></r>")]);
        w.delete_documents(["a.xml"]);
        let build = w.build_index();
        assert_eq!(build.documents, 1, "only b.xml is left to index");
        assert!(w.world().sqs.is_empty(LOADER_QUEUE).unwrap());
        assert_eq!(w.documents(), ["b.xml"]);
        let mut fresh = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lui));
        fresh.upload_documents([("b.xml", "<r><y>2</y></r>")]);
        fresh.build_index();
        assert_eq!(w.world().kv.peek_all(), fresh.world().kv.peek_all());
    }

    /// Delete-then-re-add under the same URI: the re-added version is
    /// indexed cleanly, with no leftovers from the deleted incarnation.
    #[test]
    fn delete_then_readd_same_uri() {
        let mut w = Warehouse::new(WarehouseConfig::with_strategy(Strategy::TwoLupi));
        w.upload_documents([("d.xml", "<r><old>x</old></r>")]);
        w.build_index();
        w.delete_documents(["d.xml"]);
        w.upload_documents([("d.xml", "<r><new>y</new></r>")]);
        w.build_index();
        assert_eq!(w.documents(), ["d.xml"]);
        let mut fresh = Warehouse::new(WarehouseConfig::with_strategy(Strategy::TwoLupi));
        fresh.upload_documents([("d.xml", "<r><new>y</new></r>")]);
        fresh.build_index();
        assert_eq!(w.world().kv.peek_all(), fresh.world().kv.peek_all());
        // Deleting an unknown URI is a harmless no-op.
        let nop = w.delete_documents(["ghost.xml"]);
        assert_eq!(nop.documents, 0);
        assert_eq!(nop.index_items_removed, 0);
    }

    /// The partitioned corpus for mixed-plan tests: a third of the
    /// documents in `hot/`, a third in `cold/`, a third in the root.
    fn partitioned_corpus() -> Vec<(String, String)> {
        small_corpus()
            .into_iter()
            .enumerate()
            .map(|(i, (uri, xml))| (format!("{}{uri}", ["hot/", "cold/", ""][i % 3]), xml))
            .collect()
    }

    fn mixed_plan() -> amada_index::MixedPlan {
        amada_index::MixedPlan::uniform(Some(Strategy::Lup))
            .with("hot", Some(Strategy::TwoLupi))
            .with("cold", None)
    }

    #[test]
    fn mixed_plan_answers_match_the_no_index_baseline() {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.mixed_plan = Some(mixed_plan());
        let mut w = Warehouse::new(cfg);
        w.upload_documents(partitioned_corpus());
        let build = w.build_index();
        assert!(build.items > 0);
        // The hot partition got its own tables; the cold one got none.
        let tables: std::collections::BTreeSet<String> = w
            .world()
            .kv
            .peek_all()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert!(tables.iter().any(|t| t.ends_with("@hot")), "{tables:?}");
        assert!(!tables.iter().any(|t| t.ends_with("@cold")), "{tables:?}");
        for qname in ["q1", "q2", "q4", "q8"] {
            let q = workload_query(qname).unwrap();
            let with = w.run_query(&q);
            let without = w.run_query_no_index(&q);
            let mut a = with.exec.results.clone();
            let mut b = without.exec.results.clone();
            a.sort_by(|x, y| x.columns.cmp(&y.columns));
            b.sort_by(|x, y| x.columns.cmp(&y.columns));
            assert_eq!(a, b, "{qname} under the mixed plan");
        }
    }

    /// A *fully indexed* plan skips the billed per-query corpus LIST and
    /// fans its look-ups out over the front end's partition catalog
    /// instead. Regression: the catalog must cover partitions the plan
    /// does not name (routed via the default) — deriving the fan-out from
    /// the (skipped) listing used to return zero candidates everywhere.
    #[test]
    fn fully_indexed_plan_answers_without_a_corpus_listing() {
        // Named hot/cold partitions plus the unnamed root partition,
        // which only the catalog knows about.
        let plan = amada_index::MixedPlan::uniform(Some(Strategy::Lu))
            .with("hot", Some(Strategy::TwoLupi))
            .with("cold", Some(Strategy::Lui));
        assert!(plan.fully_indexed());
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.mixed_plan = Some(plan);
        let mut w = Warehouse::new(cfg);
        w.upload_documents(partitioned_corpus());
        w.build_index();
        for qname in ["q1", "q4", "q6"] {
            let q = workload_query(qname).unwrap();
            let lists_before = w.world().s3.stats().get_requests;
            let with = w.run_query(&q);
            assert!(
                with.exec.docs_from_index > 0 || with.exec.results.is_empty(),
                "{qname}: candidates come from the index, not a scan"
            );
            // The only get-class S3 requests are the candidate fetches
            // plus the front end retrieving the one result object — no
            // corpus LIST rode along.
            assert_eq!(
                w.world().s3.stats().get_requests - lists_before,
                with.exec.docs_fetched as u64 + 1,
                "{qname}: a fully indexed plan pays no corpus LIST"
            );
            let without = w.run_query_no_index(&q);
            let mut a = with.exec.results.clone();
            let mut b = without.exec.results.clone();
            a.sort_by(|x, y| x.columns.cmp(&y.columns));
            b.sort_by(|x, y| x.columns.cmp(&y.columns));
            assert_eq!(a, b, "{qname} under the fully indexed plan");
            assert!(!a.is_empty() || qname != "q1", "q1 has a known answer");
        }
    }

    /// Switching plans migrates incrementally, and the migrated index is
    /// *byte-identical* to a fresh build under the target plan — in both
    /// directions (flat → mixed → flat).
    #[test]
    fn plan_migration_matches_a_fresh_build() {
        let mut migrated = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
        migrated.upload_documents(partitioned_corpus());
        migrated.build_index();
        let moved = migrated.apply_plan(Some(mixed_plan()));
        assert!(moved > 0, "every placement changed");
        let build = migrated.build_index();
        assert!(
            build.retracted_items > 0,
            "migration must retract the old placement"
        );
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lu);
        cfg.mixed_plan = Some(mixed_plan());
        let mut fresh = Warehouse::new(cfg);
        fresh.upload_documents(partitioned_corpus());
        fresh.build_index();
        assert_eq!(
            migrated.world().kv.peek_all(),
            fresh.world().kv.peek_all(),
            "migrated mixed index != fresh mixed build"
        );
        // And back: dropping the plan restores the flat layout.
        migrated.apply_plan(None);
        migrated.build_index();
        let mut flat = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lu));
        flat.upload_documents(partitioned_corpus());
        flat.build_index();
        assert_eq!(
            migrated.world().kv.peek_all(),
            flat.world().kv.peek_all(),
            "unmigrated index != flat build"
        );
    }

    /// A plan change ordered while documents are already queued for
    /// rebuild (churn upload and re-advise in the same maintenance
    /// window) piggybacks on the pending loader messages: the loader
    /// reads the new plan at processing time, so nothing is enqueued or
    /// rebuilt twice. Cheaper than migrating eagerly before the churn —
    /// and still byte-identical to a fresh build of the final state.
    #[test]
    fn plan_change_piggybacks_on_pending_rebuilds() {
        let plan_a =
            amada_index::MixedPlan::uniform(Some(Strategy::Lup)).with("hot", Some(Strategy::Lui));
        let plan_b =
            amada_index::MixedPlan::uniform(Some(Strategy::Lup)).with("hot", Some(Strategy::Lu));
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.mixed_plan = Some(plan_a);
        // The churn round: every hot document replaced with new content
        // (its neighbour's, which parses and differs).
        let originals = partitioned_corpus();
        let replacements: Vec<(String, String)> = originals
            .iter()
            .enumerate()
            .filter(|(_, (uri, _))| uri.starts_with("hot/"))
            .map(|(i, (uri, _))| (uri.clone(), originals[(i + 1) % originals.len()].1.clone()))
            .collect();
        assert!(!replacements.is_empty());

        // Piggybacked: upload the churn, then switch plans while those
        // rebuilds are still queued, then process the queue once.
        let mut piggy = Warehouse::new(cfg.clone());
        piggy.upload_documents(originals.clone());
        piggy.build_index();
        piggy.upload_documents(replacements.clone());
        assert_eq!(
            piggy.apply_plan(Some(plan_b.clone())),
            replacements.len() as u64,
            "every hot document's placement changed"
        );
        let report = piggy.build_index();
        assert!(
            report.retracted_items > 0,
            "the old LUI placement must be retracted"
        );

        // Eager: migrate first (its own rebuild), then pay the churn
        // rebuild on top — two queue round-trips per hot document.
        let mut eager = Warehouse::new(cfg.clone());
        eager.upload_documents(originals.clone());
        eager.build_index();
        eager.apply_plan(Some(plan_b.clone()));
        eager.build_index();
        eager.upload_documents(replacements.clone());
        eager.build_index();

        // Same final state, byte for byte, as building the final corpus
        // from scratch under the target plan…
        let mut final_docs: std::collections::BTreeMap<String, String> =
            originals.into_iter().collect();
        final_docs.extend(replacements);
        let mut fresh_cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        fresh_cfg.mixed_plan = Some(plan_b);
        let mut fresh = Warehouse::new(fresh_cfg);
        fresh.upload_documents(final_docs);
        fresh.build_index();
        assert_eq!(piggy.world().kv.peek_all(), fresh.world().kv.peek_all());
        assert_eq!(eager.world().kv.peek_all(), fresh.world().kv.peek_all());
        // …and the piggybacked path is strictly cheaper.
        assert!(
            piggy.total_cost().total() < eager.total_cost().total(),
            "piggyback {} vs eager {}",
            piggy.total_cost().total(),
            eager.total_cost().total()
        );
    }

    /// Re-applying the current plan is free: nothing is placed
    /// differently, so nothing is enqueued or retracted.
    #[test]
    fn reapplying_the_same_plan_migrates_nothing() {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.mixed_plan = Some(mixed_plan());
        let mut w = Warehouse::new(cfg);
        w.upload_documents(partitioned_corpus());
        w.build_index();
        assert_eq!(w.apply_plan(Some(mixed_plan())), 0);
        // A flat warehouse adopting the uniform root plan is also free:
        // the root partition keeps the global tables.
        let mut flat = Warehouse::new(WarehouseConfig::with_strategy(Strategy::Lup));
        flat.upload_documents(small_corpus());
        flat.build_index();
        assert_eq!(
            flat.apply_plan(Some(amada_index::MixedPlan::uniform(Some(Strategy::Lup)))),
            0
        );
    }

    /// The adaptive cadence: a recording warehouse serves live traffic,
    /// re-advises from its own attribution, migrates to the chosen plan
    /// incrementally — and a second re-advise under the same traffic
    /// confirms the plan (migrates nothing), so the cadence is cheap at
    /// steady state.
    #[test]
    fn readvising_from_live_attribution_converges() {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.host.record = true;
        let mut w = Warehouse::new(cfg);
        w.upload_documents(partitioned_corpus());
        w.build_index();
        // Live traffic: the selective query, repeatedly.
        let catalog = vec![workload_query("q1").unwrap(), workload_query("q6").unwrap()];
        for _ in 0..4 {
            w.run_query(&catalog[0]);
        }
        w.run_query(&catalog[1]);
        let churn = std::collections::BTreeMap::new();
        let horizon = crate::adaptive::Horizon {
            expected_runs: 200,
            months: 1.0,
            budget_per_month: None,
            response_slo: None,
        };
        let first = w.readvise(&catalog, &churn, &horizon);
        // The observed families reflect the traffic actually served.
        assert!(first.advice.budget_met);
        assert!(!first.advice.ranked.is_empty());
        assert_eq!(
            w.mixed_plan(),
            Some(&first.advice.chosen.plan),
            "the chosen plan is in force"
        );
        // Apply the migration, then serve the same traffic profile in
        // the next observation window.
        if first.migrated > 0 {
            w.build_index();
        }
        for _ in 0..4 {
            w.run_query(&catalog[0]);
        }
        w.run_query(&catalog[1]);
        // Steady state: an unchanged traffic window re-advises to the
        // same plan and migrates nothing.
        let second = w.readvise(&catalog, &churn, &horizon);
        assert_eq!(second.advice.chosen.label, first.advice.chosen.label);
        assert_eq!(second.migrated, 0, "confirming the plan is free");
        // Answers survived the migration.
        let q = &catalog[0];
        let mut with = w.run_query(q).exec.results;
        let mut without = w.run_query_no_index(q).exec.results;
        with.sort_by(|x, y| x.columns.cmp(&y.columns));
        without.sort_by(|x, y| x.columns.cmp(&y.columns));
        assert_eq!(with, without, "answers unchanged after migration");
    }

    #[test]
    fn incremental_uploads_extend_the_index() {
        let mut w = warehouse(Strategy::Lui);
        w.build_index();
        let q = workload_query("q6").unwrap();
        let before = w.run_query(&q).exec.results.len();
        // Add 10 more documents and re-index incrementally.
        let cfg = CorpusConfig {
            num_documents: 40,
            target_doc_bytes: 1200,
            ..Default::default()
        };
        let extra: Vec<(String, String)> = generate_corpus(&cfg)
            .into_iter()
            .skip(30)
            .map(|d| (d.uri, d.xml))
            .collect();
        w.upload_documents(extra);
        let r = w.build_index();
        assert_eq!(r.documents, 10);
        let after = w.run_query(&q).exec.results.len();
        assert!(after >= before);
    }
}
