//! The paper's monetary cost model (Section 7.3), implemented
//! symbolically.
//!
//! Given the data-, index- and query-determined metrics of Section 7.1 and
//! a provider price table (Section 7.2), these functions compute the
//! charges for uploading, indexing, storing and querying. The same
//! quantities are *also* metered live by the simulated services; the test
//! suite cross-checks that the metered charges agree with these formulas,
//! which is precisely the validation the paper performs in Section 8.3
//! ("we measure actual charged costs, where the query- and
//! strategy-dependent parameters are instantiated to concrete
//! operations").
//!
//! The formulas assume a fault-free run: one receive + one delete per
//! task message and no repeated service calls. Under transient-fault
//! injection (`amada_cloud::fault`) every throttled request is still
//! billed and every retry, lease renewal and redelivery adds requests on
//! top, so metered charges exceed these formulas by exactly the
//! fault-handling overhead the fault experiment reports.

use amada_cloud::{InstanceType, Money, PriceTable, SimDuration};

/// The Section 7.3 cost formulas over a price table.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Provider prices.
    pub prices: PriceTable,
}

impl CostModel {
    /// Creates a model over a price table.
    pub fn new(prices: PriceTable) -> CostModel {
        CostModel { prices }
    }

    /// `ud$(D) = STput$ × |D| + QS$ × |D|` — uploading a document set.
    pub fn upload_documents(&self, n_docs: u64) -> Money {
        self.prices.st_put * n_docs + self.prices.qs_request * n_docs
    }

    /// `ci$(D, I) = ud$(D) + IDXput$ × |op(D, I)| + STget$ × |D|
    ///  + VM$_h × t_idx + QS$ × 2|D|` — building the index.
    ///
    /// `t_idx` is wall-clock indexing time; with a pool of `instances`
    /// machines the VM term bills each of them for the window (the paper's
    /// Table 6 EC2 figures are pool-wide).
    pub fn index_building(
        &self,
        n_docs: u64,
        put_ops: u64,
        t_idx: SimDuration,
        instances: u64,
        itype: InstanceType,
    ) -> Money {
        self.upload_documents(n_docs)
            + self.prices.idx_put * put_ops
            + self.prices.st_get * n_docs
            + self.prices.vm_hour(itype).per_hour(t_idx.micros()) * instances
            + self.prices.qs_request * (2 * n_docs)
    }

    /// `st$_m(D, I) = ST$_{m,GB} × s(D) + IDX$_{m,GB} × s(D, I)` —
    /// storing the data and its index for one month.
    pub fn monthly_storage(&self, data_bytes: u64, index_bytes: u64) -> Money {
        self.prices.st_month_gb.per_gb(data_bytes) + self.prices.idx_month_gb.per_gb(index_bytes)
    }

    /// `rq$(q) = STget$ + egress$_{GB} × |r(q)| + QS$ × 3` — the front end
    /// retrieving a query's results.
    pub fn retrieve_results(&self, result_bytes: u64) -> Money {
        self.prices.st_get + self.prices.egress_gb.per_gb(result_bytes) + self.prices.qs_request * 3
    }

    /// `cq$(q, D) = rq$(q) + STget$ × |D| + STput$ + VM$_h × pt(q, D)
    ///  + QS$ × 3` — answering a query **without** an index.
    pub fn query_no_index(
        &self,
        result_bytes: u64,
        n_docs: u64,
        pt: SimDuration,
        itype: InstanceType,
    ) -> Money {
        self.retrieve_results(result_bytes)
            + self.prices.st_get * n_docs
            + self.prices.st_put
            + self.prices.vm_hour(itype).per_hour(pt.micros())
            + self.prices.qs_request * 3
    }

    /// `cq$(q, D, I, D_q) = rq$(q) + IDXget$ × |op(q, D, I)| + STget$ ×
    ///  |D_q| + STput$ + VM$_h × ptq + QS$ × 3` — answering a query
    /// **with** an index built by strategy `I`.
    pub fn query_indexed(
        &self,
        result_bytes: u64,
        index_get_ops: u64,
        docs_fetched: u64,
        ptq: SimDuration,
        itype: InstanceType,
    ) -> Money {
        self.retrieve_results(result_bytes)
            + self.prices.idx_get * index_get_ops
            + self.prices.st_get * docs_fetched
            + self.prices.st_put
            + self.prices.vm_hour(itype).per_hour(ptq.micros())
            + self.prices.qs_request * 3
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(PriceTable::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn upload_formula() {
        // 1000 docs: 1000 × ($0.000011 + $0.000001) = $0.012.
        assert_eq!(m().upload_documents(1000).dollars(), 0.012);
    }

    #[test]
    fn indexing_formula_components() {
        let c = m().index_building(
            100,
            1_000_000,
            SimDuration::from_secs(3600),
            8,
            InstanceType::Large,
        );
        // IDXput: 1e6 × 3.2e-7 = $0.32; VM: 8 × $0.34 = $2.72;
        // upload: 100 × 1.2e-5 = $0.0012; STget: 100 × 1.1e-6 = $0.00011;
        // QS: 200 × 1e-6 = $0.0002.
        let expect = 0.32 + 2.72 + 0.0012 + 0.00011 + 0.0002;
        assert!((c.dollars() - expect).abs() < 1e-9, "{c}");
    }

    #[test]
    fn storage_formula() {
        // 40 GB data + 60 GB index: 40 × 0.125 + 60 × 1.14 = $73.40.
        let c = m().monthly_storage(40_000_000_000, 60_000_000_000);
        assert!((c.dollars() - 73.4).abs() < 1e-9);
    }

    #[test]
    fn indexed_query_cheaper_than_scan_when_selective() {
        let scan = m().query_no_index(
            1_000_000,
            20_000,
            SimDuration::from_secs(600),
            InstanceType::Large,
        );
        let indexed = m().query_indexed(
            1_000_000,
            15,
            350,
            SimDuration::from_secs(10),
            InstanceType::Large,
        );
        assert!(indexed < scan);
        // The savings are dominated by EC2 time and S3 gets, as in the
        // paper's Figure 12 discussion.
        assert!(indexed.dollars() < 0.1 * scan.dollars());
    }

    #[test]
    fn xl_and_l_instances_bill_proportionally() {
        let l = m().query_no_index(0, 0, SimDuration::from_secs(3600), InstanceType::Large);
        let xl = m().query_no_index(0, 0, SimDuration::from_secs(1800), InstanceType::ExtraLarge);
        // Twice the hourly rate for half the time: identical EC2 charge —
        // the paper's observation that indexed-query cost is practically
        // independent of the machine type.
        assert_eq!(l, xl);
    }
}
