//! The adaptive, attribution-driven index advisor (ROADMAP item 1): the
//! successor to [`crate::advisor`]'s brute-force candidate simulation.
//!
//! The static advisor re-runs a whole deployment per candidate — six full
//! simulations for six candidates, and it can only price *uniform*
//! layouts. This module instead scores an arbitrary [`MixedPlan`] (every
//! partition its own strategy, or none) **without running a deployment**:
//!
//! * exact operation counts come from *host-side micro-execution* — the
//!   candidate plan's index is actually built into a scratch
//!   [`DynamoDb`] with [`index-layer write path`](amada_index::partition)
//!   semantics, and each workload query is actually looked up against it,
//!   so `|op(D, I)|`, `|op(q, D, I)|`, `s(D, I)`, `|D_q|` and `|r(q)|`
//!   are measured, not guessed;
//! * virtual durations come from the same service-time and
//!   [`WorkModel`](amada_cloud::WorkModel) conversions the simulated
//!   warehouse charges, serialized on one core and divided across the
//!   configured pool;
//! * money comes from the Section 7.3 formulas ([`CostModel`]);
//! * the *workload* — which queries run, how often, against which
//!   partitions — comes from live [`Attribution`] data recorded by the
//!   running warehouse ([`observed_families`]), so the advisor adapts as
//!   traffic drifts.
//!
//! What micro-execution deliberately leaves out: queue contention between
//! pool cores, SQS round-trip latencies, and commit-path retries. Those
//! are second-order for cost (the bill is dominated by operation counts
//! and compute time, both exact here), which is why the estimates carry a
//! stated tolerance — [`ESTIMATE_TOLERANCE`] — against measured
//! deployments, pinned by this module's tests.
//!
//! The planner ([`advise_adaptive`]) searches per-partition assignments
//! (exhaustively for few partitions, coordinate descent beyond that),
//! always including the five uniform layouts, and enforces the declared
//! constraints: a monthly storage **budget** and an optional mean
//! **response SLO**. The cheapest plan over the horizon that satisfies
//! both wins; an unmeetable constraint set degrades toward "index
//! nothing" deterministically. [`crate::Warehouse::apply_plan`] then
//! migrates a live deployment to the chosen plan incrementally.

use crate::advisor::months_scaled;
use crate::config::WarehouseConfig;
use crate::cost::CostModel;
use amada_cloud::{DynamoDb, KvStore, Money, SimDuration, SimTime, S3};
use amada_index::{
    extract, lookup_pattern_in, partition_lookup_tables, partition_of, partition_tables,
    retarget_entries, write_entries, MixedPlan, Strategy,
};
use amada_obs::Attribution;
use amada_pattern::{evaluate_pattern_twig, join_pattern_results, Query, Tuple};
use amada_xml::Document;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Stated relative tolerance of the micro-execution estimates against a
/// measured deployment: build-phase and per-run costs agree within this
/// fraction (storage agrees near-exactly — both sides count the same
/// stored bytes). Pinned by `estimates_track_measured_deployments`.
pub const ESTIMATE_TOLERANCE: f64 = 0.35;

/// One query family's observed load: the query and how many arrivals per
/// observation window the attribution stream recorded for it.
#[derive(Debug, Clone)]
pub struct FamilyLoad {
    /// The query (from the workload catalog).
    pub query: Query,
    /// Arrivals per window (each one costs a full execution per run).
    pub arrivals: u64,
}

/// Distills recorded attribution into per-family load: open-loop arrival
/// names collapse onto their base query
/// ([`Attribution::query_families`]), and each family is matched to the
/// catalog query of the same name. Families with no catalog entry are
/// skipped (the advisor cannot re-plan a query it cannot parse); catalog
/// queries with no observed arrivals simply carry no weight.
pub fn observed_families(attr: &Attribution, catalog: &[Query]) -> Vec<FamilyLoad> {
    attr.query_families()
        .into_iter()
        .filter_map(|(name, fc)| {
            let query = catalog.iter().find(|q| q.name.as_deref() == Some(&name))?;
            Some(FamilyLoad {
                query: query.clone(),
                arrivals: fc.arrivals,
            })
        })
        .collect()
}

/// The projection horizon and the operator's constraints.
#[derive(Debug, Clone, Copy)]
pub struct Horizon {
    /// Workload runs expected over the horizon (each run executes every
    /// family `arrivals` times).
    pub expected_runs: u32,
    /// Storage horizon in months.
    pub months: f64,
    /// Monthly storage ceiling (file store + index store), if declared.
    pub budget_per_month: Option<Money>,
    /// Mean-response ceiling in seconds, if declared. Without it the
    /// dollars-optimal plan can be an index-nothing layout whose queries
    /// scan whole partitions — cheap (no index storage, churn-free
    /// maintenance) but orders of magnitude slower. The SLO excludes
    /// such plans: the advisor recommends the cheapest candidate whose
    /// *estimated* arrival-weighted mean response stays at or under the
    /// ceiling.
    pub response_slo: Option<f64>,
}

/// Cost projection for one candidate mixed plan — the [`MixedPlan`]
/// analog of [`crate::StrategyEstimate`].
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// The plan.
    pub plan: MixedPlan,
    /// Human-readable assignment, e.g. `hot=2LUPI,cold=scan,/=LUP`
    /// (uniform plans render as `uniform:LUP`). Doubles as the
    /// deterministic tie-break key.
    pub label: String,
    /// Build-phase bill (`ci$` minus the upload term every candidate pays
    /// identically): index puts, document fetches, loader compute, task
    /// messaging.
    pub build_cost: Money,
    /// Monthly storage (file store + index store).
    pub storage_per_month: Money,
    /// One workload run: every family, weighted by its arrivals.
    pub run_cost: Money,
    /// Index maintenance per run at the declared churn: stale-entry
    /// retraction plus re-indexing of the replaced documents. Unindexed
    /// partitions churn free.
    pub maintenance_per_run: Money,
    /// Arrival-weighted mean response time (seconds).
    pub mean_response_secs: f64,
    /// `build + runs × (run + maintenance) + months × storage`.
    pub projected_total: Money,
}

impl PlanEstimate {
    /// Whether the plan's monthly storage fits a budget.
    pub fn within_budget(&self, budget: Money) -> bool {
        self.storage_per_month <= budget
    }

    /// Whether the plan's estimated mean response meets a declared SLO.
    pub fn meets_slo(&self, slo_secs: f64) -> bool {
        self.mean_response_secs <= slo_secs
    }

    /// Whether the plan satisfies every constraint the horizon declares.
    pub fn satisfies(&self, horizon: &Horizon) -> bool {
        horizon
            .budget_per_month
            .is_none_or(|b| self.within_budget(b))
            && horizon.response_slo.is_none_or(|s| self.meets_slo(s))
    }
}

/// The adaptive advisor's output.
#[derive(Debug, Clone)]
pub struct AdaptiveAdvice {
    /// The recommended plan: cheapest over the horizon among candidates
    /// whose monthly storage fits the budget (the overall cheapest when no
    /// budget is declared).
    pub chosen: PlanEstimate,
    /// The five uniform layouts plus the best mixed plan, ranked by
    /// ascending projected total (ties in label order) — the
    /// adaptive-vs-static comparison table.
    pub ranked: Vec<PlanEstimate>,
    /// The declared budget, echoed.
    pub budget_per_month: Option<Money>,
    /// Whether `chosen` actually satisfies every declared constraint
    /// (monthly budget and response SLO). `false` when no searched plan
    /// fits them all — the advisor then recommends the minimal-storage
    /// layout anyway and reports the miss.
    pub budget_met: bool,
}

/// Per-partition strategy candidates, in documented tie-break order:
/// cheapest-to-store first within the indexed ones, "index nothing" last
/// so equal-cost ties prefer the simpler indexed layout only when it
/// actually pays.
const PARTITION_CANDIDATES: [Option<Strategy>; 5] = [
    Some(Strategy::Lu),
    Some(Strategy::Lup),
    Some(Strategy::Lui),
    Some(Strategy::TwoLupi),
    None,
];

fn strategy_label(s: Option<Strategy>) -> &'static str {
    s.map_or("scan", Strategy::name)
}

/// The flat fallback strategy for partitions outside the sample: the
/// deployment's configured strategy, with the non-routable pushdown
/// variant degraded to its underlying LUP layout.
fn routable_default(base: &WarehouseConfig) -> Strategy {
    match base.strategy {
        Strategy::LupPd => Strategy::Lup,
        s => s,
    }
}

/// One partition's micro-build under one strategy (or none): its own
/// scratch store and the loader-side numbers every candidate plan that
/// makes this `(partition, strategy)` choice shares. Candidates are
/// *combinations* of these pairs — with `P` partitions and `S` strategy
/// options the search scores `S^P` plans but only ever performs `P × S`
/// builds, because index tables are per-partition (entries are
/// retargeted), so a partition's build and look-ups are identical in
/// every plan that assigns it the same strategy.
struct PartitionBuild {
    /// The partition's own scratch index (empty for "scan").
    kv: RefCell<DynamoDb>,
    /// Virtual end of the build — look-ups start here.
    built_at: SimTime,
    /// Index put operations.
    puts: u64,
    /// Bytes stored in the partition's index tables.
    stored_bytes: u64,
    /// Loader serial time (fetch + parse + extract + write) for the
    /// partition's documents.
    serial: SimDuration,
    /// Per-document `(index puts, loader serial)`, for the churn math.
    per_doc: BTreeMap<String, (u64, SimDuration)>,
}

/// One pattern's look-up against one partition's index: what
/// [`amada_index::lookup_mixed`] merges per partition when it fans a
/// pattern out.
struct PatternLookup {
    uris: Vec<String>,
    entries_processed: u64,
    get_ops: u64,
    latency: SimDuration,
}

/// The shared, plan-independent scenario state: parsed sample documents,
/// their micro-measured fetch latencies, the cost model, and the
/// memoized per-`(partition, strategy)` micro-executions every scored
/// candidate composes from.
struct Scenario<'a> {
    uris: Vec<String>,
    docs: BTreeMap<String, Document>,
    doc_bytes: BTreeMap<String, u64>,
    fetch: BTreeMap<String, SimDuration>,
    corpus_bytes: u64,
    base: &'a WarehouseConfig,
    cost: CostModel,
    /// `(partition, strategy label)` → micro-build.
    builds: RefCell<BTreeMap<(String, &'static str), Rc<PartitionBuild>>>,
    /// `(partition, strategy label, workload family index)` → per-pattern
    /// look-up outcomes.
    lookups: RefCell<LookupMemo>,
    /// `(family index, pattern index, uri)` → twig tuples and candidate
    /// count. Strategy-independent: the index only decides *which*
    /// documents get evaluated.
    evals: RefCell<EvalMemo>,
}

type LookupMemo = BTreeMap<(String, &'static str, usize), Rc<Vec<PatternLookup>>>;
type EvalMemo = BTreeMap<(usize, usize, String), Rc<(Vec<Tuple>, u64)>>;

impl<'a> Scenario<'a> {
    fn new(sample: &[(String, String)], base: &'a WarehouseConfig) -> Scenario<'a> {
        let mut s3 = S3::new();
        s3.create_bucket("sample");
        let mut uris = Vec::with_capacity(sample.len());
        let mut docs = BTreeMap::new();
        let mut doc_bytes = BTreeMap::new();
        let mut fetch = BTreeMap::new();
        let mut corpus_bytes = 0u64;
        let mut t = SimTime::ZERO;
        for (uri, xml) in sample {
            let doc = Document::parse_str(uri.clone(), xml)
                .unwrap_or_else(|e| panic!("sample document {uri} does not parse: {e:?}"));
            t = s3
                .put(t, "sample", uri, xml.clone().into_bytes())
                .expect("scratch bucket exists");
            // Micro-measure the fetch latency each loader / query core
            // will pay for this document, with the same service-time
            // model the simulation charges (uncontended).
            let (bytes, ready) = s3.get(t, "sample", uri).expect("just stored");
            fetch.insert(uri.clone(), ready - t);
            t = ready;
            corpus_bytes += bytes.len() as u64;
            doc_bytes.insert(uri.clone(), bytes.len() as u64);
            uris.push(uri.clone());
            docs.insert(uri.clone(), doc);
        }
        Scenario {
            uris,
            docs,
            doc_bytes,
            fetch,
            corpus_bytes,
            base,
            cost: CostModel::new(base.prices.clone()),
            builds: RefCell::new(BTreeMap::new()),
            lookups: RefCell::new(BTreeMap::new()),
            evals: RefCell::new(BTreeMap::new()),
        }
    }

    /// The distinct partitions of the sample, in name order.
    fn partitions(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.uris.iter().map(|u| partition_of(u)).collect();
        set.into_iter().map(str::to_string).collect()
    }

    fn label_of(&self, plan: &MixedPlan) -> String {
        if plan.assignments().is_empty() {
            return format!("uniform:{}", strategy_label(plan.default_strategy()));
        }
        let parts: Vec<String> = plan
            .assignments()
            .iter()
            .map(|(p, s)| {
                let name = if p.is_empty() { "/" } else { p };
                format!("{name}={}", strategy_label(*s))
            })
            .collect();
        parts.join(",")
    }

    /// The VM bill for `serial` compute, perfectly balanced across a
    /// pool: rate × serial ÷ cores, independent of the instance count.
    fn vm(&self, serial: SimDuration, itype: amada_cloud::InstanceType, cores: usize) -> Money {
        self.cost
            .prices
            .vm_hour(itype)
            .per_hour(serial.micros() / cores as u64)
    }

    /// Micro-builds one partition under one strategy choice (memoized):
    /// every document flows through the loader (fetch + parse) even when
    /// the partition indexes nothing; indexed partitions also extract and
    /// write their entries into the partition's own scratch store.
    fn partition_build(&self, partition: &str, strategy: Option<Strategy>) -> Rc<PartitionBuild> {
        let key = (partition.to_string(), strategy_label(strategy));
        if let Some(b) = self.builds.borrow().get(&key) {
            return b.clone();
        }
        let work = &self.base.work;
        let lecu = self.base.loader_pool.itype.ecu_per_core();
        let mut kv = DynamoDb::default();
        let mut t = SimTime::ZERO;
        let mut serial = SimDuration::ZERO;
        let mut puts = 0u64;
        let mut per_doc = BTreeMap::new();
        for uri in &self.uris {
            if partition_of(uri) != partition {
                continue;
            }
            let mut serial_doc = self.fetch[uri] + work.parse(self.doc_bytes[uri], lecu);
            let mut doc_puts = 0u64;
            if let Some(s) = strategy {
                let mut entries = extract(&self.docs[uri], s, self.base.extract);
                retarget_entries(&mut entries, partition);
                let entry_bytes: u64 = entries.iter().map(|e| e.raw_bytes() as u64).sum();
                serial_doc += work.extract(entry_bytes, lecu);
                let before = kv.stats().put_ops;
                let (_m, ready) =
                    write_entries(&mut kv, t, &entries, uri).expect("micro-indexing succeeds");
                serial_doc += ready - t;
                t = ready;
                doc_puts = kv.stats().put_ops - before;
                puts += doc_puts;
            }
            serial += serial_doc;
            per_doc.insert(uri.clone(), (doc_puts, serial_doc));
        }
        if let Some(s) = strategy {
            // The strategy's tables may be empty but must exist for
            // look-ups to run — same guarantee lookup_mixed gives.
            for table in partition_tables(s, partition) {
                kv.ensure_table(table);
            }
        }
        let b = Rc::new(PartitionBuild {
            puts,
            stored_bytes: kv.stats().stored_bytes(),
            built_at: t,
            kv: RefCell::new(kv),
            serial,
            per_doc,
        });
        self.builds.borrow_mut().insert(key, b.clone());
        b
    }

    /// One family's per-pattern look-ups against one indexed partition
    /// (memoized): exactly what [`amada_index::lookup_mixed`] issues for
    /// that partition when it fans each pattern out, measured against the
    /// partition's own scratch index.
    fn partition_lookup(
        &self,
        partition: &str,
        strategy: Strategy,
        fam_idx: usize,
        query: &Query,
    ) -> Rc<Vec<PatternLookup>> {
        let key = (
            partition.to_string(),
            strategy_label(Some(strategy)),
            fam_idx,
        );
        if let Some(l) = self.lookups.borrow().get(&key) {
            return l.clone();
        }
        let build = self.partition_build(partition, Some(strategy));
        let mut kv = build.kv.borrow_mut();
        let tables = partition_lookup_tables(partition);
        let t0 = build.built_at;
        let out: Vec<PatternLookup> = query
            .patterns
            .iter()
            .map(|p| {
                let o = lookup_pattern_in(&mut *kv, t0, strategy, self.base.extract, p, tables)
                    .expect("micro-lookup succeeds");
                PatternLookup {
                    latency: o.ready_at.max(t0) - t0,
                    entries_processed: o.entries_processed,
                    get_ops: o.get_ops,
                    uris: o.uris,
                }
            })
            .collect();
        let out = Rc::new(out);
        self.lookups.borrow_mut().insert(key, out.clone());
        out
    }

    /// One pattern's twig evaluation on one document (memoized). The
    /// result is strategy-independent — the plan only decides *which*
    /// documents are candidates.
    fn eval_doc(
        &self,
        fam_idx: usize,
        pat_idx: usize,
        uri: &str,
        query: &Query,
    ) -> Rc<(Vec<Tuple>, u64)> {
        let key = (fam_idx, pat_idx, uri.to_string());
        if let Some(e) = self.evals.borrow().get(&key) {
            return e.clone();
        }
        let (tuples, stats) = evaluate_pattern_twig(&self.docs[uri], &query.patterns[pat_idx]);
        let e = Rc::new((tuples, stats.candidates));
        self.evals.borrow_mut().insert(key, e.clone());
        e
    }

    /// Scores one candidate plan by composing the memoized per-partition
    /// micro-executions (see the module docs for exactly what is measured
    /// and what is modeled). Composition is faithful to the runtime:
    /// partitions own disjoint tables, so a pattern's look-up fans out and
    /// completes with the slowest partition, billed operations sum, and
    /// candidate URI sets union (scan partitions contribute all their
    /// documents to every pattern).
    fn estimate(
        &self,
        plan: &MixedPlan,
        workload: &[FamilyLoad],
        churn: &BTreeMap<String, u64>,
        horizon: &Horizon,
    ) -> PlanEstimate {
        let work = &self.base.work;
        let lpool = self.base.loader_pool;
        let lcores = lpool.itype.cores();
        let qitype = self.base.query_pool.itype;
        let (qcores, qecu) = (qitype.cores(), qitype.ecu_per_core());
        let assigned: Vec<(String, Option<Strategy>)> = self
            .partitions()
            .into_iter()
            .map(|p| {
                let s = plan.strategy_of(&p);
                (p, s)
            })
            .collect();

        // ---- Build + storage: sum the per-partition micro-builds. ----
        let mut put_ops_total = 0u64;
        let mut serial_build = SimDuration::ZERO;
        let mut stored_bytes = 0u64;
        for (p, s) in &assigned {
            let b = self.partition_build(p, *s);
            put_ops_total += b.puts;
            serial_build += b.serial;
            stored_bytes += b.stored_bytes;
        }
        let n_docs = self.uris.len() as u64;
        let build_cost = self.cost.prices.idx_put * put_ops_total
            + self.cost.prices.st_get * n_docs
            + self.vm(serial_build, lpool.itype, lcores)
            + self.cost.prices.qs_request * (2 * n_docs);
        let storage_per_month = self.cost.monthly_storage(self.corpus_bytes, stored_bytes);

        // Scan partitions contribute every document to every pattern.
        let scanned: Vec<&String> = self
            .uris
            .iter()
            .filter(|u| plan.strategy_for_uri(u).is_none())
            .collect();

        // ---- Queries: compose each family from the per-partition
        // look-ups and the memoized twig evaluations. ----
        let mut run_cost = Money::ZERO;
        let mut response_weighted = 0.0f64;
        let mut arrivals_total = 0u64;
        for (fam_idx, fam) in workload.iter().enumerate() {
            let npat = fam.query.patterns.len();
            let indexed: Vec<Rc<Vec<PatternLookup>>> = assigned
                .iter()
                .filter_map(|(p, s)| s.map(|s| self.partition_lookup(p, s, fam_idx, &fam.query)))
                .collect();
            let mut lookup_get = SimDuration::ZERO;
            let mut get_ops = 0u64;
            let mut entries_processed = 0u64;
            let mut per_pattern_uris: Vec<BTreeSet<&str>> = Vec::with_capacity(npat);
            for i in 0..npat {
                let mut uris: BTreeSet<&str> = scanned.iter().map(|u| u.as_str()).collect();
                let mut slowest = SimDuration::ZERO;
                for part in &indexed {
                    let o = &part[i];
                    slowest = slowest.max(o.latency);
                    get_ops += o.get_ops;
                    entries_processed += o.entries_processed;
                    uris.extend(o.uris.iter().map(String::as_str));
                }
                lookup_get += slowest;
                per_pattern_uris.push(uris);
            }
            let plan_time = work.plan(entries_processed, qecu);
            // Transfer + evaluate, serialized then divided across cores —
            // the same accounting as the query processor.
            let mut serial = SimDuration::ZERO;
            let mut fetched: BTreeSet<&str> = BTreeSet::new();
            for uris in &per_pattern_uris {
                for uri in uris {
                    if fetched.insert(uri) {
                        serial += self.fetch[*uri] + work.parse(self.doc_bytes[*uri], qecu);
                    }
                }
            }
            let mut per_pattern: Vec<Vec<Tuple>> = Vec::with_capacity(npat);
            for (i, uris) in per_pattern_uris.iter().enumerate() {
                let mut tuples = Vec::new();
                for uri in uris {
                    let ev = self.eval_doc(fam_idx, i, uri, &fam.query);
                    serial += work.eval(ev.1, qecu);
                    tuples.extend(ev.0.iter().cloned());
                }
                per_pattern.push(tuples);
            }
            let tuple_count: u64 = per_pattern.iter().map(|v| v.len() as u64).sum();
            let results = join_pattern_results(&fam.query, &per_pattern);
            serial += work.plan(tuple_count, qecu);
            let result_bytes: u64 = results
                .iter()
                .map(|r| {
                    r.columns.iter().map(String::len).sum::<usize>() as u64 + r.columns.len() as u64
                })
                .sum();
            serial += work.materialize(result_bytes, qecu);
            let wall = SimDuration::from_micros(serial.micros() / qcores as u64);
            let ptq = lookup_get + plan_time + wall;
            let per_query =
                self.cost
                    .query_indexed(result_bytes, get_ops, fetched.len() as u64, ptq, qitype);
            run_cost += per_query * fam.arrivals;
            response_weighted += ptq.as_secs_f64() * fam.arrivals as f64;
            arrivals_total += fam.arrivals;
        }
        let mean_response_secs = if arrivals_total == 0 {
            0.0
        } else {
            response_weighted / arrivals_total as f64
        };

        // ---- Maintenance: per run, the declared churn re-indexes its
        // documents (new entries written, stale ones retracted — both
        // billed as index writes) wherever the partition is indexed. ----
        let mut maintenance = Money::ZERO;
        for (partition, &count) in churn {
            let build = self.partition_build(partition, plan.strategy_of(partition));
            let mut remaining = count;
            for uri in &self.uris {
                if remaining == 0 {
                    break;
                }
                if partition_of(uri) != partition {
                    continue;
                }
                remaining -= 1;
                let Some(&(puts, serial_doc)) = build.per_doc.get(uri) else {
                    continue;
                };
                if puts == 0 {
                    continue; // unindexed partitions churn free
                }
                maintenance += self.cost.prices.idx_put * (2 * puts)
                    + self.cost.prices.st_get
                    + self.cost.prices.qs_request * 2
                    + self.vm(serial_doc, lpool.itype, lcores);
            }
        }

        let projected_total = build_cost
            + (run_cost + maintenance) * horizon.expected_runs as u64
            + months_scaled(storage_per_month, horizon.months);
        PlanEstimate {
            label: self.label_of(plan),
            plan: plan.clone(),
            build_cost,
            storage_per_month,
            run_cost,
            maintenance_per_run: maintenance,
            mean_response_secs,
            projected_total,
        }
    }
}

/// Scores one mixed plan against a sample and weighted workload without
/// running a deployment. See the module docs for the method and
/// [`ESTIMATE_TOLERANCE`] for the accuracy contract.
pub fn estimate_plan(
    sample: &[(String, String)],
    plan: &MixedPlan,
    workload: &[FamilyLoad],
    churn: &BTreeMap<String, u64>,
    horizon: &Horizon,
    base: &WarehouseConfig,
) -> PlanEstimate {
    Scenario::new(sample, base).estimate(plan, workload, churn, horizon)
}

fn better(a: &PlanEstimate, b: &PlanEstimate) -> bool {
    (a.projected_total, a.label.as_str()) < (b.projected_total, b.label.as_str())
}

/// Runs the adaptive advisor: searches per-partition strategy assignments
/// for the cheapest plan over the horizon whose monthly storage fits the
/// budget.
///
/// * `sample` — representative documents `(uri, xml)`, partitioned by URI
///   prefix;
/// * `workload` — the observed query families with arrival weights
///   (typically [`observed_families`] over live attribution);
/// * `churn` — documents replaced per workload run, per partition;
/// * `horizon` — runs, months and the optional monthly budget;
/// * `base` — deployment parameters (pools, prices, work model).
///
/// With ≤ 4 partitions the assignment space is searched exhaustively
/// (5^P plans), so the chosen plan is a true argmin and can only tie or
/// beat every uniform layout; beyond that, deterministic coordinate
/// descent from the best uniform layout refines one partition at a time.
pub fn advise_adaptive(
    sample: &[(String, String)],
    workload: &[FamilyLoad],
    churn: &BTreeMap<String, u64>,
    horizon: &Horizon,
    base: &WarehouseConfig,
) -> AdaptiveAdvice {
    let scenario = Scenario::new(sample, base);
    let partitions = scenario.partitions();
    let default = routable_default(base);
    let score = |plan: &MixedPlan| scenario.estimate(plan, workload, churn, horizon);

    // The five uniform layouts always compete (and seed the search).
    let mut uniform: Vec<PlanEstimate> = PARTITION_CANDIDATES
        .iter()
        .map(|&s| score(&MixedPlan::uniform(s)))
        .collect();

    let assemble = |assignment: &[Option<Strategy>]| {
        let mut plan = MixedPlan::uniform(Some(default));
        for (p, &s) in partitions.iter().zip(assignment) {
            plan.assign(p, s);
        }
        plan
    };

    // Every scored candidate competes twice: for the unconstrained
    // optimum, and for the cheapest plan satisfying the declared
    // constraints (monthly budget, response SLO). Tracking both across
    // the *whole* search means the constrained answer is a true argmin
    // over the searched space, not a fallback to uniform layouts.
    fn consider(est: &PlanEstimate, slot: &mut Option<PlanEstimate>) {
        match slot {
            Some(b) if !better(est, b) => {}
            _ => *slot = Some(est.clone()),
        }
    }
    let mut best: Option<PlanEstimate> = None;
    let mut fitting: Option<PlanEstimate> = None;
    let weigh = |est: &PlanEstimate,
                 best: &mut Option<PlanEstimate>,
                 fitting: &mut Option<PlanEstimate>| {
        if est.satisfies(horizon) {
            consider(est, fitting);
        }
        consider(est, best);
    };
    for u in &uniform {
        weigh(u, &mut best, &mut fitting);
    }
    if partitions.len() <= 4 {
        // Exhaustive: every per-partition assignment.
        let n = PARTITION_CANDIDATES.len().pow(partitions.len() as u32);
        for mut code in 0..n {
            let assignment: Vec<Option<Strategy>> = (0..partitions.len())
                .map(|_| {
                    let s = PARTITION_CANDIDATES[code % PARTITION_CANDIDATES.len()];
                    code /= PARTITION_CANDIDATES.len();
                    s
                })
                .collect();
            weigh(&score(&assemble(&assignment)), &mut best, &mut fitting);
        }
    } else {
        // Coordinate descent from the best uniform layout.
        let seed = uniform
            .iter()
            .min_by(|a, b| {
                (a.projected_total, a.label.as_str()).cmp(&(b.projected_total, b.label.as_str()))
            })
            .expect("five uniform candidates")
            .plan
            .clone();
        let mut assignment: Vec<Option<Strategy>> =
            partitions.iter().map(|p| seed.strategy_of(p)).collect();
        let mut current = score(&assemble(&assignment));
        weigh(&current, &mut best, &mut fitting);
        loop {
            let mut improved = false;
            for i in 0..partitions.len() {
                for &cand in &PARTITION_CANDIDATES {
                    if cand == assignment[i] {
                        continue;
                    }
                    let mut trial = assignment.clone();
                    trial[i] = cand;
                    let est = score(&assemble(&trial));
                    weigh(&est, &mut best, &mut fitting);
                    if better(&est, &current) {
                        assignment = trial;
                        current = est;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let best = best.expect("at least one candidate plan");

    // Constraints: cheapest searched candidate satisfying the monthly
    // budget and the response SLO (with none declared every candidate
    // satisfies vacuously, so this is the unconstrained argmin). The
    // uniform scan layout is the storage floor, so an unmeetable set of
    // constraints degrades there deterministically.
    let (chosen, budget_met) = match fitting {
        Some(est) => (est, true),
        None => {
            let floor = uniform
                .iter()
                .find(|e| e.plan.default_strategy().is_none())
                .expect("uniform scan candidate")
                .clone();
            (floor, false)
        }
    };

    uniform.push(chosen.clone());
    uniform.push(best);
    uniform.sort_by(|a, b| {
        (a.projected_total, a.label.as_str()).cmp(&(b.projected_total, b.label.as_str()))
    });
    uniform.dedup_by(|a, b| a.label == b.label);
    AdaptiveAdvice {
        chosen,
        ranked: uniform,
        budget_per_month: horizon.budget_per_month,
        budget_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warehouse::Warehouse;
    use amada_xmark::{generate_corpus, workload_query, CorpusConfig};

    /// A heterogeneous corpus: a hot partition (selectively queried), a
    /// cold partition (only ever scanned) and a churning partition
    /// (replaced between runs), equally sized.
    fn sample() -> Vec<(String, String)> {
        let cfg = CorpusConfig {
            num_documents: 18,
            target_doc_bytes: 1500,
            ..Default::default()
        };
        generate_corpus(&cfg)
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let prefix = ["hot/", "cold/", "churn/"][i % 3];
                (format!("{prefix}{}", d.uri), d.xml)
            })
            .collect()
    }

    /// Hot-skewed workload: the selective point query dominates arrivals,
    /// the low-selectivity scan query trickles in.
    fn workload() -> Vec<FamilyLoad> {
        vec![
            FamilyLoad {
                query: workload_query("q1").unwrap(),
                arrivals: 6,
            },
            FamilyLoad {
                query: workload_query("q6").unwrap(),
                arrivals: 1,
            },
        ]
    }

    fn horizon(runs: u32, budget: Option<Money>) -> Horizon {
        Horizon {
            expected_runs: runs,
            months: 1.0,
            budget_per_month: budget,
            response_slo: None,
        }
    }

    fn rel_diff(a: Money, b: Money) -> f64 {
        let (a, b) = (a.dollars(), b.dollars());
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            (a - b).abs() / a.max(b)
        }
    }

    /// Measures a real deployment of `plan` end to end: build-phase bill,
    /// monthly storage, and one arrival-weighted workload run.
    fn measured(plan: &MixedPlan, workload: &[FamilyLoad]) -> (Money, Money, Money) {
        let mut cfg = WarehouseConfig::default();
        cfg.strategy = routable_default(&cfg);
        cfg.mixed_plan = Some(plan.clone());
        let mut w = Warehouse::new(cfg);
        w.upload_documents(sample());
        let build = w.build_index().cost.total();
        let storage = w.storage_cost().total();
        let mut run = Money::ZERO;
        for fam in workload {
            for _ in 0..fam.arrivals {
                run += w.run_query(&fam.query).cost.total();
            }
        }
        (build, storage, run)
    }

    /// The accuracy contract: micro-execution estimates agree with a
    /// measured simulation within [`ESTIMATE_TOLERANCE`] on the build and
    /// per-run bills, and storage (exact op-for-op on both sides) agrees
    /// within 2%. Checked for a uniform layout and a genuinely mixed one.
    #[test]
    fn estimates_track_measured_deployments() {
        let base = WarehouseConfig::default();
        let workload = workload();
        let churn = BTreeMap::new();
        let plans = [
            MixedPlan::uniform(Some(Strategy::Lup)),
            MixedPlan::uniform(Some(Strategy::TwoLupi))
                .with("cold", None)
                .with("churn", Some(Strategy::Lu)),
        ];
        for plan in &plans {
            let est = estimate_plan(
                &sample(),
                plan,
                &workload,
                &churn,
                &horizon(10, None),
                &base,
            );
            let (build, storage, run) = measured(plan, &workload);
            assert!(
                rel_diff(est.storage_per_month, storage) <= 0.02,
                "{}: storage est {} vs measured {}",
                est.label,
                est.storage_per_month,
                storage
            );
            assert!(
                rel_diff(est.build_cost, build) <= ESTIMATE_TOLERANCE,
                "{}: build est {} vs measured {}",
                est.label,
                est.build_cost,
                build
            );
            assert!(
                rel_diff(est.run_cost, run) <= ESTIMATE_TOLERANCE,
                "{}: run est {} vs measured {}",
                est.label,
                est.run_cost,
                run
            );
        }
    }

    /// With ≤ 4 partitions the search is exhaustive, so the chosen plan
    /// ties or beats every uniform layout by construction — and on this
    /// heterogeneous workload (hot selective traffic, cold scans, a
    /// churning partition) it must *strictly* beat all five: uniformly
    /// heavy indexes overpay on the cold and churning partitions, uniform
    /// scan overpays on the hot traffic.
    #[test]
    fn adaptive_plan_beats_every_uniform_layout() {
        let mut churn = BTreeMap::new();
        churn.insert("churn".to_string(), 6u64);
        let advice = advise_adaptive(
            &sample(),
            &workload(),
            &churn,
            &horizon(200, None),
            &WarehouseConfig::default(),
        );
        let uniforms: Vec<&PlanEstimate> = advice
            .ranked
            .iter()
            .filter(|e| e.label.starts_with("uniform:"))
            .collect();
        assert_eq!(uniforms.len(), 5, "{:?}", advice.ranked.len());
        for u in &uniforms {
            assert!(
                advice.chosen.projected_total < u.projected_total,
                "chosen {} ({}) vs {} ({})",
                advice.chosen.label,
                advice.chosen.projected_total,
                u.label,
                u.projected_total
            );
        }
        // The winner is genuinely mixed: it indexes the hot partition and
        // declines to keep a full-price index on the churning one.
        let plan = &advice.chosen.plan;
        assert!(plan.strategy_of("hot").is_some(), "{}", advice.chosen.label);
        assert_ne!(
            plan.strategy_of("churn"),
            plan.strategy_of("hot"),
            "churn should not carry the hot partition's index: {}",
            advice.chosen.label
        );
        assert!(advice.budget_met);
        // Determinism: advising twice yields the same plan and numbers.
        let again = advise_adaptive(
            &sample(),
            &workload(),
            &churn,
            &horizon(200, None),
            &WarehouseConfig::default(),
        );
        assert_eq!(again.chosen.label, advice.chosen.label);
        assert_eq!(again.chosen.projected_total, advice.chosen.projected_total);
    }

    /// The budget constraint binds: a ceiling below the unconstrained
    /// winner's storage forces a cheaper-to-store plan, and a ceiling
    /// below even the scan layout's (the data itself) is reported unmet
    /// while still recommending the storage floor.
    #[test]
    fn budget_constrains_the_choice() {
        let base = WarehouseConfig::default();
        let churn = BTreeMap::new();
        let free = advise_adaptive(&sample(), &workload(), &churn, &horizon(200, None), &base);
        assert!(free.budget_met);
        let scan_storage = free
            .ranked
            .iter()
            .find(|e| e.label == "uniform:scan")
            .unwrap()
            .storage_per_month;
        assert!(
            free.chosen.storage_per_month > scan_storage,
            "the unconstrained winner should hold an index"
        );
        // A budget between the scan floor and the winner's appetite.
        let budget = scan_storage
            + (free.chosen.storage_per_month.saturating_sub(scan_storage)).scaled(1, 2);
        let capped = advise_adaptive(
            &sample(),
            &workload(),
            &churn,
            &horizon(200, Some(budget)),
            &base,
        );
        assert!(capped.budget_met);
        assert!(capped.chosen.within_budget(budget));
        assert!(
            capped.chosen.projected_total >= free.chosen.projected_total,
            "a binding budget cannot make the horizon cheaper"
        );
        // An impossible budget: even the data alone exceeds it.
        let impossible = advise_adaptive(
            &sample(),
            &workload(),
            &churn,
            &horizon(200, Some(Money::ZERO)),
            &base,
        );
        assert!(!impossible.budget_met);
        assert_eq!(impossible.chosen.label, "uniform:scan");
    }

    /// The response SLO binds: without one the dollars-optimal plan may
    /// leave partitions unindexed (scan-heavy but cheap); a declared
    /// ceiling excludes those candidates, so the chosen plan estimates at
    /// or under the SLO even when a slower plan projects cheaper. An
    /// unmeetable SLO is reported honestly.
    #[test]
    fn response_slo_constrains_the_choice() {
        let base = WarehouseConfig::default();
        let churn = BTreeMap::new();
        let free = advise_adaptive(&sample(), &workload(), &churn, &horizon(200, None), &base);
        // A ceiling just under the unconstrained winner's estimate forces
        // a faster plan (or reports the miss) — never a silent violation.
        let slo = free.chosen.mean_response_secs * 0.99;
        let mut h = horizon(200, None);
        h.response_slo = Some(slo);
        let capped = advise_adaptive(&sample(), &workload(), &churn, &h, &base);
        if capped.budget_met {
            assert!(
                capped.chosen.meets_slo(slo),
                "chosen {} estimates {:.4}s over the {:.4}s SLO",
                capped.chosen.label,
                capped.chosen.mean_response_secs,
                slo
            );
            assert!(
                capped.chosen.projected_total >= free.chosen.projected_total,
                "a binding SLO cannot make the horizon cheaper"
            );
        }
        // An impossible SLO: nothing answers in zero seconds.
        let mut h = horizon(200, None);
        h.response_slo = Some(0.0);
        let impossible = advise_adaptive(&sample(), &workload(), &churn, &h, &base);
        assert!(!impossible.budget_met);
        assert_eq!(impossible.chosen.label, "uniform:scan");
    }

    /// Attribution-to-workload glue: open-loop arrival names collapse to
    /// families, arrivals are counted, and only catalog queries survive.
    #[test]
    fn observed_families_collapse_arrivals_and_match_the_catalog() {
        use amada_cloud::{Ctx, Phase, ServiceKind, Span};
        let span = |q: &str| {
            let ctx = Ctx {
                phase: Phase::Query,
                query: Some(q.into()),
                doc: None,
                actor: None,
            };
            Span::new(ServiceKind::Kv, "get", SimTime::ZERO, SimTime(1), &ctx)
                .billed(Money::from_pico(5))
        };
        let spans = vec![
            span("q1#0"),
            span("q1#1"),
            span("q1#1"),
            span("q6#0"),
            span("mystery#0"),
        ];
        let attr = Attribution::attribute(&spans);
        let catalog = vec![workload_query("q1").unwrap(), workload_query("q6").unwrap()];
        let families = observed_families(&attr, &catalog);
        assert_eq!(families.len(), 2, "the unknown family is skipped");
        assert_eq!(families[0].query.name.as_deref(), Some("q1"));
        assert_eq!(families[0].arrivals, 2, "arrivals, not spans");
        assert_eq!(families[1].query.name.as_deref(), Some("q6"));
        assert_eq!(families[1].arrivals, 1);
    }
}
