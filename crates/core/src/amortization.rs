//! Index cost amortization (paper Section 8.3, Figure 13).
//!
//! For a strategy `I` and workload `W`, the *benefit* of `I` for `W` is
//! the monetary difference between answering `W` with no index and
//! answering it with the index built by `I`. Each run of `W` saves that
//! benefit; the index cost is recovered at the run where the cumulated
//! benefit crosses the building cost — "the cost is recovered when the
//! curves cross the Y = 0 axis".

use amada_cloud::Money;

/// One point of the amortization curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmortizationPoint {
    /// Number of workload runs so far.
    pub runs: u32,
    /// `runs × benefit(I, W) − buildingCost(I)`, in picodollars (may be
    /// negative before break-even).
    pub net_pico: i128,
}

impl AmortizationPoint {
    /// The net value in (possibly negative) dollars.
    pub fn net_dollars(&self) -> f64 {
        self.net_pico as f64 / 1e12
    }
}

/// The amortization analysis for one strategy.
#[derive(Debug, Clone)]
pub struct Amortization {
    /// Index building cost (`ci$`).
    pub build_cost: Money,
    /// Cost of one workload run without an index.
    pub run_cost_no_index: Money,
    /// Cost of one workload run with the index.
    pub run_cost_indexed: Money,
}

impl Amortization {
    /// The per-run benefit; zero when the index does not help.
    pub fn benefit_per_run(&self) -> Money {
        self.run_cost_no_index.saturating_sub(self.run_cost_indexed)
    }

    /// The curve `runs ↦ runs × benefit − build_cost` for
    /// `0..=max_runs`.
    pub fn curve(&self, max_runs: u32) -> Vec<AmortizationPoint> {
        let benefit = self.benefit_per_run().pico() as i128;
        let build = self.build_cost.pico() as i128;
        (0..=max_runs)
            .map(|runs| AmortizationPoint {
                runs,
                net_pico: benefit * runs as i128 - build,
            })
            .collect()
    }

    /// The first run count at which the cumulated benefit covers the
    /// building cost, or `None` if the index never pays off.
    pub fn breakeven_runs(&self) -> Option<u32> {
        let benefit = self.benefit_per_run().pico();
        if benefit == 0 {
            return if self.build_cost == Money::ZERO {
                Some(0)
            } else {
                None
            };
        }
        // A pathological build/benefit ratio (huge build, picodollar
        // benefit) exceeds u32 runs; saturate instead of letting the cast
        // wrap to a bogus early break-even.
        Some(u32::try_from(self.build_cost.pico().div_ceil(benefit)).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(build: f64, no_index: f64, indexed: f64) -> Amortization {
        Amortization {
            build_cost: Money::from_dollars(build),
            run_cost_no_index: Money::from_dollars(no_index),
            run_cost_indexed: Money::from_dollars(indexed),
        }
    }

    #[test]
    fn breakeven_matches_curve_zero_crossing() {
        let am = a(26.64, 7.0, 0.5); // ≈ the paper's LU numbers
        let be = am.breakeven_runs().unwrap();
        assert_eq!(be, 5); // 26.64 / 6.5 = 4.1 → 5 runs
        let curve = am.curve(10);
        assert!(curve[be as usize].net_pico >= 0);
        assert!(curve[be as usize - 1].net_pico < 0);
    }

    #[test]
    fn curve_starts_at_minus_build_cost() {
        let am = a(10.0, 2.0, 1.0);
        let c = am.curve(3);
        assert_eq!(c[0].runs, 0);
        assert!((c[0].net_dollars() + 10.0).abs() < 1e-9);
        assert!((c[3].net_dollars() + 7.0).abs() < 1e-9);
    }

    #[test]
    fn useless_index_never_breaks_even() {
        let am = a(10.0, 1.0, 2.0); // indexed run costs more
        assert_eq!(am.benefit_per_run(), Money::ZERO);
        assert_eq!(am.breakeven_runs(), None);
    }

    #[test]
    fn pathological_ratio_saturates_instead_of_wrapping() {
        // $1000 build recovered one picodollar per run: 10^15 runs, far
        // beyond u32::MAX. The old `as u32` cast wrapped this to a small
        // bogus break-even (10^15 mod 2^32 ≈ 2.8 × 10^9... truncated
        // further), reporting the index pays off when it never will in
        // any feasible horizon.
        let am = Amortization {
            build_cost: Money::from_dollars(1000.0),
            run_cost_no_index: Money::from_pico(2),
            run_cost_indexed: Money::from_pico(1),
        };
        assert_eq!(am.breakeven_runs(), Some(u32::MAX));
        // Ratios inside the u32 range are untouched.
        let sane = a(26.64, 7.0, 0.5);
        assert_eq!(sane.breakeven_runs(), Some(5));
    }

    #[test]
    fn cheaper_index_breaks_even_sooner() {
        let lu = a(26.64, 7.0, 0.5);
        let lupi = a(99.44, 7.0, 0.6);
        assert!(lu.breakeven_runs().unwrap() < lupi.breakeven_runs().unwrap());
    }
}
