//! The warehouse's module programs, as discrete-event actors.
//!
//! * [`LoaderCore`] — one per core of each indexing-module instance
//!   (architecture steps 4–6): lease a document message, fetch the
//!   document from the file store, extract index entries, batch-write them
//!   to the index store, delete the message. The core is a state machine
//!   issuing **one index-store call per engine step**, so that concurrent
//!   cores interleave their writes at their true virtual arrival times and
//!   the store's provisioned-throughput queue sees the real concurrency
//!   (this is what makes the multi-instance indexing of Table 4 /
//!   Figure 10 behave like the paper's).
//! * [`QueryCore`] — one per query-processor instance (steps 9–15): lease
//!   a query message, look the query up in the index, fetch the candidate
//!   documents, evaluate, store results, respond. The paper treats one
//!   query as an atomic unit of processing on one instance, with
//!   intra-machine parallelism from multi-threading; the model reflects
//!   that by dividing the transfer + evaluation phase across the
//!   instance's cores. A query issues only a handful of index gets, so it
//!   executes in a single step; the residual arrival-order skew across
//!   concurrent query instances is bounded by those few calls.
//!
//! Fault tolerance comes for free from the queue semantics: a core
//! configured to "crash" (`crash_after`) simply stops deleting its leased
//! message; after the visibility timeout the message reappears and another
//! core takes the job over (paper Section 3).

use crate::config::{
    WarehouseConfig, DOC_BUCKET, LOADER_QUEUE, QUERY_QUEUE, RESPONSE_QUEUE, RESULT_BUCKET,
};
use crate::metrics::{QueryExecution, QueryPhases};
use amada_cloud::{Actor, InstanceId, KvItem, SimDuration, SimTime, StepResult, World};
use amada_index::{lookup_query, store::UuidGen, ExtractCache, ExtractOptions, Strategy};
use amada_pattern::{evaluate_pattern_twig, join_pattern_results, parse_query, Query, Tuple};
use amada_xml::Document;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Host-side cache of parsed documents and memoized extraction results,
/// keyed by URI and validated by a content hash computed once per upload,
/// so that re-uploading a changed document under the same URI is
/// re-parsed (virtual time still charges every parse and extraction —
/// cloud instances are stateless across tasks; the cache only spares the
/// simulation host). Sharded and `Send + Sync`: the warehouse prewarms it
/// across all host cores before the single-threaded engine runs.
pub type DocCache = Arc<ExtractCache>;

/// Aggregated loader-side totals (shared across all loader cores).
#[derive(Debug, Default)]
pub struct LoaderTotals {
    /// Documents indexed.
    pub docs: u64,
    /// Entries extracted.
    pub entries: u64,
    /// Items written.
    pub items: u64,
    /// Raw entry bytes.
    pub entry_bytes: u64,
    /// Summed per-core extraction (parse + extract) time, microseconds.
    pub extraction_micros: u64,
    /// Summed per-core index-upload wait time, microseconds.
    pub upload_micros: u64,
}

/// What a loader core is doing between steps.
enum LoaderState {
    /// About to poll the task queue.
    Idle,
    /// Writing the current document's item batches, one per step.
    Uploading {
        msg_id: u64,
        batches: VecDeque<(&'static str, Vec<KvItem>)>,
        entries: u64,
        items: u64,
        entry_bytes: u64,
    },
    /// All batches written; deleting the task message.
    Finishing { msg_id: u64 },
}

/// One core of an indexing-module instance.
pub struct LoaderCore {
    /// The instance this core belongs to (for uptime billing).
    pub instance: InstanceId,
    /// The core's compute rating.
    pub ecu: f64,
    /// Indexing strategy.
    pub strategy: Strategy,
    /// Extraction options.
    pub opts: ExtractOptions,
    /// Shared totals.
    pub totals: Rc<RefCell<LoaderTotals>>,
    /// Host document cache.
    pub cache: DocCache,
    /// Message lease duration.
    pub visibility: SimDuration,
    /// Idle poll interval.
    pub poll: SimDuration,
    /// Fault injection: crash (stop deleting leases) after this many
    /// messages.
    pub crash_after: Option<u32>,
    /// Messages fully processed so far.
    pub processed: u32,
    state: LoaderState,
}

impl LoaderCore {
    /// Creates an idle core.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        instance: InstanceId,
        ecu: f64,
        strategy: Strategy,
        opts: ExtractOptions,
        totals: Rc<RefCell<LoaderTotals>>,
        cache: DocCache,
        visibility: SimDuration,
        poll: SimDuration,
    ) -> LoaderCore {
        LoaderCore {
            instance,
            ecu,
            strategy,
            opts,
            totals,
            cache,
            visibility,
            poll,
            crash_after: None,
            processed: 0,
            state: LoaderState::Idle,
        }
    }

    /// Builds the cores for one instance pool from a warehouse config.
    pub fn pool(
        cfg: &WarehouseConfig,
        world: &mut World,
        now: SimTime,
        totals: &Rc<RefCell<LoaderTotals>>,
        cache: &DocCache,
    ) -> Vec<LoaderCore> {
        let mut cores = Vec::new();
        for _ in 0..cfg.loader_pool.count {
            let instance = world.ec2.launch(cfg.loader_pool.itype, now);
            for _ in 0..cfg.loader_pool.itype.cores() {
                cores.push(LoaderCore::new(
                    instance,
                    cfg.loader_pool.itype.ecu_per_core(),
                    cfg.strategy,
                    cfg.extract,
                    totals.clone(),
                    cache.clone(),
                    cfg.visibility,
                    cfg.poll_interval,
                ));
            }
        }
        cores
    }

    /// Steps 4–5 plus extraction: lease a message, fetch and parse the
    /// document, extract and encode the entries. Returns the next state
    /// and the time all of that completed.
    fn start_document(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let (msg, t) = world.sqs.receive(now, LOADER_QUEUE, self.visibility);
        let Some(msg) = msg else {
            world.ec2.extend(self.instance, t);
            return if world.sqs.drained(LOADER_QUEUE) {
                StepResult::Done
            } else {
                StepResult::NextAt(t + self.poll)
            };
        };
        if self.crash_after.is_some_and(|n| self.processed >= n) {
            // Simulated crash after lease acquisition: the message is
            // neither processed nor deleted; SQS will redeliver it.
            return StepResult::Done;
        }
        self.processed += 1;
        let uri = msg.body.clone();
        // Step 5: load the document from the file store.
        let (bytes, t) = world
            .s3
            .get(t, DOC_BUCKET, &uri)
            .expect("loader messages reference stored documents");
        // Parse, extract, encode (memoized on the host after the prewarm
        // stage; virtually charged in full either way).
        let (_doc, entries) = self.cache.extracted(&uri, &bytes, self.strategy, self.opts);
        let entry_bytes: u64 = entries.iter().map(|e| e.raw_bytes() as u64).sum();
        let extraction = world.work.parse(bytes.len() as u64, self.ecu)
            + world.work.extract(entry_bytes, self.ecu);
        let t = t + extraction;
        self.totals.borrow_mut().extraction_micros += extraction.micros();
        let profile = world.kv.profile();
        let mut uuids = UuidGen::for_document(&uri);
        let mut per_table: HashMap<&'static str, Vec<KvItem>> = HashMap::new();
        for e in entries.iter() {
            per_table
                .entry(e.table)
                .or_default()
                .extend(amada_index::store::encode_entry(e, &profile, &mut uuids));
        }
        let mut batches = VecDeque::new();
        let mut items = 0u64;
        for table in self.strategy.tables() {
            if let Some(table_items) = per_table.remove(table) {
                items += table_items.len() as u64;
                for chunk in table_items.chunks(profile.batch_put_limit) {
                    batches.push_back((*table, chunk.to_vec()));
                }
            }
        }
        self.state = LoaderState::Uploading {
            msg_id: msg.id,
            batches,
            entries: entries.len() as u64,
            items,
            entry_bytes,
        };
        StepResult::NextAt(t)
    }
}

impl Actor for LoaderCore {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let result = match &mut self.state {
            LoaderState::Idle => self.start_document(now, world),
            LoaderState::Uploading {
                msg_id,
                batches,
                entries,
                items,
                entry_bytes,
            } => {
                // Step 6: submit all of the document's batches *at once*
                // (the paper's uploader is multi-threaded per instance, so
                // batch writes are in flight concurrently); the store's
                // capacity queue serializes them, and the core proceeds
                // when the last acknowledgement arrives. Submitting at one
                // arrival time also keeps concurrent cores' writes
                // interleaved at their true virtual times.
                let mut last = now;
                while let Some((table, batch)) = batches.pop_front() {
                    let done = world
                        .kv
                        .batch_put(now, table, batch)
                        .expect("index entries fit the store limits");
                    last = last.max(done);
                }
                self.totals.borrow_mut().upload_micros += (last - now).micros();
                let mut tot = self.totals.borrow_mut();
                tot.docs += 1;
                tot.entries += *entries;
                tot.items += *items;
                tot.entry_bytes += *entry_bytes;
                let msg_id = *msg_id;
                drop(tot);
                self.state = LoaderState::Finishing { msg_id };
                StepResult::NextAt(last)
            }
            LoaderState::Finishing { msg_id } => {
                let t = world.sqs.delete(now, LOADER_QUEUE, *msg_id);
                self.state = LoaderState::Idle;
                StepResult::NextAt(t)
            }
        };
        if let StepResult::NextAt(t) = result {
            world.ec2.extend(self.instance, t);
        }
        result
    }
}

/// A query-processor instance (the whole instance: the transfer/eval phase
/// is divided across its cores, per the paper's intra-machine
/// parallelism).
pub struct QueryCore {
    /// The instance (for uptime billing).
    pub instance: InstanceId,
    /// Cores on the instance.
    pub cores: usize,
    /// Compute rating per core.
    pub ecu: f64,
    /// `Some(strategy)` to use the index, `None` for the no-index baseline
    /// that scans the whole corpus.
    pub strategy: Option<Strategy>,
    /// Extraction options (must match how the index was built).
    pub opts: ExtractOptions,
    /// Host document cache.
    pub cache: DocCache,
    /// Message lease duration.
    pub visibility: SimDuration,
    /// Idle poll interval.
    pub poll: SimDuration,
    /// Completed executions (shared with the warehouse).
    pub executions: Rc<RefCell<Vec<QueryExecution>>>,
    /// Fault injection: crash after this many messages.
    pub crash_after: Option<u32>,
    /// Messages fully processed so far.
    pub processed: u32,
}

impl QueryCore {
    /// Builds one actor per query-pool instance.
    pub fn pool(
        cfg: &WarehouseConfig,
        world: &mut World,
        now: SimTime,
        strategy: Option<Strategy>,
        executions: &Rc<RefCell<Vec<QueryExecution>>>,
        cache: &DocCache,
    ) -> Vec<QueryCore> {
        (0..cfg.query_pool.count)
            .map(|_| QueryCore {
                instance: world.ec2.launch(cfg.query_pool.itype, now),
                cores: cfg.query_pool.itype.cores(),
                ecu: cfg.query_pool.itype.ecu_per_core(),
                strategy,
                opts: cfg.extract,
                cache: cache.clone(),
                visibility: cfg.visibility,
                poll: cfg.poll_interval,
                executions: executions.clone(),
                crash_after: None,
                processed: 0,
            })
            .collect()
    }

    /// Executes one query message; returns the completion time.
    fn process(&mut self, msg_id: u64, body: &str, t0: SimTime, world: &mut World) -> SimTime {
        let (name, text) = body
            .split_once('\n')
            .expect("query messages carry name\\nquery");
        let query: Query = parse_query(text).expect("stored queries are well-formed");

        // Phase 1+2: index look-up and plan execution (step 10–12).
        let mut phases = QueryPhases::default();
        let mut docs_from_index = 0usize;
        let mut index_get_ops = 0u64;
        // Per pattern: the candidate documents to evaluate it on.
        let per_pattern_uris: Vec<Vec<String>>;
        let mut t = t0;
        match self.strategy {
            Some(strategy) => {
                let lookup = lookup_query(world.kv.as_mut(), t, strategy, self.opts, &query)
                    .expect("index look-up succeeds");
                let t_get = lookup.ready_at();
                phases.lookup_get = t_get - t;
                let plan = world.work.plan(lookup.entries_processed(), self.ecu);
                phases.plan = plan;
                t = t_get + plan;
                docs_from_index = lookup.total_doc_ids;
                index_get_ops = lookup.get_ops();
                per_pattern_uris = lookup.per_pattern.into_iter().map(|o| o.uris).collect();
            }
            None => {
                // No index: every pattern is evaluated on every document.
                let all = world.s3.list(DOC_BUCKET).expect("document bucket exists");
                per_pattern_uris = vec![all; query.patterns.len()];
            }
        }

        // Phase 3: transfer candidate documents and evaluate (steps 13–14).
        // Work is accumulated serially and divided across the cores.
        let mut serial = SimDuration::ZERO;
        let mut fetched: BTreeSet<&String> = BTreeSet::new();
        let mut docs: HashMap<&String, Arc<Document>> = HashMap::new();
        for uris in &per_pattern_uris {
            for uri in uris {
                if !fetched.insert(uri) {
                    continue;
                }
                let (bytes, resp) = world
                    .s3
                    .get(t, DOC_BUCKET, uri)
                    .expect("candidate documents exist");
                serial += resp - t;
                serial += world.work.parse(bytes.len() as u64, self.ecu);
                docs.insert(uri, self.cache.parsed(uri, &bytes));
            }
        }
        let mut per_pattern: Vec<Vec<Tuple>> = Vec::with_capacity(query.patterns.len());
        for (p, uris) in query.patterns.iter().zip(&per_pattern_uris) {
            let mut tuples = Vec::new();
            for uri in uris {
                let doc = &docs[uri];
                let (t_p, stats) = evaluate_pattern_twig(doc, p);
                serial += world.work.eval(stats.candidates, self.ecu);
                tuples.extend(t_p);
            }
            per_pattern.push(tuples);
        }
        let tuple_count: u64 = per_pattern.iter().map(|v| v.len() as u64).sum();
        let results = join_pattern_results(&query, &per_pattern);
        serial += world.work.plan(tuple_count, self.ecu);
        // `|r(q)|` is the size of the materialized result object — the
        // same bytes stored in the file store and later egressed.
        let mut payload = String::new();
        for r in &results {
            payload.push_str(&r.columns.join("\t"));
            payload.push('\n');
        }
        let result_bytes = payload.len() as u64;
        serial += world.work.materialize(result_bytes, self.ecu);
        let wall = SimDuration::from_micros(serial.micros() / self.cores as u64);
        phases.transfer_eval = wall;
        t = t + wall;

        // Step 14–15: store results, respond, delete the task message.
        let result_key = format!("{name}-{msg_id}.results");
        let t = world
            .s3
            .put(t, RESULT_BUCKET, &result_key, payload.into_bytes())
            .expect("result bucket exists");
        let t = world.sqs.send(t, RESPONSE_QUEUE, result_key);
        let t_done = world.sqs.delete(t, QUERY_QUEUE, msg_id);

        let docs_with_results: BTreeSet<&str> = results
            .iter()
            .flat_map(|r| r.uris.iter().map(|u| &**u))
            .collect();
        self.executions.borrow_mut().push(QueryExecution {
            name: name.to_string(),
            strategy: self.strategy,
            response_time: t_done - t0,
            phases,
            docs_from_index,
            docs_fetched: fetched.len(),
            docs_with_results: docs_with_results.len(),
            result_bytes,
            results,
            index_get_ops,
        });
        t_done
    }
}

impl Actor for QueryCore {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let (msg, t) = world.sqs.receive(now, QUERY_QUEUE, self.visibility);
        let Some(msg) = msg else {
            world.ec2.extend(self.instance, t);
            return if world.sqs.drained(QUERY_QUEUE) {
                StepResult::Done
            } else {
                StepResult::NextAt(t + self.poll)
            };
        };
        if self.crash_after.is_some_and(|n| self.processed >= n) {
            return StepResult::Done;
        }
        self.processed += 1;
        let t_done = self.process(msg.id, &msg.body.clone(), t, world);
        world.ec2.extend(self.instance, t_done);
        StepResult::NextAt(t_done)
    }
}
