//! The warehouse's module programs, as discrete-event actors.
//!
//! * [`LoaderCore`] — one per core of each indexing-module instance
//!   (architecture steps 4–6): lease a document message, fetch the
//!   document from the file store, extract index entries, batch-write them
//!   to the index store, delete the message. The core is a state machine
//!   issuing **one index-store call per engine step**, so that concurrent
//!   cores interleave their writes at their true virtual arrival times and
//!   the store's provisioned-throughput queue sees the real concurrency
//!   (this is what makes the multi-instance indexing of Table 4 /
//!   Figure 10 behave like the paper's).
//! * [`QueryCore`] — one per query-processor instance (steps 9–15): lease
//!   a query message, look the query up in the index, fetch the candidate
//!   documents, evaluate, store results, respond. The paper treats one
//!   query as an atomic unit of processing on one instance, with
//!   intra-machine parallelism from multi-threading; the model reflects
//!   that by dividing the transfer + evaluation phase across the
//!   instance's cores. A query issues only a handful of index gets, so it
//!   executes in a single step; the residual arrival-order skew across
//!   concurrent query instances is bounded by those few calls.
//!
//! Fault tolerance follows the paper's Section 3 contract. A working core
//! renews the visibility lease on the message that started its task
//! ([`Lease`], at the lease half-life); a core configured to "crash"
//! (`crash_after`, or mid-upload via `crash_after_batches`) simply stops
//! stepping, its renewals stop, and after the visibility timeout the
//! message reappears for another core. Transient service throttles
//! (`amada_cloud::fault`) are retried with capped exponential backoff and
//! deterministic jitter; a *pre-commit* operation that exhausts its retry
//! budget abandons the task to redelivery, while commit operations retry
//! without bound so each task completes exactly once. A message delivered
//! more than `RetryPolicy::max_receives` times is dead-lettered. Every
//! retry is a billed request.

use crate::autoscale::DrainSignal;
use crate::config::{
    WarehouseConfig, DEAD_LETTER_QUEUE, DOC_BUCKET, LOADER_QUEUE, QUERY_QUEUE, RESPONSE_QUEUE,
    RESULT_BUCKET,
};
use crate::metrics::{QueryExecution, QueryPhases};
use crate::retry::{delete_with_retry, send_with_retry, Lease, RetryPolicy};
use amada_cloud::{
    Actor, ActorTag, InstanceId, KvError, KvItem, Phase, S3Error, ServiceKind, SimDuration,
    SimTime, Span, SqsError, StepResult, World,
};
use amada_index::{
    decode_tuples, lookup_mixed, lookup_query, partition_of, partition_tables, retarget_entries,
    store::UuidGen, ExtractCache, ExtractOptions, ItemKey, MixedPlan, ScanPredicate, Strategy,
};
use amada_pattern::{evaluate_pattern_twig, join_pattern_results, parse_query, Query, Tuple};
use amada_rng::StdRng;
use amada_xml::Document;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Host-side cache of parsed documents and memoized extraction results,
/// keyed by URI and validated by a content hash computed once per upload,
/// so that re-uploading a changed document under the same URI is
/// re-parsed (virtual time still charges every parse and extraction —
/// cloud instances are stateless across tasks; the cache only spares the
/// simulation host). Sharded and `Send + Sync`: the warehouse prewarms it
/// across all host cores before the single-threaded engine runs.
pub type DocCache = Arc<ExtractCache>;

/// Stream-derivation tags for the per-core jitter RNGs, so loader and
/// query cores draw from independent streams under one master seed.
/// `pub(crate)` so the warehouse's autoscale launchers derive the same
/// stream for core *k* whether it was provisioned up-front or mid-run.
pub(crate) const LOADER_RNG_TAG: u64 = 0x10AD_0000;
pub(crate) const QUERY_RNG_TAG: u64 = 0x9E4F_0000;

/// Item keys of *replaced or deleted* document versions, pending index
/// retraction, keyed by URI. The front end records a version's keys here
/// *before* overwriting the object (the loader only ever sees the current
/// bytes); the loader deletes `recorded − current` after rewriting a
/// churned document and then clears the entry. Entries survive crashes
/// and abandons untouched, so a redelivered message retries the same
/// retraction — deletes are idempotent, making the whole scheme
/// exactly-once without tombstones. Per-URI sets are unioned across
/// repeated replaces, so no intermediate version can leak entries.
pub type RetractionRegistry = Rc<RefCell<HashMap<String, BTreeSet<ItemKey>>>>;

/// Aggregated loader-side totals (shared across all loader cores).
#[derive(Debug, Default)]
pub struct LoaderTotals {
    /// Documents indexed.
    pub docs: u64,
    /// Entries extracted.
    pub entries: u64,
    /// Items written.
    pub items: u64,
    /// Raw entry bytes.
    pub entry_bytes: u64,
    /// Cores that actually received at least one document (the divisor
    /// for the report's per-core averages; can be smaller than the
    /// configured pool when the corpus is smaller than the pool).
    pub active_cores: u64,
    /// Summed per-core extraction (parse + extract) time, microseconds.
    pub extraction_micros: u64,
    /// Summed per-core index-upload wait time, microseconds.
    pub upload_micros: u64,
    /// Stale index items deleted by update retraction.
    pub retracted_items: u64,
}

/// What a loader core is doing between steps.
enum LoaderState {
    /// About to poll the task queue.
    Idle,
    /// Fetching the leased document from the file store (separated from
    /// `Idle` so a throttled fetch can retry without re-receiving).
    Fetching { lease: Lease, uri: String },
    /// Writing the current document's item batches.
    Uploading {
        lease: Lease,
        uri: String,
        batches: VecDeque<(&'static str, Vec<KvItem>)>,
        /// Stale-key delete batches to issue once the writes land
        /// (non-empty only when the document replaced an indexed version).
        deletes: VecDeque<(&'static str, Vec<(String, String)>)>,
        entries: u64,
        items: u64,
        entry_bytes: u64,
    },
    /// New items written; deleting the replaced version's stale items
    /// (write-new-then-delete-stale keeps every key readable throughout).
    Retracting {
        lease: Lease,
        uri: String,
        deletes: VecDeque<(&'static str, Vec<(String, String)>)>,
    },
    /// All batches written; deleting the task message.
    Finishing { lease: Lease },
}

/// One core of an indexing-module instance.
pub struct LoaderCore {
    /// The instance this core belongs to (for uptime billing).
    pub instance: InstanceId,
    /// The core's compute rating.
    pub ecu: f64,
    /// Indexing strategy.
    pub strategy: Strategy,
    /// Extraction options.
    pub opts: ExtractOptions,
    /// Shared totals.
    pub totals: Rc<RefCell<LoaderTotals>>,
    /// Host document cache.
    pub cache: DocCache,
    /// Message lease duration.
    pub visibility: SimDuration,
    /// Idle poll interval.
    pub poll: SimDuration,
    /// Retry/backoff/dead-letter policy.
    pub policy: RetryPolicy,
    /// Fault injection: crash (stop deleting leases) after this many
    /// messages.
    pub crash_after: Option<u32>,
    /// Fault injection: crash *mid-upload*, after writing this many index
    /// batches (across all documents) — the already-written batches stay
    /// in the store, the message lease expires, and the document is
    /// redelivered to another core.
    pub crash_after_batches: Option<u64>,
    /// Index batches (puts *and* stale-key deletes) written so far by
    /// this core.
    pub batches_written: u64,
    /// Pending retractions shared with the warehouse front end (empty for
    /// a static corpus, so churn-free builds take the exact same path).
    pub retractions: RetractionRegistry,
    /// Per-partition strategy routing. `None` (the default) indexes every
    /// document with `strategy` into the global tables — the byte-exact
    /// pre-mixed path. `Some(plan)` routes each document by its URI's
    /// partition: the partition's strategy extracts, the entries land in
    /// the partition's own tables, and a partition assigned `None` indexes
    /// nothing (its documents are answered by partition-scoped scans).
    pub plan: Option<Rc<MixedPlan>>,
    /// Messages fully processed so far.
    pub processed: u32,
    /// Autoscaling drain signal shared with the instance's other cores
    /// (`None` for a static pool). A draining core finishes its leased
    /// message, then exits instead of polling again; the last core out
    /// freezes the instance's billing window.
    pub drain: Option<DrainSignal>,
    state: LoaderState,
    /// Whether this core has received a document yet (first receipt
    /// increments `LoaderTotals::active_cores`).
    worked: bool,
    /// Backoff-jitter stream (only drawn from when a retry happens, so
    /// fault-free runs consume no randomness).
    rng: StdRng,
    /// Consecutive throttles of the current operation.
    attempt: u32,
}

impl LoaderCore {
    /// Creates an idle core. `rng_seed` seeds the backoff-jitter stream;
    /// give each core its own seed so concurrent retries decorrelate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        instance: InstanceId,
        ecu: f64,
        strategy: Strategy,
        opts: ExtractOptions,
        totals: Rc<RefCell<LoaderTotals>>,
        cache: DocCache,
        visibility: SimDuration,
        poll: SimDuration,
        policy: RetryPolicy,
        rng_seed: u64,
    ) -> LoaderCore {
        LoaderCore {
            instance,
            ecu,
            strategy,
            opts,
            totals,
            cache,
            visibility,
            poll,
            policy,
            crash_after: None,
            crash_after_batches: None,
            batches_written: 0,
            retractions: Rc::default(),
            plan: None,
            processed: 0,
            drain: None,
            state: LoaderState::Idle,
            worked: false,
            rng: StdRng::seed_from_u64(rng_seed),
            attempt: 0,
        }
    }

    /// Exits the core: an autoscaled member reports to its drain signal
    /// (the last core out freezes the instance's billing window); a
    /// static core just bills its uptime.
    fn exit(&self, world: &mut World, t: SimTime) -> StepResult {
        match &self.drain {
            Some(d) => d.core_exited(world, t),
            None => world.ec2.extend(self.instance, t),
        }
        StepResult::Done
    }

    /// Builds the cores for one instance pool from a warehouse config.
    pub fn pool(
        cfg: &WarehouseConfig,
        world: &mut World,
        now: SimTime,
        totals: &Rc<RefCell<LoaderTotals>>,
        cache: &DocCache,
    ) -> Vec<LoaderCore> {
        let mut cores = Vec::new();
        for _ in 0..cfg.loader_pool.count {
            let instance = world.ec2.launch(cfg.loader_pool.itype, now);
            for _ in 0..cfg.loader_pool.itype.cores() {
                let idx = cores.len() as u64;
                cores.push(LoaderCore::new(
                    instance,
                    cfg.loader_pool.itype.ecu_per_core(),
                    cfg.strategy,
                    cfg.extract,
                    totals.clone(),
                    cache.clone(),
                    cfg.visibility,
                    cfg.poll_interval,
                    cfg.retry,
                    cfg.faults.seed ^ (LOADER_RNG_TAG + idx),
                ));
            }
        }
        cores
    }

    /// Step 4: poll the task queue; on a message, lease it and move to
    /// [`LoaderState::Fetching`].
    fn step_idle(&mut self, now: SimTime, world: &mut World) -> StepResult {
        // A scale-in victim stops *receiving*; it only reaches Idle once
        // any leased message is fully processed, so draining never
        // abandons a lease.
        if self.drain.as_ref().is_some_and(|d| d.is_draining()) {
            return self.exit(world, now);
        }
        let (msg, t) = match world.sqs.receive(now, LOADER_QUEUE, self.visibility) {
            Ok(out) => out,
            Err(SqsError::Throttled { available_at }) => {
                self.attempt = (self.attempt + 1).min(self.policy.max_attempts);
                return StepResult::NextAt(
                    available_at + self.policy.backoff(self.attempt, &mut self.rng),
                );
            }
            Err(e) => panic!("loader queue exists: {e}"),
        };
        self.attempt = 0;
        let Some(msg) = msg else {
            if world
                .sqs
                .drained(LOADER_QUEUE)
                .expect("loader queue exists")
            {
                return self.exit(world, t);
            }
            world.ec2.extend(self.instance, t);
            return StepResult::NextAt(t + self.poll);
        };
        if self.crash_after.is_some_and(|n| self.processed >= n) {
            // Simulated crash after lease acquisition: the message is
            // neither processed nor deleted; SQS will redeliver it. The
            // instance was up for the receive — bill it.
            world.ec2.extend(self.instance, t);
            world
                .obs
                .record(|_, ctx| Span::new(ServiceKind::Actor, "crash", now, t, ctx));
            return StepResult::Done;
        }
        if msg.receive_count > self.policy.max_receives {
            // Poison message: every previous holder died or abandoned it.
            // Park it on the dead-letter queue instead of recirculating.
            let t = send_with_retry(
                &mut world.sqs,
                &self.policy,
                &mut self.rng,
                t,
                DEAD_LETTER_QUEUE,
                msg.body,
            );
            let t = delete_with_retry(
                &mut world.sqs,
                &self.policy,
                &mut self.rng,
                t,
                LOADER_QUEUE,
                msg.id,
            );
            return StepResult::NextAt(t);
        }
        self.processed += 1;
        if !self.worked {
            self.worked = true;
            self.totals.borrow_mut().active_cores += 1;
        }
        self.state = LoaderState::Fetching {
            lease: Lease::new(LOADER_QUEUE, msg.id, self.visibility, now),
            uri: msg.body,
        };
        StepResult::NextAt(t)
    }

    /// Step 5 plus extraction: fetch and parse the document, extract and
    /// encode the entries, batch them for upload.
    fn step_fetching(
        &mut self,
        now: SimTime,
        world: &mut World,
        mut lease: Lease,
        uri: String,
    ) -> StepResult {
        lease.keep_alive(&mut world.sqs, now);
        let (bytes, t) = match world.s3.get(now, DOC_BUCKET, &uri) {
            Ok(out) => out,
            Err(S3Error::SlowDown { available_at }) => {
                self.attempt += 1;
                if self.attempt > self.policy.max_attempts {
                    // Abandon: drop the lease; the message expires and is
                    // redelivered to (possibly) another core.
                    self.attempt = 0;
                    self.state = LoaderState::Idle;
                    return StepResult::NextAt(available_at + self.poll);
                }
                let resume = available_at + self.policy.backoff(self.attempt, &mut self.rng);
                lease.keep_alive(&mut world.sqs, resume);
                self.state = LoaderState::Fetching { lease, uri };
                return StepResult::NextAt(resume);
            }
            Err(S3Error::NoSuchKey { .. }) => {
                // The document was deleted after this message was
                // enqueued; the front end retracted its index entries at
                // delete time. Nothing is left to index — commit the
                // message (the GET miss was still a billed request).
                self.attempt = 0;
                self.state = LoaderState::Finishing { lease };
                return StepResult::NextAt(now);
            }
            Err(e) => panic!("loader messages reference stored documents: {e}"),
        };
        self.attempt = 0;
        // Mixed routing: the document's partition picks the strategy. A
        // partition assigned `None` indexes nothing — an empty extraction
        // whose only effect is retracting whatever an earlier placement
        // left behind for this URI.
        let routed: Option<Strategy> = match &self.plan {
            Some(plan) => plan.strategy_for_uri(&uri),
            None => Some(self.strategy),
        };
        let profile = world.kv.profile();
        let mut batches = VecDeque::new();
        let mut entry_count = 0u64;
        let mut items = 0u64;
        let mut entry_bytes = 0u64;
        let mut t = t;
        if let Some(strategy) = routed {
            // Parse, extract, encode (memoized on the host after the
            // prewarm stage; virtually charged in full either way).
            let (_doc, cached) = self.cache.extracted(&uri, &bytes, strategy, self.opts);
            // Under a mixed plan the entries are routed into the
            // partition's own tables; without one they stay in the global
            // tables untouched (no clone on the paper's path).
            let entries: std::borrow::Cow<[amada_index::IndexEntry]> = match &self.plan {
                Some(_) => {
                    let mut routed = (*cached).clone();
                    retarget_entries(&mut routed, partition_of(&uri));
                    std::borrow::Cow::Owned(routed)
                }
                None => std::borrow::Cow::Borrowed(&cached[..]),
            };
            entry_count = entries.len() as u64;
            entry_bytes = entries.iter().map(|e| e.raw_bytes() as u64).sum();
            let extraction = world.work.parse(bytes.len() as u64, self.ecu)
                + world.work.extract(entry_bytes, self.ecu);
            let fetched_at = t;
            t = t + extraction;
            world.obs.record(|_, ctx| {
                Span::new(ServiceKind::Actor, "extract", fetched_at, t, ctx)
                    .bytes(bytes.len() as u64)
            });
            self.totals.borrow_mut().extraction_micros += extraction.micros();
            let mut uuids = UuidGen::for_document(&uri);
            let mut per_table: HashMap<&'static str, Vec<KvItem>> = HashMap::new();
            for e in entries.iter() {
                per_table
                    .entry(e.table)
                    .or_default()
                    .extend(amada_index::store::encode_entry(e, &profile, &mut uuids));
            }
            let tables: Vec<&'static str> = match &self.plan {
                Some(_) => partition_tables(strategy, partition_of(&uri)),
                None => strategy.tables().to_vec(),
            };
            for table in tables {
                if let Some(table_items) = per_table.remove(table) {
                    items += table_items.len() as u64;
                    for chunk in table_items.chunks(profile.batch_put_limit) {
                        batches.push_back((table, chunk.to_vec()));
                    }
                }
            }
        }
        // If this URI replaced an indexed version, the keys its old
        // versions held but the current one does not must be deleted
        // after the writes land. The registry entry stays in place until
        // the deletes complete, so a crash or abandon retries them on
        // redelivery (idempotently).
        let mut deletes = VecDeque::new();
        let stale: Vec<ItemKey> = match self.retractions.borrow().get(&uri) {
            None => Vec::new(),
            Some(old) => {
                let mut fresh: BTreeSet<ItemKey> = BTreeSet::new();
                for (table, batch) in &batches {
                    for item in batch {
                        fresh.insert((*table, item.hash_key.clone(), item.range_key.clone()));
                    }
                }
                old.iter()
                    .filter(|k| !fresh.contains(*k))
                    .cloned()
                    .collect()
            }
        };
        if stale.is_empty() {
            // An identical or purely-growing rewrite leaves nothing to
            // retract; drop the registry entry now.
            self.retractions.borrow_mut().remove(&uri);
        } else {
            let mut per_table: BTreeMap<&'static str, Vec<(String, String)>> = BTreeMap::new();
            for (table, hash, range) in stale {
                per_table.entry(table).or_default().push((hash, range));
            }
            // Without a plan the strategy's own tables keep their legacy
            // order; under one, a migration's stale keys reference the
            // *previous* placement's tables, so the order comes from the
            // keys themselves (name order — deterministic either way).
            let mut tables: Vec<&'static str> = match &self.plan {
                Some(_) => per_table.keys().copied().collect(),
                None => self.strategy.tables().to_vec(),
            };
            // A plan switch can strand stale keys in tables outside the
            // flat strategy's set (migrating a partition back to the flat
            // layout); cover them after the strategy's own tables — a
            // no-op whenever no plan was ever in force.
            for &table in per_table.keys() {
                if !tables.contains(&table) {
                    tables.push(table);
                }
            }
            for table in tables {
                if let Some(keys) = per_table.remove(table) {
                    for chunk in keys.chunks(profile.batch_put_limit) {
                        deletes.push_back((table, chunk.to_vec()));
                    }
                }
            }
        }
        if self.plan.is_some() {
            // A mixed write may target a partition table no one created
            // yet (unnamed partitions fall back to the default strategy at
            // write time); ensuring is a free, idempotent host-side call.
            for (table, _) in batches.iter() {
                world.kv.ensure_table(table);
            }
            for (table, _) in deletes.iter() {
                world.kv.ensure_table(table);
            }
        }
        lease.keep_alive(&mut world.sqs, t);
        self.state = LoaderState::Uploading {
            lease,
            uri,
            batches,
            deletes,
            entries: entry_count,
            items,
            entry_bytes,
        };
        StepResult::NextAt(t)
    }

    /// Step 6: submit the document's remaining batches *at once* (the
    /// paper's uploader is multi-threaded per instance, so batch writes
    /// are in flight concurrently); the store's capacity queue serializes
    /// them, and the core proceeds when the last acknowledgement arrives.
    /// Submitting at one arrival time also keeps concurrent cores' writes
    /// interleaved at their true virtual times. A throttled batch pauses
    /// the burst; the remaining batches are resubmitted after backoff.
    #[allow(clippy::too_many_arguments)]
    fn step_uploading(
        &mut self,
        now: SimTime,
        world: &mut World,
        mut lease: Lease,
        uri: String,
        mut batches: VecDeque<(&'static str, Vec<KvItem>)>,
        deletes: VecDeque<(&'static str, Vec<(String, String)>)>,
        entries: u64,
        items: u64,
        entry_bytes: u64,
    ) -> StepResult {
        lease.keep_alive(&mut world.sqs, now);
        let retryable = world.kv.faults_active();
        let mut last = now;
        let mut throttled_at: Option<SimTime> = None;
        while let Some((table, batch)) = batches.pop_front() {
            if self
                .crash_after_batches
                .is_some_and(|n| self.batches_written >= n)
            {
                // Mid-upload crash: the batches already written stay in
                // the store; the lease expires and the document is
                // redelivered. Bill the uptime this step consumed.
                world.ec2.extend(self.instance, last);
                world
                    .obs
                    .record(|_, ctx| Span::new(ServiceKind::Actor, "crash", now, last, ctx));
                return StepResult::Done;
            }
            let res = if retryable {
                // Keep a retry copy only when the store can actually
                // throttle; fault-free runs move the batch without copying.
                match world.kv.batch_put(now, table, batch.clone()) {
                    Err(KvError::Throttled { available_at }) => {
                        batches.push_front((table, batch));
                        throttled_at = Some(available_at);
                        break;
                    }
                    other => other,
                }
            } else {
                world.kv.batch_put(now, table, batch)
            };
            let done = res.expect("index entries fit the store limits");
            self.batches_written += 1;
            last = last.max(done);
        }
        if let Some(available_at) = throttled_at {
            self.attempt += 1;
            if self.attempt > self.policy.max_attempts {
                // Abandon the document; redelivery will rewrite it
                // idempotently (deterministic range keys).
                self.attempt = 0;
                self.totals.borrow_mut().upload_micros += (last.max(available_at) - now).micros();
                self.state = LoaderState::Idle;
                return StepResult::NextAt(available_at + self.poll);
            }
            let resume = available_at + self.policy.backoff(self.attempt, &mut self.rng);
            self.totals.borrow_mut().upload_micros += (resume - now).micros();
            lease.keep_alive(&mut world.sqs, resume);
            self.state = LoaderState::Uploading {
                lease,
                uri,
                batches,
                deletes,
                entries,
                items,
                entry_bytes,
            };
            return StepResult::NextAt(resume);
        }
        self.attempt = 0;
        world.obs.record(|_, ctx| {
            Span::new(ServiceKind::Actor, "upload", now, last, ctx).bytes(entry_bytes)
        });
        let mut tot = self.totals.borrow_mut();
        tot.upload_micros += (last - now).micros();
        tot.docs += 1;
        tot.entries += entries;
        tot.items += items;
        tot.entry_bytes += entry_bytes;
        drop(tot);
        lease.keep_alive(&mut world.sqs, last);
        self.state = if deletes.is_empty() {
            LoaderState::Finishing { lease }
        } else {
            LoaderState::Retracting {
                lease,
                uri,
                deletes,
            }
        };
        StepResult::NextAt(last)
    }

    /// Retraction: delete the replaced version's stale items, with the
    /// same burst-submit / throttle-backoff / abandon discipline as the
    /// writes. Runs strictly *after* the new version's items landed, so
    /// every key stays readable throughout; the registry entry is cleared
    /// only once every delete succeeded, so a crash (`crash_after_batches`
    /// also counts delete batches) or abandon retries the retraction on
    /// redelivery.
    fn step_retracting(
        &mut self,
        now: SimTime,
        world: &mut World,
        mut lease: Lease,
        uri: String,
        mut deletes: VecDeque<(&'static str, Vec<(String, String)>)>,
    ) -> StepResult {
        lease.keep_alive(&mut world.sqs, now);
        let mut last = now;
        let mut removed = 0u64;
        let mut throttled_at: Option<SimTime> = None;
        while let Some((table, keys)) = deletes.pop_front() {
            if self
                .crash_after_batches
                .is_some_and(|n| self.batches_written >= n)
            {
                world.ec2.extend(self.instance, last);
                world
                    .obs
                    .record(|_, ctx| Span::new(ServiceKind::Actor, "crash", now, last, ctx));
                return StepResult::Done;
            }
            match world.kv.batch_delete(now, table, &keys) {
                Err(KvError::Throttled { available_at }) => {
                    deletes.push_front((table, keys));
                    throttled_at = Some(available_at);
                    break;
                }
                other => {
                    let done = other.expect("stale-key deletes fit the store limits");
                    removed += keys.len() as u64;
                    self.batches_written += 1;
                    last = last.max(done);
                }
            }
        }
        self.totals.borrow_mut().retracted_items += removed;
        if let Some(available_at) = throttled_at {
            self.attempt += 1;
            if self.attempt > self.policy.max_attempts {
                // Abandon: the registry entry is still in place, so the
                // redelivered message recomputes and reissues the
                // remaining deletes (reissuing completed ones would be
                // harmless too — deletes are idempotent).
                self.attempt = 0;
                self.totals.borrow_mut().upload_micros += (last.max(available_at) - now).micros();
                self.state = LoaderState::Idle;
                return StepResult::NextAt(available_at + self.poll);
            }
            let resume = available_at + self.policy.backoff(self.attempt, &mut self.rng);
            self.totals.borrow_mut().upload_micros += (resume - now).micros();
            lease.keep_alive(&mut world.sqs, resume);
            self.state = LoaderState::Retracting {
                lease,
                uri,
                deletes,
            };
            return StepResult::NextAt(resume);
        }
        self.attempt = 0;
        self.retractions.borrow_mut().remove(&uri);
        world
            .obs
            .record(|_, ctx| Span::new(ServiceKind::Actor, "retract", now, last, ctx));
        self.totals.borrow_mut().upload_micros += (last - now).micros();
        lease.keep_alive(&mut world.sqs, last);
        self.state = LoaderState::Finishing { lease };
        StepResult::NextAt(last)
    }

    /// Commit: delete the task message (unbounded retry — the document is
    /// fully indexed; losing the delete would cause a duplicate rewrite).
    fn step_finishing(&mut self, now: SimTime, world: &mut World, mut lease: Lease) -> StepResult {
        lease.keep_alive(&mut world.sqs, now);
        let t = delete_with_retry(
            &mut world.sqs,
            &self.policy,
            &mut self.rng,
            now,
            LOADER_QUEUE,
            lease.msg_id,
        );
        self.state = LoaderState::Idle;
        StepResult::NextAt(t)
    }
}

impl Actor for LoaderCore {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        let state = std::mem::replace(&mut self.state, LoaderState::Idle);
        world.obs.with_ctx(|c| {
            c.phase = Phase::Build;
            c.query = None;
            c.doc = match &state {
                LoaderState::Fetching { uri, .. }
                | LoaderState::Uploading { uri, .. }
                | LoaderState::Retracting { uri, .. } => Some(uri.as_str().into()),
                _ => None,
            };
            c.actor = Some(ActorTag {
                kind: "loader",
                instance: self.instance.0,
            });
        });
        let result = match state {
            LoaderState::Idle => self.step_idle(now, world),
            LoaderState::Fetching { lease, uri } => self.step_fetching(now, world, lease, uri),
            LoaderState::Uploading {
                lease,
                uri,
                batches,
                deletes,
                entries,
                items,
                entry_bytes,
            } => self.step_uploading(
                now,
                world,
                lease,
                uri,
                batches,
                deletes,
                entries,
                items,
                entry_bytes,
            ),
            LoaderState::Retracting {
                lease,
                uri,
                deletes,
            } => self.step_retracting(now, world, lease, uri, deletes),
            LoaderState::Finishing { lease } => self.step_finishing(now, world, lease),
        };
        if let StepResult::NextAt(t) = result {
            world.ec2.extend(self.instance, t);
        }
        result
    }
}

/// A query-processor instance (the whole instance: the transfer/eval phase
/// is divided across its cores, per the paper's intra-machine
/// parallelism).
pub struct QueryCore {
    /// The instance (for uptime billing).
    pub instance: InstanceId,
    /// Cores on the instance.
    pub cores: usize,
    /// Compute rating per core.
    pub ecu: f64,
    /// `Some(strategy)` to use the index, `None` for the no-index baseline
    /// that scans the whole corpus.
    pub strategy: Option<Strategy>,
    /// Per-partition routing: when set, look-ups union each indexed
    /// partition's own-strategy answer with partition-scoped scans of the
    /// unindexed ones, overriding `strategy` for the look-up phase (the
    /// fetch/evaluate phase downstream is unchanged). `None` keeps the
    /// single-strategy path byte-identically.
    pub plan: Option<Rc<MixedPlan>>,
    /// The front end's partition catalog — every partition holding live
    /// documents, known from its own upload records (free host-side
    /// metadata, like the plan). A fully indexed plan fans its look-ups
    /// out over these instead of paying the billed corpus LIST.
    pub partitions: Rc<BTreeSet<String>>,
    /// Extraction options (must match how the index was built).
    pub opts: ExtractOptions,
    /// Host document cache.
    pub cache: DocCache,
    /// Message lease duration.
    pub visibility: SimDuration,
    /// Idle poll interval.
    pub poll: SimDuration,
    /// Completed executions (shared with the warehouse).
    pub executions: Rc<RefCell<Vec<QueryExecution>>>,
    /// Retry/backoff/dead-letter policy.
    pub policy: RetryPolicy,
    /// Backoff-jitter stream (only drawn from on a retry).
    pub rng: StdRng,
    /// Fault injection: crash after this many messages.
    pub crash_after: Option<u32>,
    /// Messages fully processed so far.
    pub processed: u32,
    /// Consecutive throttles of the current operation.
    pub attempt: u32,
    /// Autoscaling drain signal (`None` for a static pool). A query
    /// processor holds no lease between steps, so a draining one exits at
    /// its next wake-up — the query it was mid-way through (if any) was
    /// completed within the previous step.
    pub drain: Option<DrainSignal>,
}

impl QueryCore {
    /// Builds one actor per query-pool instance.
    pub fn pool(
        cfg: &WarehouseConfig,
        world: &mut World,
        now: SimTime,
        strategy: Option<Strategy>,
        executions: &Rc<RefCell<Vec<QueryExecution>>>,
        cache: &DocCache,
    ) -> Vec<QueryCore> {
        (0..cfg.query_pool.count)
            .map(|i| QueryCore {
                instance: world.ec2.launch(cfg.query_pool.itype, now),
                cores: cfg.query_pool.itype.cores(),
                ecu: cfg.query_pool.itype.ecu_per_core(),
                strategy,
                plan: None,
                partitions: Rc::default(),
                opts: cfg.extract,
                cache: cache.clone(),
                visibility: cfg.visibility,
                poll: cfg.poll_interval,
                executions: executions.clone(),
                policy: cfg.retry,
                rng: StdRng::seed_from_u64(cfg.faults.seed ^ (QUERY_RNG_TAG + i as u64)),
                crash_after: None,
                processed: 0,
                attempt: 0,
                drain: None,
            })
            .collect()
    }

    /// Exits the processor: an autoscaled member reports to its drain
    /// signal (freezing the instance's billing window — a query instance
    /// has exactly one actor); a static one just bills its uptime.
    fn exit(&self, world: &mut World, t: SimTime) -> StepResult {
        match &self.drain {
            Some(d) => d.core_exited(world, t),
            None => world.ec2.extend(self.instance, t),
        }
        StepResult::Done
    }

    /// Executes one query message. Returns `Ok(completion time)`, or
    /// `Err(resume time)` when a pre-commit retry budget was exhausted and
    /// the task was abandoned (no execution recorded; the lease expires
    /// and the message is redelivered).
    fn process(
        &mut self,
        msg_id: u64,
        body: &str,
        t0: SimTime,
        world: &mut World,
        lease: &mut Lease,
    ) -> Result<SimTime, SimTime> {
        let (name, text) = body
            .split_once('\n')
            .expect("query messages carry name\\nquery");
        let query: Query = parse_query(text).expect("stored queries are well-formed");
        world.obs.with_ctx(|c| c.query = Some(name.into()));

        // Phase 1+2: index look-up and plan execution (step 10–12).
        let mut phases = QueryPhases::default();
        let mut docs_from_index = 0usize;
        let mut index_get_ops = 0u64;
        // Per pattern: the candidate documents to evaluate it on.
        let per_pattern_uris: Vec<Vec<String>>;
        let mut t = t0;
        match (self.plan.clone(), self.strategy) {
            (plan, Some(_)) | (plan @ Some(_), None) => {
                let strategy = self.strategy;
                let get_ops_before = world.kv.stats().get_ops;
                // A throttle aborts the look-up mid-flight; the whole
                // look-up is retried (every aborted get stays billed).
                let lookup = loop {
                    let res = match &plan {
                        Some(plan) => {
                            // The corpus listing enumerates the scan
                            // partitions' documents. `list` is billed
                            // like a GET (LIST-class request), so a fully
                            // indexed plan — which can never route a
                            // query to the scan path — skips it entirely
                            // instead of paying one billed request per
                            // arrival for a listing it would throw away;
                            // its look-ups fan out over the partition
                            // catalog instead.
                            let corpus = if plan.fully_indexed() {
                                Vec::new()
                            } else {
                                world
                                    .s3
                                    .list(t, DOC_BUCKET)
                                    .expect("document bucket exists")
                            };
                            lookup_mixed(
                                world.kv.as_mut(),
                                t,
                                plan,
                                self.opts,
                                &query,
                                &corpus,
                                &self.partitions,
                            )
                        }
                        None => {
                            let strategy = strategy.expect("checked by the match arm");
                            lookup_query(world.kv.as_mut(), t, strategy, self.opts, &query)
                        }
                    };
                    match res {
                        Ok(lookup) => break lookup,
                        Err(KvError::Throttled { available_at }) => {
                            self.attempt += 1;
                            if self.attempt > self.policy.max_attempts {
                                self.attempt = 0;
                                return Err(available_at);
                            }
                            let resume =
                                available_at + self.policy.backoff(self.attempt, &mut self.rng);
                            lease.keep_alive(&mut world.sqs, resume);
                            t = resume;
                        }
                        Err(e) => panic!("index look-up succeeds: {e}"),
                    }
                };
                self.attempt = 0;
                let t_get = lookup.ready_at();
                phases.lookup_get = t_get - t;
                let plan = world.work.plan(lookup.entries_processed(), self.ecu);
                phases.plan = plan;
                let t_lookup = t;
                world.obs.record(|_, ctx| {
                    Span::new(ServiceKind::Actor, "lookup_get", t_lookup, t_get, ctx)
                });
                world.obs.record(|_, ctx| {
                    Span::new(ServiceKind::Actor, "plan", t_get, t_get + plan, ctx)
                });
                t = t_get + plan;
                docs_from_index = lookup.total_doc_ids;
                // `|op(q, D, I)|` counts billed ops, throttled retries
                // included.
                index_get_ops = world.kv.stats().get_ops - get_ops_before;
                per_pattern_uris = lookup.per_pattern.into_iter().map(|o| o.uris).collect();
            }
            (None, None) => {
                // No index: every pattern is evaluated on every document.
                // (`list` is never throttled but is billed like a GET —
                // the no-index path pays one LIST-class request per
                // query on top of its scans.)
                let all = world
                    .s3
                    .list(t, DOC_BUCKET)
                    .expect("document bucket exists");
                per_pattern_uris = vec![all; query.patterns.len()];
            }
        }

        // Phase 3: transfer candidate documents and evaluate (steps 13–14).
        // Work is accumulated serially and divided across the cores;
        // retry waits are serial work like the transfers they delay.
        let mut serial = SimDuration::ZERO;
        let mut fetched: BTreeSet<&String> = BTreeSet::new();
        let mut per_pattern: Vec<Vec<Tuple>> = Vec::with_capacity(query.patterns.len());
        if self.strategy == Some(Strategy::LupPd) {
            // Pushdown: the post-filter runs *inside* the store. Each
            // candidate is scanned (per pattern — the predicate differs),
            // only the matching tuples travel back, and the instance never
            // parses or evaluates the document — that work is what the
            // per-GB scan charge buys.
            for (p, uris) in query.patterns.iter().zip(&per_pattern_uris) {
                // Compiling round-trips the predicate through its wire
                // form once per pattern, exactly what ships to the store.
                let pred = ScanPredicate::compile(p);
                let mut tuples = Vec::new();
                for uri in uris {
                    fetched.insert(uri);
                    let (bytes, resp) = loop {
                        match world.s3.scan(t, DOC_BUCKET, uri, &pred) {
                            Ok(out) => break out,
                            Err(S3Error::SlowDown { available_at }) => {
                                self.attempt += 1;
                                if self.attempt > self.policy.max_attempts {
                                    self.attempt = 0;
                                    return Err(available_at);
                                }
                                serial += (available_at - t)
                                    + self.policy.backoff(self.attempt, &mut self.rng);
                            }
                            Err(e) => panic!("candidate documents exist: {e}"),
                        }
                    };
                    self.attempt = 0;
                    serial += resp - t;
                    tuples.extend(
                        decode_tuples(&bytes, uri).expect("store-encoded scan results decode"),
                    );
                }
                per_pattern.push(tuples);
            }
        } else {
            let mut docs: HashMap<&String, Arc<Document>> = HashMap::new();
            for uris in &per_pattern_uris {
                for uri in uris {
                    if !fetched.insert(uri) {
                        continue;
                    }
                    let (bytes, resp) = loop {
                        match world.s3.get(t, DOC_BUCKET, uri) {
                            Ok(out) => break out,
                            Err(S3Error::SlowDown { available_at }) => {
                                self.attempt += 1;
                                if self.attempt > self.policy.max_attempts {
                                    self.attempt = 0;
                                    return Err(available_at);
                                }
                                serial += (available_at - t)
                                    + self.policy.backoff(self.attempt, &mut self.rng);
                            }
                            Err(e) => panic!("candidate documents exist: {e}"),
                        }
                    };
                    self.attempt = 0;
                    serial += resp - t;
                    serial += world.work.parse(bytes.len() as u64, self.ecu);
                    docs.insert(uri, self.cache.parsed(uri, &bytes));
                }
            }
            for (p, uris) in query.patterns.iter().zip(&per_pattern_uris) {
                let mut tuples = Vec::new();
                for uri in uris {
                    let doc = &docs[uri];
                    let (t_p, stats) = evaluate_pattern_twig(doc, p);
                    serial += world.work.eval(stats.candidates, self.ecu);
                    tuples.extend(t_p);
                }
                per_pattern.push(tuples);
            }
        }
        let tuple_count: u64 = per_pattern.iter().map(|v| v.len() as u64).sum();
        let results = join_pattern_results(&query, &per_pattern);
        serial += world.work.plan(tuple_count, self.ecu);
        // `|r(q)|` is the size of the materialized result object — the
        // same bytes stored in the file store and later egressed.
        let mut payload = String::new();
        for r in &results {
            payload.push_str(&r.columns.join("\t"));
            payload.push('\n');
        }
        let result_bytes = payload.len() as u64;
        serial += world.work.materialize(result_bytes, self.ecu);
        let wall = SimDuration::from_micros(serial.micros() / self.cores as u64);
        phases.transfer_eval = wall;
        let t_eval = t;
        world.obs.record(|_, ctx| {
            Span::new(
                ServiceKind::Actor,
                "transfer_eval",
                t_eval,
                t_eval + wall,
                ctx,
            )
            .bytes(result_bytes)
        });
        t = t + wall;
        lease.keep_alive(&mut world.sqs, t);

        // Step 14–15: store results, respond, delete the task message.
        // These are the commit: the work is done, so every operation
        // retries without bound — completing twice (via redelivery) would
        // duplicate the response, whereas extra retries only cost money.
        let result_key = format!("{name}-{msg_id}.results");
        let payload = payload.into_bytes();
        let t = {
            let mut t = t;
            let mut attempt = 0u32;
            loop {
                match world.s3.put(t, RESULT_BUCKET, &result_key, payload.clone()) {
                    Ok(done) => break done,
                    Err(S3Error::SlowDown { available_at }) => {
                        attempt = (attempt + 1).min(self.policy.max_attempts);
                        t = available_at + self.policy.backoff(attempt, &mut self.rng);
                    }
                    Err(e) => panic!("result bucket exists: {e}"),
                }
            }
        };
        let t = send_with_retry(
            &mut world.sqs,
            &self.policy,
            &mut self.rng,
            t,
            RESPONSE_QUEUE,
            result_key,
        );
        let t_done = delete_with_retry(
            &mut world.sqs,
            &self.policy,
            &mut self.rng,
            t,
            QUERY_QUEUE,
            msg_id,
        );

        let docs_with_results: BTreeSet<&str> = results
            .iter()
            .flat_map(|r| r.uris.iter().map(|u| &**u))
            .collect();
        self.executions.borrow_mut().push(QueryExecution {
            name: name.to_string(),
            strategy: self.strategy,
            response_time: t_done - t0,
            phases,
            docs_from_index,
            docs_fetched: fetched.len(),
            docs_with_results: docs_with_results.len(),
            result_bytes,
            results,
            index_get_ops,
        });
        Ok(t_done)
    }
}

impl Actor for QueryCore {
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult {
        world.obs.with_ctx(|c| {
            c.phase = Phase::Query;
            c.query = None;
            c.doc = None;
            c.actor = Some(ActorTag {
                kind: "query",
                instance: self.instance.0,
            });
        });
        if self.drain.as_ref().is_some_and(|d| d.is_draining()) {
            return self.exit(world, now);
        }
        let (msg, t) = match world.sqs.receive(now, QUERY_QUEUE, self.visibility) {
            Ok(out) => out,
            Err(SqsError::Throttled { available_at }) => {
                self.attempt = (self.attempt + 1).min(self.policy.max_attempts);
                let resume = available_at + self.policy.backoff(self.attempt, &mut self.rng);
                world.ec2.extend(self.instance, available_at);
                return StepResult::NextAt(resume);
            }
            Err(e) => panic!("query queue exists: {e}"),
        };
        self.attempt = 0;
        let Some(msg) = msg else {
            if world.sqs.drained(QUERY_QUEUE).expect("query queue exists") {
                return self.exit(world, t);
            }
            world.ec2.extend(self.instance, t);
            return StepResult::NextAt(t + self.poll);
        };
        if self.crash_after.is_some_and(|n| self.processed >= n) {
            // The instance was up for the final receive — bill it.
            world.ec2.extend(self.instance, t);
            world
                .obs
                .record(|_, ctx| Span::new(ServiceKind::Actor, "crash", now, t, ctx));
            return StepResult::Done;
        }
        if msg.receive_count > self.policy.max_receives {
            let t = send_with_retry(
                &mut world.sqs,
                &self.policy,
                &mut self.rng,
                t,
                DEAD_LETTER_QUEUE,
                msg.body,
            );
            let t = delete_with_retry(
                &mut world.sqs,
                &self.policy,
                &mut self.rng,
                t,
                QUERY_QUEUE,
                msg.id,
            );
            world.ec2.extend(self.instance, t);
            return StepResult::NextAt(t);
        }
        self.processed += 1;
        let mut lease = Lease::new(QUERY_QUEUE, msg.id, self.visibility, now);
        match self.process(msg.id, &msg.body.clone(), t, world, &mut lease) {
            Ok(t_done) => {
                world.ec2.extend(self.instance, t_done);
                StepResult::NextAt(t_done)
            }
            Err(resume) => {
                // Abandoned: the lease expires on its own and the message
                // is redelivered (to this instance or another).
                let resume = resume + self.poll;
                world.ec2.extend(self.instance, resume);
                StepResult::NextAt(resume)
            }
        }
    }
}
