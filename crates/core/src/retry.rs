//! Retry policy, backoff and lease renewal for the warehouse modules.
//!
//! The simulated services can throttle any billed request (see
//! `amada_cloud::fault`); this module is how the warehouse survives it,
//! the way the paper's AWS clients do:
//!
//! * **capped exponential backoff with deterministic jitter** for the
//!   module cores ([`RetryPolicy::backoff`]) — jitter comes from each
//!   core's own seeded `amada_rng::StdRng`, so a fault seed maps to
//!   exactly one retry schedule and runs stay bit-reproducible;
//! * **linear backoff without jitter** for the single-threaded front end
//!   ([`RetryPolicy::backoff_linear`]) — one client needs no
//!   decorrelation, and drawing no randomness keeps the front end's
//!   faults-off path trivially identical to the pre-fault code;
//! * **lease renewal while working** ([`Lease`]) — the paper's Section 3
//!   crash-detection contract: a healthy module renews the visibility
//!   lease on the message that started its task, a crashed one stops, and
//!   the message reappears for another instance. Renewals fire at the
//!   lease's half-life, so a task shorter than half the visibility window
//!   issues none — which is why fault-free runs bill exactly the
//!   receive + delete per message that the Section 7 cost formulas assume;
//! * **dead-lettering** after [`RetryPolicy::max_receives`] deliveries —
//!   a message that keeps killing its consumers (or keeps being abandoned)
//!   is moved aside instead of poisoning the queue forever.
//!
//! Every retry is a billed request: resilience shows up in the cost
//! ledger as real dollars, which is the point of the fault experiment.

use amada_cloud::{KvError, KvStore, S3Error, SimDuration, SimTime, Sqs, SqsError, S3};
use amada_rng::StdRng;
use std::sync::Arc;

/// How a warehouse component behaves when a service throttles it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries before a *pre-commit* operation abandons its task (the
    /// message lease then expires and the task is redelivered). Commit
    /// operations — deletes, result puts, response sends — retry without
    /// bound so a task completes exactly once; `max_attempts` still caps
    /// their backoff growth.
    pub max_attempts: u32,
    /// First backoff step.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Deliveries after which a message is dead-lettered instead of
    /// processed.
    pub max_receives: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_secs(5),
            max_receives: 5,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): capped exponential
    /// with equal-jitter — half the window fixed, half drawn from `rng` —
    /// so concurrent cores retrying the same saturated service
    /// decorrelate deterministically.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let exp = self.uncapped(attempt);
        let half = exp.micros() / 2;
        SimDuration::from_micros((half + rng.gen_range(0..=half)).max(1))
    }

    /// Jitter-free linear backoff (`base × attempt`, capped) for the
    /// single-threaded front end, which has nobody to decorrelate from.
    pub fn backoff_linear(&self, attempt: u32) -> SimDuration {
        let linear = self
            .base_backoff
            .micros()
            .saturating_mul(attempt.max(1) as u64);
        SimDuration::from_micros(linear.min(self.max_backoff.micros()).max(1))
    }

    fn uncapped(&self, attempt: u32) -> SimDuration {
        let shift = attempt.clamp(1, 21) - 1; // 2^20 × base already dwarfs any cap
        let exp = self.base_backoff.micros().saturating_shl(shift);
        SimDuration::from_micros(exp.min(self.max_backoff.micros()).max(2))
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// A held visibility lease on a queue message, renewed at its half-life.
///
/// The engine wakes an actor only at operation boundaries, so renewals are
/// issued *retroactively*: at each wake-up the holder calls
/// [`Lease::keep_alive`] with the time it has reached, and every renewal
/// scheduled before that time is sent at its scheduled instant. Engine
/// steps are atomic, so no competitor can observe the window between the
/// scheduled time and the call — the message is continuously protected as
/// long as the holder keeps stepping (lease expiry is exclusive, so a
/// renewal landing exactly at the deadline still holds it).
#[derive(Debug)]
pub struct Lease {
    /// The queue holding the message.
    pub queue: &'static str,
    /// The leased message.
    pub msg_id: u64,
    /// Lease duration granted by each receive/renewal.
    pub visibility: SimDuration,
    next_renewal: SimTime,
}

impl Lease {
    /// A lease acquired by a `receive` at `acquired_at`.
    pub fn new(
        queue: &'static str,
        msg_id: u64,
        visibility: SimDuration,
        acquired_at: SimTime,
    ) -> Lease {
        Lease {
            queue,
            msg_id,
            visibility,
            next_renewal: acquired_at + Self::half_life(visibility),
        }
    }

    fn half_life(visibility: SimDuration) -> SimDuration {
        SimDuration::from_micros((visibility.micros() / 2).max(1))
    }

    /// Issues every renewal scheduled up to `reached` (the virtual time
    /// the holder's current operation completes at). Returns how many were
    /// sent. A throttled renewal is billed but does not extend the lease;
    /// the half-life schedule leaves a full half-window of slack, so one
    /// missed renewal never loses the lease.
    pub fn keep_alive(&mut self, sqs: &mut Sqs, reached: SimTime) -> u64 {
        let mut issued = 0;
        while self.next_renewal < reached {
            let at = self.next_renewal;
            match sqs.renew_lease(at, self.queue, self.msg_id, self.visibility) {
                Ok(_) | Err(SqsError::Throttled { .. }) => {}
                Err(e) => panic!("lease renewal on {}: {e}", self.queue),
            }
            issued += 1;
            self.next_renewal = at + Self::half_life(self.visibility);
        }
        issued
    }
}

/// Sends `body` to `queue`, retrying throttles with jittered backoff until
/// it succeeds (a commit-side operation; see [`RetryPolicy::max_attempts`]
/// for why it is unbounded). Returns the completion time.
pub fn send_with_retry(
    sqs: &mut Sqs,
    policy: &RetryPolicy,
    rng: &mut StdRng,
    now: SimTime,
    queue: &str,
    body: String,
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match sqs.send(t, queue, body.clone()) {
            Ok(done) => return done,
            Err(SqsError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff(attempt, rng);
            }
            Err(e) => panic!("send to {queue}: {e}"),
        }
    }
}

/// Deletes message `id` from `queue`, retrying throttles with jittered
/// backoff until it succeeds. Returns the completion time.
pub fn delete_with_retry(
    sqs: &mut Sqs,
    policy: &RetryPolicy,
    rng: &mut StdRng,
    now: SimTime,
    queue: &str,
    id: u64,
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match sqs.delete(t, queue, id) {
            Ok(done) => return done,
            Err(SqsError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff(attempt, rng);
            }
            Err(e) => panic!("delete from {queue}: {e}"),
        }
    }
}

/// Front-end send: linear backoff, no jitter, unbounded.
pub fn frontend_send(
    sqs: &mut Sqs,
    policy: &RetryPolicy,
    now: SimTime,
    queue: &str,
    body: String,
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match sqs.send(t, queue, body.clone()) {
            Ok(done) => return done,
            Err(SqsError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end send to {queue}: {e}"),
        }
    }
}

/// Front-end receive: linear backoff, no jitter, unbounded.
pub fn frontend_receive(
    sqs: &mut Sqs,
    policy: &RetryPolicy,
    now: SimTime,
    queue: &str,
    visibility: SimDuration,
) -> (Option<amada_cloud::Message>, SimTime) {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match sqs.receive(t, queue, visibility) {
            Ok(out) => return out,
            Err(SqsError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end receive from {queue}: {e}"),
        }
    }
}

/// Front-end delete: linear backoff, no jitter, unbounded.
pub fn frontend_delete(
    sqs: &mut Sqs,
    policy: &RetryPolicy,
    now: SimTime,
    queue: &str,
    id: u64,
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match sqs.delete(t, queue, id) {
            Ok(done) => return done,
            Err(SqsError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end delete from {queue}: {e}"),
        }
    }
}

/// Front-end object upload: linear backoff, no jitter, unbounded. Keeps a
/// retry copy of the payload only when the store can actually throttle.
pub fn frontend_put_object(
    s3: &mut S3,
    policy: &RetryPolicy,
    now: SimTime,
    bucket: &str,
    key: &str,
    body: Vec<u8>,
) -> SimTime {
    if !s3.faults_active() {
        return s3
            .put(now, bucket, key, body)
            .unwrap_or_else(|e| panic!("front-end put of {bucket}/{key}: {e}"));
    }
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match s3.put(t, bucket, key, body.clone()) {
            Ok(done) => return done,
            Err(S3Error::SlowDown { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end put of {bucket}/{key}: {e}"),
        }
    }
}

/// Front-end object delete: linear backoff, no jitter, unbounded. No
/// payload to preserve, so no retry copy is ever needed.
pub fn frontend_delete_object(
    s3: &mut S3,
    policy: &RetryPolicy,
    now: SimTime,
    bucket: &str,
    key: &str,
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match s3.delete(t, bucket, key) {
            Ok(done) => return done,
            Err(S3Error::SlowDown { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end delete of {bucket}/{key}: {e}"),
        }
    }
}

/// Front-end index-item delete: linear backoff, no jitter, unbounded.
/// Deletes are idempotent at the store, so an over-retry only costs money.
pub fn frontend_batch_delete(
    kv: &mut dyn KvStore,
    policy: &RetryPolicy,
    now: SimTime,
    table: &str,
    keys: &[(String, String)],
) -> SimTime {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match kv.batch_delete(t, table, keys) {
            Ok(done) => return done,
            Err(KvError::Throttled { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end delete from table {table}: {e}"),
        }
    }
}

/// Front-end object download: linear backoff, no jitter, unbounded.
pub fn frontend_get_object(
    s3: &mut S3,
    policy: &RetryPolicy,
    now: SimTime,
    bucket: &str,
    key: &str,
) -> (Arc<Vec<u8>>, SimTime) {
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        match s3.get(t, bucket, key) {
            Ok(out) => return out,
            Err(S3Error::SlowDown { available_at }) => {
                attempt = (attempt + 1).min(policy.max_attempts);
                t = available_at + policy.backoff_linear(attempt);
            }
            Err(e) => panic!("front-end get of {bucket}/{key}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(1);
        // Equal-jitter: backoff(n) ∈ [exp/2, exp] for exp = min(base·2ⁿ⁻¹, cap).
        for attempt in 1..=12 {
            let exp = (p.base_backoff.micros() << (attempt - 1)).min(p.max_backoff.micros());
            let b = p.backoff(attempt as u32, &mut rng).micros();
            assert!(b >= exp / 2 && b <= exp, "attempt {attempt}: {b} vs {exp}");
        }
        // Huge attempt numbers must not overflow and stay capped.
        let b = p.backoff(10_000, &mut rng);
        assert!(b.micros() >= p.max_backoff.micros() / 2 && b <= p.max_backoff);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for attempt in 1..=20 {
            assert_eq!(p.backoff(attempt, &mut a), p.backoff(attempt, &mut b));
        }
    }

    #[test]
    fn linear_backoff_needs_no_rng() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_linear(1), p.base_backoff);
        assert_eq!(p.backoff_linear(2).micros(), 2 * p.base_backoff.micros());
        assert_eq!(p.backoff_linear(1_000_000), p.max_backoff);
    }

    #[test]
    fn lease_renews_at_half_life_only_when_needed() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m").unwrap();
        let vis = SimDuration::from_secs(10);
        let (msg, t) = sqs.receive(SimTime::ZERO, "q", vis).unwrap();
        let mut lease = Lease::new("q", msg.unwrap().id, vis, SimTime::ZERO);
        // A short task never renews.
        assert_eq!(lease.keep_alive(&mut sqs, t + SimDuration::from_secs(3)), 0);
        assert_eq!(sqs.stats().renewals, 0);
        // Reaching 12 s crosses the 5 s and 10 s renewal marks.
        assert_eq!(
            lease.keep_alive(&mut sqs, SimTime::ZERO + SimDuration::from_secs(12)),
            2
        );
        assert_eq!(sqs.stats().renewals, 2);
        // The message stayed protected the whole time: renewal at 10 s
        // holds it until 20 s.
        let (race, _) = sqs
            .receive(SimTime::ZERO + SimDuration::from_secs(19), "q", vis)
            .unwrap();
        assert!(race.is_none());
        assert_eq!(sqs.stats().redelivered, 0);
    }

    #[test]
    fn commit_helpers_retry_until_success() {
        use amada_cloud::FaultInjector;
        let p = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.set_faults(FaultInjector::new(0.9, 77));
        let t = send_with_retry(&mut sqs, &p, &mut rng, SimTime::ZERO, "q", "m".into());
        assert_eq!(sqs.stats().sent, 1);
        assert!(sqs.stats().requests >= 1);
        let (msg, t) = frontend_receive(&mut sqs, &p, t, "q", SimDuration::from_secs(30));
        let id = msg.expect("sent message is delivered").id;
        delete_with_retry(&mut sqs, &p, &mut rng, t, "q", id);
        assert_eq!(sqs.len("q").unwrap(), 0);
        // Each throttle was billed on top of the successful requests.
        assert_eq!(
            sqs.stats().requests,
            3 + sqs.stats().throttled,
            "every retry is a billed request"
        );
    }
}
