//! The index advisor — the paper's stated future work ("the development of
//! a platform and index advisor tool, which based on the expected dataset
//! and workload, estimates an application's performance and cost and picks
//! the best indexing strategy to use", Section 9).
//!
//! The advisor runs each candidate strategy over a *representative sample*
//! of the dataset and the expected workload inside the simulated cloud,
//! measures build cost, monthly storage and per-run query cost, and ranks
//! strategies by projected total cost of ownership over the expected
//! usage horizon. Because everything below it is deterministic, the
//! advice is reproducible.

use crate::config::WarehouseConfig;
use crate::warehouse::Warehouse;
use amada_cloud::Money;
use amada_index::{ExtractOptions, PathSummary, Strategy, StrategyHint};
use amada_pattern::Query;
use amada_xml::Document;

/// Cost projection for one candidate deployment.
#[derive(Debug, Clone)]
pub struct StrategyEstimate {
    /// The indexing strategy, or `None` for the "index nothing" candidate
    /// (every query scans the whole corpus; no build, no index storage).
    pub strategy: Option<Strategy>,
    /// Cost of building the index over the sample (`ci$`; zero for
    /// `None`).
    pub build_cost: Money,
    /// Monthly storage charge for data + index.
    pub storage_per_month: Money,
    /// Cost of one workload run.
    pub run_cost: Money,
    /// Index maintenance billed per workload run at the declared churn
    /// rate: the incremental rebuild — stale-entry retraction plus
    /// re-indexing of the replaced documents — measured on the sample.
    /// Zero for the no-index candidate (replaced documents just overwrite
    /// their S3 objects) and for a churn-free horizon.
    pub maintenance_per_run: Money,
    /// Mean workload response time (seconds).
    pub mean_response_secs: f64,
    /// Projected total over the horizon:
    /// `build + runs × (run_cost + maintenance) + months × storage`.
    pub projected_total: Money,
}

/// The advisor's output: estimates for every candidate, best first.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Ranked estimates (ascending projected total), including the
    /// no-index candidate — for a cold workload (few expected runs over a
    /// small corpus) *not* building an index is the honest
    /// recommendation, so it competes in the same ranking.
    pub ranked: Vec<StrategyEstimate>,
    /// The no-index baseline projection over the same horizon (the
    /// `strategy: None` entry's projected total).
    pub no_index_total: Money,
}

impl Advice {
    /// The cheapest candidate over the horizon.
    pub fn best(&self) -> &StrategyEstimate {
        &self.ranked[0]
    }

    /// Whether indexing at all beats scanning over the horizon.
    pub fn indexing_pays_off(&self) -> bool {
        self.best().strategy.is_some()
    }
}

/// Runs the advisor.
///
/// * `sample` — a representative document sample `(uri, xml)`;
/// * `workload` — the expected queries;
/// * `expected_runs` — how many times the workload will run over the
///   horizon;
/// * `months` — the storage horizon in months;
/// * `base` — deployment parameters (pools, prices, backend).
pub fn advise(
    sample: &[(String, String)],
    workload: &[Query],
    expected_runs: u32,
    months: f64,
    base: &WarehouseConfig,
) -> Advice {
    advise_churn(sample, workload, expected_runs, months, 0.0, base)
}

/// Runs the advisor for a churning corpus.
///
/// Like [`advise`], but each workload run is accompanied by a document
/// churn round replacing `churn_per_run` of the corpus (a fraction in
/// `0.0..=1.0`). The indexed candidates then pay a measured maintenance
/// charge per run — the incremental rebuild that retracts the replaced
/// documents' stale entries and indexes the new versions — while the
/// no-index candidate churns for free (new versions simply overwrite
/// their S3 objects, which both sides pay for anyway). At high churn
/// rates maintenance eats the query savings and the "index nothing"
/// candidate flips to best.
pub fn advise_churn(
    sample: &[(String, String)],
    workload: &[Query],
    expected_runs: u32,
    months: f64,
    churn_per_run: f64,
    base: &WarehouseConfig,
) -> Advice {
    // The four paper strategies, the pushdown variant, and the "index
    // nothing" baseline all compete in one ranking.
    let candidates = Strategy::ALL
        .iter()
        .copied()
        .chain([Strategy::LupPd])
        .map(Some)
        .chain([None]);
    let mut estimates = Vec::new();
    let mut no_index_total = Money::ZERO;
    for strategy in candidates {
        let mut cfg = base.clone();
        if let Some(s) = strategy {
            cfg.strategy = s;
        }
        let mut w = Warehouse::new(cfg);
        w.upload_documents(sample.iter().map(|(u, x)| (u.clone(), x.clone())));
        let (build_cost, storage) = match strategy {
            Some(_) => (w.build_index().cost.total(), w.storage_cost().total()),
            // No index is ever built: queries scan the corpus, and the
            // only storage billed is the file store itself.
            None => (Money::ZERO, w.storage_cost().file_store),
        };
        let mut run_cost = Money::ZERO;
        let mut response = 0.0;
        for q in workload {
            let r = match strategy {
                Some(_) => w.run_query(q),
                None => w.run_query_no_index(q),
            };
            run_cost += r.cost.total();
            response += r.exec.response_time.as_secs_f64();
        }
        let maintenance = match strategy {
            Some(_) if churn_per_run > 0.0 => measure_maintenance(&mut w, sample, churn_per_run),
            _ => Money::ZERO,
        };
        let projected = build_cost
            + (run_cost + maintenance) * expected_runs as u64
            + months_scaled(storage, months);
        if strategy.is_none() {
            no_index_total = projected;
        }
        estimates.push(StrategyEstimate {
            strategy,
            build_cost,
            storage_per_month: storage,
            run_cost,
            maintenance_per_run: maintenance,
            mean_response_secs: response / workload.len().max(1) as f64,
            projected_total: projected,
        });
    }
    rank_estimates(&mut estimates);
    Advice {
        ranked: estimates,
        no_index_total,
    }
}

/// The documented tie-break position of a candidate: the paper's
/// presentation order LU, LUP, LUI, 2LUPI, then the pushdown variant,
/// then the no-index candidate last.
pub(crate) fn candidate_ordinal(strategy: Option<Strategy>) -> u8 {
    match strategy {
        Some(Strategy::Lu) => 0,
        Some(Strategy::Lup) => 1,
        Some(Strategy::Lui) => 2,
        Some(Strategy::TwoLupi) => 3,
        Some(Strategy::LupPd) => 4,
        None => 5,
    }
}

/// Ranks candidate estimates: ascending projected total, equal totals in
/// the documented candidate order ([`candidate_ordinal`]). The key is a
/// pair of deterministic integers, so the ranking is identical across
/// runs and host thread counts regardless of enumeration order.
pub(crate) fn rank_estimates(estimates: &mut [StrategyEstimate]) {
    estimates.sort_by_key(|e| (e.projected_total, candidate_ordinal(e.strategy)));
}

/// One churn round on the sample warehouse: replace `fraction` of the
/// documents with edited versions and rebuild incrementally. Returns the
/// rebuild's bill alone — retraction deletes, re-indexing writes, loader
/// instance time and document fetches — excluding the S3 upload of the
/// new versions, which an unindexed deployment pays identically.
fn measure_maintenance(w: &mut Warehouse, sample: &[(String, String)], fraction: f64) -> Money {
    let k = ((sample.len() as f64 * fraction).ceil() as usize).clamp(1, sample.len());
    w.upload_documents(sample.iter().take(k).map(|(u, x)| (u.clone(), churned(x))));
    w.build_index().cost.total()
}

/// A deterministic edit standing in for a real update: one appended
/// subtree just inside the document element. The loader re-extracts and
/// rewrites the whole document either way, so the edit's size barely
/// moves the maintenance bill — its *presence* (new version, new entry
/// UUIDs, stale old entries) is what is being priced.
fn churned(xml: &str) -> String {
    match xml.rfind("</") {
        Some(at) => format!(
            "{}<updated><rev>1</rev></updated>{}",
            &xml[..at],
            &xml[at..]
        ),
        None => format!("<updated>{xml}</updated>"),
    }
}

/// Scales a monthly charge to a fractional-month horizon exactly: the
/// horizon resolves to micro-months and applies with round-half-up
/// integer scaling ([`Money::scaled`]), so a horizon billed in N slices
/// sums within a pico per slice of the aggregate. (Scaling through an
/// `f64` cast truncated and drifted above ~2⁵³ pico — ~$9k/month.)
pub(crate) fn months_scaled(per_month: Money, months: f64) -> Money {
    assert!(
        months >= 0.0 && months.is_finite(),
        "months must be non-negative: {months}"
    );
    per_month.scaled((months * 1e6).round() as u64, 1_000_000)
}

/// A sample document the advisor could not use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdviseError {
    /// URI of the offending sample document.
    pub uri: String,
    /// The parse failure, rendered.
    pub error: String,
}

impl std::fmt::Display for AdviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sample document {} does not parse: {}",
            self.uri, self.error
        )
    }
}

impl std::error::Error for AdviseError {}

/// Per-query structural hints from a DataGuide summary of the sample —
/// the paper's Section 8.5 criterion for when the ID-granularity
/// strategies (LUI / 2LUPI) should beat the path-granularity ones.
///
/// Unlike [`advise`] (which simulates whole deployments), this is purely
/// static: it parses the sample once, builds the summary, and scores each
/// query — the cheap analysis a front end could run per incoming query.
///
/// An unparseable sample document fails the request with a typed
/// [`AdviseError`] naming the document, instead of killing the caller.
pub fn advise_queries(
    sample: &[(String, String)],
    workload: &[Query],
) -> Result<Vec<(String, Vec<StrategyHint>)>, AdviseError> {
    let docs: Vec<Document> = sample
        .iter()
        .map(|(u, x)| {
            Document::parse_str(u.clone(), x).map_err(|e| AdviseError {
                uri: u.clone(),
                error: format!("{e:?}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let summary = PathSummary::build(docs.iter());
    Ok(workload
        .iter()
        .map(|q| {
            let name = q.name.clone().unwrap_or_default();
            let hints = q
                .patterns
                .iter()
                .map(|p| summary.recommend(p, ExtractOptions::default()))
                .collect();
            (name, hints)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_xmark::{generate_corpus, workload_query, CorpusConfig};

    fn sample() -> Vec<(String, String)> {
        let cfg = CorpusConfig {
            num_documents: 25,
            target_doc_bytes: 1200,
            ..Default::default()
        };
        generate_corpus(&cfg)
            .into_iter()
            .map(|d| (d.uri, d.xml))
            .collect()
    }

    #[test]
    fn advisor_ranks_all_strategies() {
        let workload: Vec<Query> = ["q1", "q6"]
            .iter()
            .map(|n| workload_query(n).unwrap())
            .collect();
        let advice = advise(&sample(), &workload, 500, 1.0, &WarehouseConfig::default());
        // Four paper strategies + LUP-PD + the no-index candidate.
        assert_eq!(advice.ranked.len(), 6);
        assert_eq!(
            advice
                .ranked
                .iter()
                .filter(|e| e.strategy.is_none())
                .count(),
            1
        );
        // Ranking is ascending in projected total.
        for w in advice.ranked.windows(2) {
            assert!(w[0].projected_total <= w[1].projected_total);
        }
        // Over enough runs, indexing must beat scanning (the sample corpus
        // is tiny, so break-even needs many more runs than at real scale).
        assert!(advice.indexing_pays_off());
        // The baseline field mirrors the None entry.
        let none = advice.ranked.iter().find(|e| e.strategy.is_none()).unwrap();
        assert_eq!(none.projected_total, advice.no_index_total);
        assert_eq!(none.build_cost, Money::ZERO);
    }

    #[test]
    fn cold_workloads_are_advised_not_to_index() {
        // One expected run over a tiny corpus: the build cost can never be
        // amortized, so the honest recommendation is "index nothing".
        // (This candidate used to be absent from the ranking, so `best()`
        // recommended building an index that could not pay for itself.)
        let workload = vec![workload_query("q1").unwrap()];
        let advice = advise(&sample(), &workload, 1, 1.0, &WarehouseConfig::default());
        assert!(advice.best().strategy.is_none(), "{:?}", advice.best());
        assert!(!advice.indexing_pays_off());
    }

    #[test]
    fn heavy_churn_flips_the_advice_to_index_nothing() {
        let workload: Vec<Query> = ["q1", "q6"]
            .iter()
            .map(|n| workload_query(n).unwrap())
            .collect();
        let base = WarehouseConfig::default();
        // Enough runs that indexing pays on a static corpus...
        let calm = advise_churn(&sample(), &workload, 500, 1.0, 0.0, &base);
        assert!(calm.indexing_pays_off());
        // ...but with the whole corpus replaced between runs, every run's
        // savings are spent re-indexing, and scanning wins the horizon.
        let stormy = advise_churn(&sample(), &workload, 500, 1.0, 1.0, &base);
        assert!(!stormy.indexing_pays_off(), "{:?}", stormy.best());
        // Maintenance is billed to indexed candidates only, and a calm
        // horizon charges none at all.
        for e in &stormy.ranked {
            assert_eq!(e.maintenance_per_run > Money::ZERO, e.strategy.is_some());
        }
        for e in &calm.ranked {
            assert_eq!(e.maintenance_per_run, Money::ZERO);
        }
    }

    #[test]
    fn per_query_hints_cover_the_workload() {
        let workload = amada_xmark::workload();
        let hints = advise_queries(&sample(), &workload).unwrap();
        assert_eq!(hints.len(), 10);
        // Every pattern of every query received a hint with a sane
        // selectivity estimate.
        for (name, pattern_hints) in &hints {
            assert!(!pattern_hints.is_empty(), "{name}");
            for h in pattern_hints {
                assert!(h.estimated_selectivity >= 0.0 && h.estimated_selectivity <= 1.0);
                assert!(h.branches >= 1);
            }
        }
        // q1 is a two-branch point query: its estimate must be far more
        // selective than the linear bulk of the corpus.
        let q1 = &hints[0].1[0];
        assert!(q1.estimated_selectivity < 0.1, "{q1:?}");
    }

    #[test]
    fn malformed_sample_reports_a_typed_error_instead_of_panicking() {
        let mut docs = sample();
        docs.insert(1, ("broken.xml".into(), "<open><unclosed>".into()));
        let workload = vec![workload_query("q1").unwrap()];
        let err = advise_queries(&docs, &workload).unwrap_err();
        assert_eq!(err.uri, "broken.xml");
        assert!(!err.error.is_empty());
        assert!(err.to_string().contains("broken.xml"), "{err}");
        // A clean sample still succeeds.
        assert!(advise_queries(&sample(), &workload).is_ok());
    }

    #[test]
    fn months_scaling_is_exact_above_f64_precision() {
        // ~$9k/month storage crosses 2^53 pico, where the old f64 cast
        // truncated low bits.
        let storage = Money::from_pico((1u128 << 53) + 7);
        assert_eq!(months_scaled(storage, 1.0), storage);
        // Twelve monthly charges equal one annual charge exactly.
        assert_eq!(months_scaled(storage, 12.0), storage * 12);
        // Property: a horizon billed in N fractional-month slices sums
        // within 1 pico per slice of the aggregate charge (slices that
        // micro-months represent exactly; round-half-up bounds each
        // slice's rounding error by half a pico).
        for n in [2u64, 4, 5, 8, 10, 16, 1000] {
            let slice = months_scaled(storage, 1.0 / n as f64);
            let drift = (slice * n).signed_diff(storage).unsigned_abs();
            assert!(drift <= n as u128, "{n} slices drift {drift} pico");
        }
    }

    #[test]
    fn equal_totals_rank_in_documented_order_across_threads() {
        let estimate = |strategy: Option<Strategy>, total: u128| StrategyEstimate {
            strategy,
            build_cost: Money::ZERO,
            storage_per_month: Money::ZERO,
            run_cost: Money::ZERO,
            maintenance_per_run: Money::ZERO,
            mean_response_secs: 0.0,
            projected_total: Money::from_pico(total),
        };
        // All six candidates tie; enumeration order is scrambled.
        let scrambled: Vec<StrategyEstimate> = [
            None,
            Some(Strategy::LupPd),
            Some(Strategy::Lui),
            Some(Strategy::Lu),
            Some(Strategy::TwoLupi),
            Some(Strategy::Lup),
        ]
        .into_iter()
        .map(|s| estimate(s, 42))
        .collect();
        let expect = [
            Some(Strategy::Lu),
            Some(Strategy::Lup),
            Some(Strategy::Lui),
            Some(Strategy::TwoLupi),
            Some(Strategy::LupPd),
            None,
        ];
        // The same ranking must come back on every run and from every
        // host thread (the same bar as the sharding identity tests).
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut est = scrambled.clone();
                std::thread::spawn(move || {
                    rank_estimates(&mut est);
                    est.iter().map(|e| e.strategy).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
        // A cheaper total still outranks the documented order.
        let mut est = scrambled;
        est.push(estimate(Some(Strategy::TwoLupi), 7));
        rank_estimates(&mut est);
        assert_eq!(est[0].strategy, Some(Strategy::TwoLupi));
        assert_eq!(est[0].projected_total, Money::from_pico(7));
    }

    #[test]
    fn heavier_indexes_cost_more_to_build() {
        let workload = vec![workload_query("q2").unwrap()];
        let advice = advise(&sample(), &workload, 10, 1.0, &WarehouseConfig::default());
        let by = |s: Strategy| {
            advice
                .ranked
                .iter()
                .find(|e| e.strategy == Some(s))
                .unwrap()
                .build_cost
        };
        assert!(by(Strategy::Lu) < by(Strategy::Lup));
        assert!(by(Strategy::Lup) < by(Strategy::TwoLupi));
    }
}
